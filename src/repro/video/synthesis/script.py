"""Screenplay model: the declarative description a video is generated from.

A :class:`Screenplay` lists scenes; each :class:`SceneSpec` lists shots
and annotates its own ground truth (groups, event category, subject).
Builder functions at the bottom assemble the stereotypical scene types
of medical-education video — presentations, dialogs, clinical
operations — which the paper's event miner must recognise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VideoError
from repro.types import EventKind
from repro.video.synthesis.compositions import COMPOSITION_REGISTRY, ShotParams


@dataclass(frozen=True)
class ShotSpec:
    """One scripted shot.

    Attributes
    ----------
    composition:
        Name from the composition registry.
    seconds:
        Duration; frames = round(seconds * fps).
    speaker:
        Voice-bank name speaking during this shot, or ``None`` for
        ambient/music audio.
    params:
        Composition parameters (actors, slide ids, variants).
    camera_id:
        Shots with the same camera id *within one scene* share a static
        render seed — this is how A-B-A-B dialog alternation gets its
        back-and-forth visual identity.
    """

    composition: str
    seconds: float
    speaker: str | None = None
    params: ShotParams = field(default_factory=ShotParams)
    camera_id: str | None = None

    def __post_init__(self) -> None:
        if self.composition not in COMPOSITION_REGISTRY:
            raise VideoError(f"unknown composition {self.composition!r}")
        if self.seconds <= 0:
            raise VideoError("shot duration must be positive")


@dataclass(frozen=True)
class SceneSpec:
    """One scripted semantic scene.

    Attributes
    ----------
    subject:
        Human-readable description of the semantic unit.
    event:
        Ground-truth event category.
    shots:
        The scripted shots, in order.
    groups:
        Ground-truth group partition as lists of *local* shot indices.
    topic_relevant:
        Whether the scene carries the video's main topic.
    repeat_key:
        Scenes sharing a repeat key are visual re-occurrences of the
        same content: they render from the same scenery seeds and are
        annotated as duplicates for scene clustering.
    """

    subject: str
    event: EventKind
    shots: tuple[ShotSpec, ...]
    groups: tuple[tuple[int, ...], ...]
    topic_relevant: bool = False
    repeat_key: str | None = None

    def __post_init__(self) -> None:
        if not self.shots:
            raise VideoError(f"scene {self.subject!r} has no shots")
        covered = sorted(i for group in self.groups for i in group)
        if covered != list(range(len(self.shots))):
            raise VideoError(
                f"scene {self.subject!r}: groups must partition local shots"
            )

    @property
    def shot_count(self) -> int:
        """Number of shots in the scene."""
        return len(self.shots)

    @property
    def duration(self) -> float:
        """Total scripted duration in seconds."""
        return sum(shot.seconds for shot in self.shots)


@dataclass(frozen=True)
class Screenplay:
    """A full scripted video."""

    title: str
    scenes: tuple[SceneSpec, ...]
    fps: float = 10.0
    height: int = 64
    width: int = 80

    def __post_init__(self) -> None:
        if not self.scenes:
            raise VideoError("screenplay needs at least one scene")
        if self.fps <= 0:
            raise VideoError("fps must be positive")

    @property
    def shot_count(self) -> int:
        """Total scripted shots across all scenes."""
        return sum(scene.shot_count for scene in self.scenes)

    @property
    def duration(self) -> float:
        """Total scripted duration in seconds."""
        return sum(scene.duration for scene in self.scenes)


# ---------------------------------------------------------------------------
# Scene builders.
# ---------------------------------------------------------------------------


def presentation_scene(
    subject: str,
    speaker: str = "narrator",
    cycles: int = 3,
    actor: int = 0,
    slide_base: int = 0,
    variant: int = 0,
    repeat_key: str | None = None,
    use_clipart: bool = False,
) -> SceneSpec:
    """Presenter-and-slides scene: podium close-up alternating with slides.

    The alternation forms one temporally related group (two visual
    clusters shown back and forth), the podium shots carry a face
    close-up, and one narrator speaks throughout — exactly the evidence
    the Presentation rule requires.
    """
    if cycles < 2:
        raise VideoError("a presentation needs at least 2 cycles")
    shots: list[ShotSpec] = [
        ShotSpec(
            composition="podium_wide",
            seconds=3.0,
            speaker=speaker,
            params=ShotParams(actor=actor, variant=variant),
            camera_id="wide",
        )
    ]
    slide_comp = "clipart_fullscreen" if use_clipart else "slide_fullscreen"
    for i in range(cycles):
        shots.append(
            ShotSpec(
                composition="podium_speaker",
                seconds=3.5,
                speaker=speaker,
                params=ShotParams(actor=actor, variant=variant),
                camera_id="podium",
            )
        )
        shots.append(
            ShotSpec(
                composition=slide_comp,
                seconds=3.0,
                speaker=speaker,
                params=ShotParams(slide_id=slide_base + i, variant=variant + i),
                camera_id=f"slide{i}",
            )
        )
    groups = ((0,), tuple(range(1, len(shots))))
    return SceneSpec(
        subject=subject,
        event=EventKind.PRESENTATION,
        shots=tuple(shots),
        groups=groups,
        topic_relevant=True,
        repeat_key=repeat_key,
    )


def dialog_scene(
    subject: str,
    speaker_a: str = "dr_adams",
    speaker_b: str = "patient_chen",
    exchanges: int = 3,
    actor_a: int = 0,
    actor_b: int = 2,
    variant: int = 0,
    repeat_key: str | None = None,
) -> SceneSpec:
    """Doctor-patient dialog: two-shot, then A-B reverse-shot exchanges.

    Adjacent A/B shots both contain face close-ups with a speaker change
    between them, speakers recur, and the alternation forms a temporally
    related group — the Dialog rule's evidence.
    """
    if exchanges < 2:
        raise VideoError("a dialog needs at least 2 exchanges")
    params = ShotParams(actor=actor_a, actor_b=actor_b, variant=variant)
    shots: list[ShotSpec] = [
        ShotSpec(
            composition="two_shot",
            seconds=3.0,
            speaker=speaker_a,
            params=params,
            camera_id="two",
        )
    ]
    for _ in range(exchanges):
        shots.append(
            ShotSpec(
                composition="interview_a",
                seconds=3.0,
                speaker=speaker_a,
                params=params,
                camera_id="cam_a",
            )
        )
        shots.append(
            ShotSpec(
                composition="interview_b",
                seconds=3.0,
                speaker=speaker_b,
                params=params,
                camera_id="cam_b",
            )
        )
    groups = ((0,), tuple(range(1, len(shots))))
    return SceneSpec(
        subject=subject,
        event=EventKind.DIALOG,
        shots=tuple(shots),
        groups=groups,
        topic_relevant=True,
        repeat_key=repeat_key,
    )


def clinical_scene(
    subject: str,
    narrator: str | None = None,
    steps: int = 3,
    actor: int = 1,
    variant: int = 0,
    include_organ: bool = True,
    repeat_key: str | None = None,
    style: str = "surgery",
) -> SceneSpec:
    """Clinical operation: surgical/diagnostic close-ups, one voice or none.

    Skin close-ups and blood-red regions appear and there is no speaker
    change — the Clinical-operation rule's evidence.  ``style`` selects
    between surgery, dermatology examination, and imaging review.
    """
    if steps < 2:
        raise VideoError("a clinical scene needs at least 2 steps")
    shots: list[ShotSpec] = []
    if style == "surgery":
        shots.append(
            ShotSpec(
                composition="surgical_wide",
                seconds=3.0,
                speaker=narrator,
                params=ShotParams(actor=actor, variant=variant),
                camera_id="or_wide",
            )
        )
        for i in range(steps):
            shots.append(
                ShotSpec(
                    composition="surgical_closeup",
                    seconds=3.5,
                    speaker=narrator,
                    params=ShotParams(
                        actor=actor if i % 2 == 0 else actor + 2,
                        variant=variant + i,
                        coverage=0.40 + 0.10 * (i % 3),
                    ),
                    camera_id=f"or_close{i}",
                )
            )
        if include_organ:
            shots.append(
                ShotSpec(
                    composition="organ_still",
                    seconds=2.5,
                    speaker=narrator,
                    params=ShotParams(variant=variant),
                    camera_id="organ",
                )
            )
    elif style == "dermatology":
        for i in range(steps + 1):
            shots.append(
                ShotSpec(
                    composition="limb_exam",
                    seconds=3.0,
                    speaker=narrator,
                    params=ShotParams(actor=actor, variant=variant + i),
                    camera_id=f"limb{i % 2}",
                )
            )
    elif style == "imaging":
        for i in range(steps + 1):
            shots.append(
                ShotSpec(
                    composition="scan_display",
                    seconds=3.0,
                    speaker=narrator,
                    params=ShotParams(variant=variant + i),
                    camera_id=f"scan{i % 2}",
                )
            )
    else:
        raise VideoError(f"unknown clinical style {style!r}")
    groups = (tuple(range(len(shots))),)
    return SceneSpec(
        subject=subject,
        event=EventKind.CLINICAL_OPERATION,
        shots=tuple(shots),
        groups=groups,
        topic_relevant=True,
        repeat_key=repeat_key,
    )


def or_consultation_scene(
    subject: str,
    speaker_a: str = "dr_adams",
    speaker_b: str = "dr_baker",
    exchanges: int = 2,
    actor_a: int = 0,
    actor_b: int = 1,
    variant: int = 0,
) -> SceneSpec:
    """Intra-operative consultation: surgeons debating over the table.

    Ground truth is *clinical operation* (it is surgery footage), but
    the footage carries dialog evidence — alternating surgeon faces
    with speaker changes — so the paper-style miner tends to call it a
    dialog.  One of the confuser scenes that reproduces Table 1's
    cross-category errors.
    """
    params = ShotParams(actor=actor_a, actor_b=actor_b, variant=variant)
    shots: list[ShotSpec] = [
        ShotSpec(
            composition="surgical_wide", seconds=3.0, speaker=speaker_a,
            params=params, camera_id="or_wide",
        )
    ]
    for _ in range(exchanges):
        shots.append(
            ShotSpec(
                composition="surgeon_face_a", seconds=3.0, speaker=speaker_a,
                params=params, camera_id="sf_a",
            )
        )
        shots.append(
            ShotSpec(
                composition="surgeon_face_b", seconds=3.0, speaker=speaker_b,
                params=params, camera_id="sf_b",
            )
        )
    shots.append(
        ShotSpec(
            composition="surgical_closeup", seconds=3.0, speaker=speaker_a,
            params=ShotParams(actor=actor_a + 2, variant=variant, coverage=0.5),
            camera_id="or_close_end",
        )
    )
    return SceneSpec(
        subject=subject,
        event=EventKind.CLINICAL_OPERATION,
        shots=tuple(shots),
        groups=((0,), tuple(range(1, len(shots)))),
        topic_relevant=True,
    )


def planning_session_scene(
    subject: str,
    narrator: str = "dr_adams",
    cycles: int = 2,
    actor: int = 0,
    variant: int = 0,
) -> SceneSpec:
    """Surgical planning over diagrams: clinical truth, presentation look.

    A surgeon narrates over clip-art anatomy diagrams and organ
    photographs — clinical-operation ground truth whose slide-like
    frames and face close-ups satisfy the Presentation rule instead.
    """
    shots: list[ShotSpec] = []
    for i in range(cycles):
        shots.append(
            ShotSpec(
                composition="surgeon_face_a", seconds=3.0, speaker=narrator,
                params=ShotParams(actor=actor, variant=variant), camera_id="plan_face",
            )
        )
        shots.append(
            ShotSpec(
                composition="clipart_fullscreen", seconds=3.0, speaker=narrator,
                params=ShotParams(variant=variant + 10 + i), camera_id=f"plan_art{i}",
            )
        )
    shots.append(
        ShotSpec(
            composition="organ_still", seconds=2.5, speaker=narrator,
            params=ShotParams(variant=variant), camera_id="plan_organ",
        )
    )
    return SceneSpec(
        subject=subject,
        event=EventKind.CLINICAL_OPERATION,
        shots=tuple(shots),
        groups=(tuple(range(len(shots))),),
        topic_relevant=True,
    )


def atlas_lecture_scene(
    subject: str,
    speaker: str = "narrator",
    cycles: int = 2,
    actor: int = 0,
    variant: int = 0,
) -> SceneSpec:
    """Lecture illustrated with organ photographs instead of slides.

    Presentation ground truth; with no slide frames but plenty of
    blood-red imagery and no speaker change, the miner reads it as a
    clinical operation — the reverse confusion of
    :func:`planning_session_scene`.
    """
    shots: list[ShotSpec] = []
    for i in range(cycles):
        shots.append(
            ShotSpec(
                composition="podium_speaker", seconds=3.0, speaker=speaker,
                params=ShotParams(actor=actor, variant=variant), camera_id="podium",
            )
        )
        shots.append(
            ShotSpec(
                composition="organ_still", seconds=3.0, speaker=speaker,
                params=ShotParams(variant=variant + i), camera_id=f"atlas{i}",
            )
        )
    return SceneSpec(
        subject=subject,
        event=EventKind.PRESENTATION,
        shots=tuple(shots),
        groups=(tuple(range(len(shots))),),
        topic_relevant=True,
    )


def voiceover_interview_scene(
    subject: str,
    on_camera: str = "patient_chen",
    off_camera: str = "dr_baker",
    exchanges: int = 2,
    actor: int = 2,
    variant: int = 0,
) -> SceneSpec:
    """Interview with the interviewer off camera.

    Dialog ground truth, but the camera never cuts to the second face:
    the Dialog rule's "adjacent shots which both contain face" evidence
    comes from one person only and the exam close-ups in between break
    the face adjacency, so the miner usually abstains.
    """
    params = ShotParams(actor=actor, variant=variant)
    shots: list[ShotSpec] = []
    for i in range(exchanges):
        shots.append(
            ShotSpec(
                composition="interview_a", seconds=3.0, speaker=on_camera,
                params=params, camera_id="vo_face",
            )
        )
        shots.append(
            ShotSpec(
                composition="limb_exam", seconds=3.0, speaker=off_camera,
                params=ShotParams(actor=actor, variant=variant + i),
                camera_id=f"vo_exam{i}",
            )
        )
    return SceneSpec(
        subject=subject,
        event=EventKind.DIALOG,
        shots=tuple(shots),
        groups=(tuple(range(len(shots))),),
        topic_relevant=True,
    )


def filler_scene(
    subject: str = "corridor transition",
    shots_count: int = 3,
    actor: int = 3,
    variant: int = 0,
) -> SceneSpec:
    """Establishing / transition footage with no mineable event."""
    if shots_count < 1:
        raise VideoError("filler needs at least one shot")
    shots = tuple(
        ShotSpec(
            composition="corridor_walk",
            seconds=2.5,
            speaker=None,
            params=ShotParams(actor=actor + i, variant=variant),
            camera_id=f"walk{i}",
        )
        for i in range(shots_count)
    )
    return SceneSpec(
        subject=subject,
        event=EventKind.UNKNOWN,
        shots=shots,
        groups=(tuple(range(shots_count)),),
        topic_relevant=False,
    )


def separator_scene() -> SceneSpec:
    """A short black editing separator (eliminated by scene filtering)."""
    shots = (
        ShotSpec(composition="black", seconds=1.0, speaker=None, camera_id="black"),
    )
    return SceneSpec(
        subject="black separator",
        event=EventKind.UNKNOWN,
        shots=shots,
        groups=((0,),),
        topic_relevant=False,
    )
