"""Man-made frames: presentation slides, clip-art diagrams, sketches.

These render the low-entropy, flat-background imagery the special-frame
classifier must recognise (Sec. 4.1).  Slides carry horizontal dark text
bands; clip art carries flat saturated shapes; sketches carry thin dark
strokes on white.
"""

from __future__ import annotations

import numpy as np

from repro.video.synthesis.draw import (
    draw_hline,
    draw_vline,
    fill_ellipse,
    fill_rect,
)

_TEXT_COLOR = (0.12, 0.12, 0.25)


def draw_slide(canvas: np.ndarray, rng: np.random.Generator, slide_id: int = 0) -> None:
    """A presentation slide: title band plus 3-5 bullet text lines.

    ``slide_id`` seeds the line layout so successive slides in one deck
    look different but share the template.
    """
    layout = np.random.default_rng(10_000 + slide_id)
    background = (0.90, 0.92, 0.96) if slide_id % 2 == 0 else (0.86, 0.90, 0.93)
    canvas[:, :] = background
    # Title band.
    fill_rect(canvas, 0.06, 0.08, 0.16, 0.92, (0.20, 0.22, 0.28))
    # Bullet lines of varying length.
    num_lines = int(layout.integers(3, 6))
    for i in range(num_lines):
        y = 0.30 + 0.13 * i
        length = float(layout.uniform(0.35, 0.8))
        draw_hline(canvas, y, 0.12, 0.12 + length, _TEXT_COLOR, thickness=2)
        # Bullet dot.
        fill_rect(canvas, y - 0.01, 0.08, y + 0.03, 0.10, _TEXT_COLOR)
    del rng  # layout is deterministic per slide; camera noise comes later


def draw_clipart(canvas: np.ndarray, rng: np.random.Generator, variant: int = 0) -> None:
    """A flat anatomical diagram: saturated shapes and labels on white."""
    layout = np.random.default_rng(20_000 + variant)
    canvas[:, :] = (0.97, 0.97, 0.97)
    # Organ diagram: big flat saturated shapes.
    fill_ellipse(canvas, 0.45, 0.38, 0.22, 0.18, (0.85, 0.30, 0.25))
    fill_ellipse(canvas, 0.55, 0.60, 0.16, 0.14, (0.25, 0.45, 0.80))
    fill_rect(canvas, 0.70, 0.30, 0.78, 0.70, (0.95, 0.70, 0.15))
    # Label lines.
    for i in range(2):
        y = 0.12 + 0.08 * i
        length = float(layout.uniform(0.2, 0.4))
        draw_hline(canvas, y, 0.55, 0.55 + length, _TEXT_COLOR, thickness=1)
    del rng


def draw_sketch(canvas: np.ndarray, rng: np.random.Generator, variant: int = 0) -> None:
    """A line sketch: thin dark strokes on a white board."""
    layout = np.random.default_rng(30_000 + variant)
    canvas[:, :] = (0.96, 0.96, 0.94)
    # Procedure sketch: a few strokes and an arrow.
    for _ in range(4):
        y = float(layout.uniform(0.2, 0.8))
        x0 = float(layout.uniform(0.1, 0.4))
        x1 = x0 + float(layout.uniform(0.2, 0.5))
        draw_hline(canvas, y, x0, min(x1, 0.92), (0.15, 0.15, 0.18), thickness=1)
    draw_vline(canvas, 0.5, 0.25, 0.75, (0.15, 0.15, 0.18), thickness=1)
    del rng


def draw_black_frame(canvas: np.ndarray) -> None:
    """An editing black frame (scene separator in edited video)."""
    canvas[:, :] = (0.01, 0.01, 0.01)
