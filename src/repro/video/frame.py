"""Frame model: a single RGB video frame plus its temporal coordinates.

Frames are stored as ``numpy`` arrays of shape ``(height, width, 3)`` with
``uint8`` channels in RGB order.  The class is a thin, validated wrapper so
the rest of the system can pass frames around without re-checking shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import VideoError

#: Default frame geometry used by the synthetic corpus.
DEFAULT_HEIGHT = 64
DEFAULT_WIDTH = 80


def validate_pixels(pixels: np.ndarray) -> np.ndarray:
    """Validate and normalise a pixel array to ``uint8`` RGB.

    Accepts ``uint8`` arrays directly and float arrays in ``[0, 1]`` which
    are rescaled.  Raises :class:`VideoError` for anything else.
    """
    if not isinstance(pixels, np.ndarray):
        raise VideoError(f"pixels must be an ndarray, got {type(pixels).__name__}")
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise VideoError(f"pixels must have shape (H, W, 3), got {pixels.shape}")
    if pixels.shape[0] < 1 or pixels.shape[1] < 1:
        raise VideoError(f"frame must be at least 1x1, got {pixels.shape}")
    if pixels.dtype == np.uint8:
        return pixels
    if np.issubdtype(pixels.dtype, np.floating):
        if pixels.min() < -1e-6 or pixels.max() > 1.0 + 1e-6:
            raise VideoError("float pixels must lie in [0, 1]")
        return (np.clip(pixels, 0.0, 1.0) * 255.0).round().astype(np.uint8)
    raise VideoError(f"unsupported pixel dtype {pixels.dtype}")


@dataclass(frozen=True)
class Frame:
    """One RGB video frame.

    Attributes
    ----------
    pixels:
        ``(H, W, 3)`` ``uint8`` RGB array.
    index:
        Zero-based position of the frame in its stream.
    timestamp:
        Presentation time in seconds.
    """

    pixels: np.ndarray = field(repr=False)
    index: int = 0
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "pixels", validate_pixels(self.pixels))
        if self.index < 0:
            raise VideoError(f"frame index must be >= 0, got {self.index}")
        if self.timestamp < 0:
            raise VideoError(f"timestamp must be >= 0, got {self.timestamp}")

    @property
    def height(self) -> int:
        """Frame height in pixels."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Frame width in pixels."""
        return int(self.pixels.shape[1])

    @property
    def shape(self) -> tuple[int, int, int]:
        """``(height, width, 3)``."""
        return tuple(self.pixels.shape)  # type: ignore[return-value]

    def as_float(self) -> np.ndarray:
        """Return pixels as ``float64`` in ``[0, 1]``."""
        return self.pixels.astype(np.float64) / 255.0

    def gray(self) -> np.ndarray:
        """Return a luma (ITU-R BT.601) grayscale image in ``[0, 1]``."""
        rgb = self.as_float()
        return 0.299 * rgb[:, :, 0] + 0.587 * rgb[:, :, 1] + 0.114 * rgb[:, :, 2]

    def with_index(self, index: int, timestamp: float) -> "Frame":
        """Return a copy of this frame re-addressed to a new position."""
        return Frame(pixels=self.pixels, index=index, timestamp=timestamp)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return (
            self.index == other.index
            and self.timestamp == other.timestamp
            and self.pixels.shape == other.pixels.shape
            and bool(np.array_equal(self.pixels, other.pixels))
        )

    def __hash__(self) -> int:
        return hash((self.index, self.timestamp, self.pixels.tobytes()))


def blank_frame(
    height: int = DEFAULT_HEIGHT,
    width: int = DEFAULT_WIDTH,
    color: tuple[int, int, int] = (0, 0, 0),
    index: int = 0,
    timestamp: float = 0.0,
) -> Frame:
    """Create a solid-colour frame (used for black frames and test fixtures)."""
    pixels = np.empty((height, width, 3), dtype=np.uint8)
    pixels[:, :] = np.asarray(color, dtype=np.uint8)
    return Frame(pixels=pixels, index=index, timestamp=timestamp)
