"""Ground-truth annotations attached to synthetic videos.

The paper evaluates against manually annotated medical videos.  Our
synthetic corpus carries its annotations from birth: the screenplay
compiler records where every shot, group and scene begins and ends,
which semantic unit each scene depicts, which speaker talks in each
shot, and which event category each scene belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VideoError
from repro.types import EventKind


@dataclass(frozen=True)
class ShotSpan:
    """One annotated shot: frames ``[start, stop)``.

    Attributes
    ----------
    shot_id:
        Zero-based shot index within the video.
    start / stop:
        Frame range, half-open.
    speaker:
        Identifier of the person speaking during the shot, or ``None``
        for silence / ambient audio.
    scene_id:
        The annotated semantic scene the shot belongs to.
    """

    shot_id: int
    start: int
    stop: int
    speaker: str | None = None
    scene_id: int = 0

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise VideoError(
                f"invalid shot span [{self.start}, {self.stop}) for shot {self.shot_id}"
            )

    @property
    def length(self) -> int:
        """Number of frames in the shot."""
        return self.stop - self.start

    def contains(self, frame_index: int) -> bool:
        """True when ``frame_index`` lies inside the shot."""
        return self.start <= frame_index < self.stop


@dataclass(frozen=True)
class SceneSpan:
    """One annotated semantic scene: a contiguous run of shots.

    Attributes
    ----------
    scene_id:
        Zero-based scene index.
    first_shot / last_shot:
        Inclusive shot-id range.
    event:
        Ground-truth event category of the scene.
    subject:
        Free-text description of the semantic unit (e.g. ``"laser eye
        surgery close-up"``); used by the skim-quality panel.
    topic_relevant:
        Whether the scene carries the video's main topic (presentations
        and titled segments do; filler does not).
    """

    scene_id: int
    first_shot: int
    last_shot: int
    event: EventKind = EventKind.UNKNOWN
    subject: str = ""
    topic_relevant: bool = False

    def __post_init__(self) -> None:
        if self.first_shot < 0 or self.last_shot < self.first_shot:
            raise VideoError(
                f"invalid scene shots [{self.first_shot}, {self.last_shot}] "
                f"for scene {self.scene_id}"
            )

    @property
    def shot_ids(self) -> range:
        """The shot ids covered by this scene."""
        return range(self.first_shot, self.last_shot + 1)

    @property
    def shot_count(self) -> int:
        """Number of shots in the scene."""
        return self.last_shot - self.first_shot + 1


@dataclass
class GroundTruth:
    """Full annotation set for one video.

    ``groups`` is a list of shot-id lists: the annotated group partition
    of the shot sequence.  ``scenes`` partition shots at a coarser
    granularity.  ``duplicate_scene_sets`` records which annotated scenes
    are re-occurrences of the same content (ground truth for scene
    clustering).
    """

    shots: list[ShotSpan] = field(default_factory=list)
    groups: list[list[int]] = field(default_factory=list)
    scenes: list[SceneSpan] = field(default_factory=list)
    duplicate_scene_sets: list[list[int]] = field(default_factory=list)

    def validate(self, frame_count: int) -> None:
        """Check internal consistency against a frame count.

        Raises :class:`VideoError` when shots do not tile the frame range,
        groups/scenes do not partition the shots, or ids are inconsistent.
        """
        if not self.shots:
            raise VideoError("ground truth has no shots")
        expected_start = 0
        for i, shot in enumerate(self.shots):
            if shot.shot_id != i:
                raise VideoError(f"shot {i} has id {shot.shot_id}")
            if shot.start != expected_start:
                raise VideoError(
                    f"shot {i} starts at {shot.start}, expected {expected_start}"
                )
            expected_start = shot.stop
        if expected_start != frame_count:
            raise VideoError(
                f"shots cover {expected_start} frames, video has {frame_count}"
            )
        covered = [sid for group in self.groups for sid in group]
        if sorted(covered) != list(range(len(self.shots))):
            raise VideoError("groups do not partition the shot sequence")
        scene_shots = [sid for scene in self.scenes for sid in scene.shot_ids]
        if sorted(scene_shots) != list(range(len(self.shots))):
            raise VideoError("scenes do not partition the shot sequence")
        scene_ids = {scene.scene_id for scene in self.scenes}
        for dup_set in self.duplicate_scene_sets:
            for sid in dup_set:
                if sid not in scene_ids:
                    raise VideoError(f"duplicate set references unknown scene {sid}")

    @property
    def shot_count(self) -> int:
        """Number of annotated shots."""
        return len(self.shots)

    @property
    def scene_count(self) -> int:
        """Number of annotated scenes."""
        return len(self.scenes)

    def shot_boundaries(self) -> list[int]:
        """Frame indices where a new shot starts (excluding frame 0)."""
        return [shot.start for shot in self.shots[1:]]

    def scene_of_shot(self, shot_id: int) -> SceneSpan:
        """Return the annotated scene containing ``shot_id``."""
        for scene in self.scenes:
            if shot_id in scene.shot_ids:
                return scene
        raise VideoError(f"no scene contains shot {shot_id}")

    def event_of_shot(self, shot_id: int) -> EventKind:
        """Ground-truth event of the scene containing ``shot_id``."""
        return self.scene_of_shot(shot_id).event

    def speaker_of_shot(self, shot_id: int) -> str | None:
        """Annotated speaker of ``shot_id`` (``None`` = no speech)."""
        if not 0 <= shot_id < len(self.shots):
            raise VideoError(f"shot id {shot_id} out of range")
        return self.shots[shot_id].speaker
