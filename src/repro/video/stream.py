"""Video stream model: an in-memory sequence of frames with optional audio.

A :class:`VideoStream` is what the shot detector consumes and what the
synthetic generator produces.  It owns the frame list, the frame rate, and
(optionally) a synchronised :class:`~repro.audio.waveform.Waveform`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import VideoError
from repro.video.frame import Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.audio.waveform import Waveform


@dataclass
class VideoStream:
    """A decoded video: ordered frames at a fixed frame rate.

    Attributes
    ----------
    frames:
        Frames in presentation order.  Indices and timestamps are
        re-stamped on construction so they are always consistent.
    fps:
        Frames per second; must be positive.
    title:
        Human-readable name (e.g. ``"laparoscopy"``).
    audio:
        Optional synchronised audio track.
    """

    frames: list[Frame]
    fps: float = 10.0
    title: str = "untitled"
    audio: Optional["Waveform"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise VideoError(f"fps must be positive, got {self.fps}")
        if not self.frames:
            raise VideoError("a VideoStream needs at least one frame")
        shape = self.frames[0].shape
        restamped = []
        for i, frame in enumerate(self.frames):
            if frame.shape != shape:
                raise VideoError(
                    f"frame {i} has shape {frame.shape}, expected {shape}"
                )
            restamped.append(frame.with_index(i, i / self.fps))
        self.frames = restamped

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __getitem__(self, index: int) -> Frame:
        return self.frames[index]

    @property
    def frame_count(self) -> int:
        """Number of frames in the stream."""
        return len(self.frames)

    @property
    def duration(self) -> float:
        """Total duration in seconds."""
        return len(self.frames) / self.fps

    @property
    def frame_shape(self) -> tuple[int, int, int]:
        """``(height, width, 3)`` of every frame."""
        return self.frames[0].shape

    def slice(self, start: int, stop: int) -> "VideoStream":
        """Return frames ``[start, stop)`` as a new stream (audio dropped).

        Frames in the result are re-stamped starting from index 0.
        """
        if not 0 <= start < stop <= len(self.frames):
            raise VideoError(
                f"invalid slice [{start}, {stop}) for {len(self.frames)} frames"
            )
        return VideoStream(
            frames=list(self.frames[start:stop]),
            fps=self.fps,
            title=f"{self.title}[{start}:{stop}]",
        )

    def timestamp_of(self, frame_index: int) -> float:
        """Presentation time of ``frame_index`` in seconds."""
        if not 0 <= frame_index < len(self.frames):
            raise VideoError(f"frame index {frame_index} out of range")
        return frame_index / self.fps

    def pixel_stack(self) -> np.ndarray:
        """Return all frames as one ``(N, H, W, 3)`` uint8 array."""
        return np.stack([frame.pixels for frame in self.frames])


def stream_from_arrays(
    arrays: Iterable[np.ndarray] | Sequence[np.ndarray],
    fps: float = 10.0,
    title: str = "untitled",
) -> VideoStream:
    """Build a stream from raw pixel arrays (convenience for tests)."""
    frames = [Frame(pixels=a, index=i) for i, a in enumerate(arrays)]
    return VideoStream(frames=frames, fps=fps, title=title)
