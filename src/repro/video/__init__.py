"""Video substrate: frames, streams, ground truth, and the synthetic corpus."""

from repro.video.frame import DEFAULT_HEIGHT, DEFAULT_WIDTH, Frame, blank_frame
from repro.video.ground_truth import GroundTruth, SceneSpan, ShotSpan
from repro.video.io import load_stream, save_stream
from repro.video.stream import VideoStream, stream_from_arrays

__all__ = [
    "DEFAULT_HEIGHT",
    "DEFAULT_WIDTH",
    "Frame",
    "GroundTruth",
    "SceneSpan",
    "ShotSpan",
    "VideoStream",
    "blank_frame",
    "load_stream",
    "save_stream",
    "stream_from_arrays",
]
