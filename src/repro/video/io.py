"""Persistence for generated videos: save/load streams with audio.

The synthetic generator is deterministic, but rendering a corpus video
still costs a couple of seconds; pipelines that iterate on mining
parameters can snapshot the rendered stream (npz: frames + audio + fps)
and reload it instantly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.audio.waveform import Waveform
from repro.errors import VideoError
from repro.video.frame import Frame
from repro.video.stream import VideoStream

#: Format marker written into every snapshot.
FORMAT_VERSION = 1


def save_stream(stream: VideoStream, path: str | Path) -> None:
    """Write a stream (frames, fps, title, audio) to an ``.npz`` file."""
    path = Path(path)
    payload = {
        "version": np.array(FORMAT_VERSION),
        "frames": stream.pixel_stack(),
        "fps": np.array(stream.fps),
        "title": np.array(stream.title),
    }
    if stream.audio is not None:
        payload["audio_samples"] = stream.audio.samples
        payload["audio_rate"] = np.array(stream.audio.sample_rate)
    np.savez_compressed(path, **payload)


def load_stream(path: str | Path) -> VideoStream:
    """Reload a stream written by :func:`save_stream`.

    Raises :class:`VideoError` for missing files, foreign formats, or
    corrupted payloads.
    """
    path = Path(path)
    if not path.exists():
        raise VideoError(f"no such snapshot: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["version"])
            if version != FORMAT_VERSION:
                raise VideoError(
                    f"snapshot version {version} not supported "
                    f"(expected {FORMAT_VERSION})"
                )
            frames_array = data["frames"]
            fps = float(data["fps"])
            title = str(data["title"])
            audio = None
            if "audio_samples" in data:
                audio = Waveform(
                    samples=data["audio_samples"],
                    sample_rate=int(data["audio_rate"]),
                )
    except VideoError:
        raise
    except Exception as exc:  # corrupt zip / missing keys / bad dtype
        raise VideoError(f"cannot load snapshot {path}: {exc}") from exc

    frames = [Frame(pixels=frames_array[i]) for i in range(frames_array.shape[0])]
    return VideoStream(frames=frames, fps=fps, title=title, audio=audio)
