"""Dependency-free shared vocabulary.

:class:`EventKind` lives here (rather than in :mod:`repro.events`) so
the video ground-truth annotations can name event categories without
importing the event-mining machinery — which itself depends on the
video substrate.
"""

from __future__ import annotations

from enum import Enum


class EventKind(str, Enum):
    """Semantic event category of a video scene (Sec. 4)."""

    PRESENTATION = "presentation"
    DIALOG = "dialog"
    CLINICAL_OPERATION = "clinical_operation"
    UNKNOWN = "unknown"

    @classmethod
    def known_kinds(cls) -> tuple["EventKind", ...]:
        """The three categories the paper's miner can assign."""
        return (cls.PRESENTATION, cls.DIALOG, cls.CLINICAL_OPERATION)

    @classmethod
    def from_label(cls, label: str) -> "EventKind":
        """Parse a label string, tolerating spaces, dashes and case."""
        normalised = label.strip().lower().replace(" ", "_").replace("-", "_")
        for kind in cls:
            if kind.value == normalised:
                return kind
        raise ValueError(f"unknown event label: {label!r}")
