"""Observability smoke check: traced mine + exporters (``make obs-smoke``).

Mines the demo title under an installed :class:`~repro.obs.trace.Tracer`,
asserts every pipeline stage produced a span, round-trips the trace
through its JSONL file format, and validates the Prometheus text the
process-global registry exports.  Exits non-zero with a diagnostic when
any of the three surfaces (spans, trace files, exporters) misbehaves.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.core import ClassMiner
from repro.obs import (
    NULL_TRACER,
    Tracer,
    check_prometheus_text,
    get_registry,
    install_tracer,
    load_trace,
    render_prometheus,
    render_spans,
)
from repro.video.synthesis import demo_screenplay, generate_video

#: Spans a demo mine must always produce (root plus every stage).
EXPECTED_SPANS = (
    "mine",
    "mine.shots",
    "mine.groups",
    "mine.scenes",
    "mine.clustering",
    "mine.cues",
    "mine.audio",
    "mine.events",
)


def run_smoke() -> int:
    """Run the traced demo mine and exporter checks; returns an exit code."""
    video = generate_video(demo_screenplay(), seed=0)
    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        result = ClassMiner().mine(video.stream)
    finally:
        install_tracer(previous if previous is not None else NULL_TRACER)

    names = {span.name for span in tracer.spans()}
    missing = [name for name in EXPECTED_SPANS if name not in names]
    if missing:
        print(f"obs-smoke: FAIL — missing spans {missing}", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        path = Path(tmp) / "trace.jsonl"
        tracer.write_jsonl(path)
        loaded = load_trace(path)
        if [s.to_json() for s in loaded] != [s.to_json() for s in tracer.spans()]:
            print("obs-smoke: FAIL — JSONL round-trip mismatch", file=sys.stderr)
            return 1

    tree = render_spans(tracer.spans())
    if "mine.shots" not in tree:
        print("obs-smoke: FAIL — render lost stage spans", file=sys.stderr)
        return 1

    registry = get_registry()
    snapshot = registry.snapshot()
    if snapshot.get("kernel_packs_total", 0.0) <= 0:
        print("obs-smoke: FAIL — kernel collector reported no packs", file=sys.stderr)
        return 1
    try:
        check_prometheus_text(render_prometheus(registry))
    except Exception as exc:  # noqa: BLE001 - diagnostic surface
        print(f"obs-smoke: FAIL — invalid Prometheus text: {exc}", file=sys.stderr)
        return 1

    print(
        f"obs-smoke: {len(tracer.spans())} spans "
        f"({len(names)} distinct), {result.structure.shot_count} shots mined, "
        f"{int(snapshot['kernel_packs_total'])} kernel packs, "
        "Prometheus export valid"
    )
    print(tree)
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())
