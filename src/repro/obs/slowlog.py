"""Bounded slow-query log: the N slowest queries this process served.

Both query paths (:class:`~repro.serving.server.QueryServer` and the
sharded :class:`~repro.net.coordinator.ShardedQueryService`) record
every finished query here; the log keeps only the ``capacity`` slowest
in a bounded min-heap, so memory stays flat under load and the fast
path pays one lock plus a float compare per query. Exposed over HTTP
at ``GET /debug/slow`` and on the CLI as ``classminer obs slow``.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import format_seconds

#: Default number of slow queries retained.
DEFAULT_CAPACITY = 32


@dataclass(frozen=True)
class SlowQuery:
    """One recorded query, slowest-first material for the log."""

    kind: str
    elapsed_seconds: float
    backend: str
    comparisons: int = 0
    approx_comparisons: int = 0
    cache_hit: bool = False
    degraded: bool = False
    shards_missing: tuple[int, ...] = ()
    trace_id: str | None = None
    wall_time: float = field(default_factory=time.time)

    def to_json(self) -> dict:
        """Plain-data form for the HTTP/CLI surfaces."""
        return {
            "kind": self.kind,
            "elapsed_ms": round(self.elapsed_seconds * 1e3, 3),
            "backend": self.backend,
            "comparisons": self.comparisons,
            "approx_comparisons": self.approx_comparisons,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
            "shards_missing": list(self.shards_missing),
            "trace_id": self.trace_id,
            "wall_time": self.wall_time,
        }


class SlowQueryLog:
    """Thread-safe bounded buffer retaining the slowest queries seen."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        # Min-heap of (elapsed, tiebreak, entry): the root is the
        # *fastest* retained query, evicted first when full.
        self._heap: list[tuple[float, int, SlowQuery]] = []
        self._tiebreak = itertools.count()
        self._recorded = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries retained."""
        return self._capacity

    @property
    def recorded(self) -> int:
        """Total queries ever offered to the log."""
        with self._lock:
            return self._recorded

    def record(self, entry: SlowQuery) -> None:
        """Offer one finished query; kept only if among the slowest."""
        with self._lock:
            self._recorded += 1
            item = (entry.elapsed_seconds, next(self._tiebreak), entry)
            if len(self._heap) < self._capacity:
                heapq.heappush(self._heap, item)
            elif entry.elapsed_seconds > self._heap[0][0]:
                heapq.heapreplace(self._heap, item)

    def entries(self) -> list[SlowQuery]:
        """Retained queries, slowest first."""
        with self._lock:
            items = list(self._heap)
        items.sort(key=lambda item: (-item[0], item[1]))
        return [entry for _elapsed, _tie, entry in items]

    def clear(self) -> None:
        """Drop every retained entry (counters too)."""
        with self._lock:
            self._heap.clear()
            self._recorded = 0

    def render(self) -> str:
        """Human-readable table, slowest first."""
        entries = self.entries()
        if not entries:
            return "(no queries recorded)"
        lines = [
            f"slowest {len(entries)} of {self.recorded} queries "
            f"(capacity {self._capacity})",
            f"{'elapsed':>9}  {'kind':<9} {'backend':<8} {'cmp':>8} "
            f"{'~cmp':>8} {'cache':<5} {'flags':<12} trace",
        ]
        for entry in entries:
            flags = []
            if entry.degraded:
                flags.append("degraded")
            if entry.shards_missing:
                flags.append(f"miss={list(entry.shards_missing)}")
            lines.append(
                f"{format_seconds(entry.elapsed_seconds):>9}  "
                f"{entry.kind:<9} {entry.backend:<8} "
                f"{entry.comparisons:>8} {entry.approx_comparisons:>8} "
                f"{'hit' if entry.cache_hit else 'miss':<5} "
                f"{','.join(flags) or '-':<12} {entry.trace_id or '-'}"
            )
        return "\n".join(lines)


#: The process-wide slow-query log both serving paths record into.
_GLOBAL_SLOW_LOG: SlowQueryLog | None = None
_GLOBAL_LOCK = threading.Lock()


def get_slow_log() -> SlowQueryLog:
    """The process-global :class:`SlowQueryLog` (created on first use)."""
    global _GLOBAL_SLOW_LOG
    with _GLOBAL_LOCK:
        if _GLOBAL_SLOW_LOG is None:
            _GLOBAL_SLOW_LOG = SlowQueryLog()
        return _GLOBAL_SLOW_LOG
