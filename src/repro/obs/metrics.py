"""Shared metric primitives: latency histograms and duration formatting.

Promoted out of :mod:`repro.serving.metrics` so every subsystem
(serving, ingest, mining, kernels) records through one implementation.
Latencies go into fixed geometric buckets (1 µs .. ~67 s, doubling per
bucket), so percentile estimation is O(buckets) with a bounded memory
footprint no matter how many observations flow through — the usual
production trade: a quantile is reported as the upper bound of the
bucket it falls in (≤ 2x its true value), which is plenty to tell a
50 µs cache hit from a 5 ms descent.  All clocks are
``time.perf_counter()`` (monotonic), never the wall clock.

Every histogram owns (or shares) a re-entrant lock.  A
:class:`~repro.obs.registry.MetricsRegistry` hands all its metrics the
*same* lock, so a registry snapshot is one consistent cut and
:meth:`LatencyHistogram.merge` between two registry histograms is a
single acquisition; standalone histograms get a private lock and
``merge`` acquires both sides in a deterministic order.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Histogram bucket upper bounds in seconds: 1 µs doubling up to ~67 s.
BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2**i for i in range(27))


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimates.

    Thread-safe: every mutator and reader runs under ``lock`` (a
    private :class:`threading.RLock` unless the caller shares one).
    """

    __slots__ = ("_lock", "_counts", "_total", "_count", "_max")

    def __init__(self, lock: threading.RLock | None = None) -> None:
        self._lock = lock if lock is not None else threading.RLock()
        self._counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self._total = 0.0
        self._count = 0
        self._max = 0.0

    @property
    def lock(self) -> threading.RLock:
        """The lock guarding this histogram (shared by its registry)."""
        return self._lock

    def record(self, seconds: float) -> None:
        """Add one observation (negative values clamp to zero)."""
        seconds = max(0.0, seconds)
        with self._lock:
            self._counts[bisect_left(BUCKET_BOUNDS, seconds)] += 1
            self._total += seconds
            self._count += 1
            self._max = max(self._max, seconds)

    @property
    def count(self) -> int:
        """Observations recorded."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Sum of all observations in seconds."""
        with self._lock:
            return self._total

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 when empty)."""
        with self._lock:
            return self._total / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest observation in seconds."""
        with self._lock:
            return self._max

    def quantile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1].

        Reports the upper bound of the bucket the quantile falls in,
        clamped to the largest observation (the top bucket's bound can
        otherwise overshoot it).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for index, bucket in enumerate(self._counts):
                cumulative += bucket
                if cumulative >= rank and bucket:
                    if index < len(BUCKET_BOUNDS):
                        return min(BUCKET_BOUNDS[index], self._max)
                    return self._max
            return self._max

    def bucket_counts(self) -> list[int]:
        """Per-bucket observation counts (last bucket is the overflow)."""
        with self._lock:
            return list(self._counts)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's observations into this one.

        Safe to call while either side is concurrently recording: both
        locks are held for the copy.  Histograms sharing one registry
        lock need a single (re-entrant) acquisition; distinct locks are
        acquired in a deterministic id order so two opposite-direction
        merges cannot deadlock.
        """
        if self._lock is other._lock:
            with self._lock:
                self._merge_locked(other)
            return
        first, second = sorted((self._lock, other._lock), key=id)
        with first, second:
            self._merge_locked(other)

    def _merge_locked(self, other: "LatencyHistogram") -> None:
        for index, bucket in enumerate(other._counts):
            self._counts[index] += bucket
        self._total += other._total
        self._count += other._count
        self._max = max(self._max, other._max)

    def state(self) -> dict:
        """Plain-data snapshot (one consistent cut) for the wire.

        The shape :meth:`from_state` rebuilds — how worker registries
        ship their histograms to the coordinator for merging.
        """
        with self._lock:
            return {
                "buckets": list(self._counts),
                "total": self._total,
                "count": self._count,
                "max": self._max,
            }

    @classmethod
    def from_state(cls, state: dict) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`state` output.

        Bucket lists from a different ``BUCKET_BOUNDS`` vintage are
        truncated/zero-padded to the local layout so a mixed-version
        cluster degrades to coarse counts instead of crashing.
        """
        histogram = cls()
        buckets = [int(b) for b in state.get("buckets", [])]
        width = len(histogram._counts)
        buckets = (buckets + [0] * width)[:width]
        histogram._counts = buckets
        histogram._total = float(state.get("total", 0.0))
        histogram._count = int(state.get("count", sum(buckets)))
        histogram._max = float(state.get("max", 0.0))
        return histogram

    def reset(self) -> None:
        """Zero all buckets and totals."""
        with self._lock:
            self._counts = [0] * (len(BUCKET_BOUNDS) + 1)
            self._total = 0.0
            self._count = 0
            self._max = 0.0


def format_seconds(seconds: float) -> str:
    """Human duration: µs under a millisecond, ms under a second,
    seconds under a minute, and ``XmY.Ys`` beyond (long ingest runs
    render as ``5m12.4s`` rather than ``312.40s``)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes = int(seconds // 60)
    return f"{minutes}m{seconds - 60 * minutes:.1f}s"
