"""Nested span tracing on the monotonic clock.

A :class:`Tracer` produces :class:`Span` records — name, start offset,
duration, attributes, parent — nested via a per-thread span stack, so
instrumented code just writes::

    with obs.span("mine.shots") as sp:
        shots = detect_shots(stream)
        sp.set(shots=len(shots))

Tracing is **zero-cost when disabled**: the module-level
:func:`span` helper dispatches to the installed tracer, which defaults
to :data:`NULL_TRACER` — its ``span()`` returns one shared no-op
handle, so a disabled call is a dict build and two no-op methods, no
locks, no clock reads, no allocation per span
(``benchmarks/bench_obs_overhead.py`` pins the end-to-end overhead).

Finished traces serialise one JSON object per span to a JSONL file and
render as a flame-style text tree (:func:`render_spans`), with each
span's share of its root's wall time.

Spans can also cross process boundaries: a caller stamps
``trace_id``/``parent_span`` onto an RPC frame, the remote side records
spans on its own private tracer (its epoch is the request's arrival
time, so starts are request-relative), ships them back as JSON in the
response frame, and the caller grafts them into its own trace with
:meth:`Tracer.attach_remote_spans` — remote span ids are remapped onto
the local id sequence and remote roots are re-parented under the local
RPC span, so the stitched tree renders as one flame.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObservabilityError


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (the ``X-Trace-Id`` wire shape)."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One finished span.

    ``start`` is seconds since the tracer's epoch (its creation time)
    on the monotonic clock; ``duration`` is seconds; ``parent_id`` is
    ``None`` for roots.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    duration: float
    thread: str
    attributes: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """Plain-data form (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "thread": self.thread,
            "attributes": self.attributes,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Span":
        """Rebuild a span serialised by :meth:`to_json`."""
        try:
            return cls(
                span_id=int(data["span_id"]),
                parent_id=(
                    None if data.get("parent_id") is None else int(data["parent_id"])
                ),
                name=str(data["name"]),
                start=float(data["start"]),
                duration=float(data["duration"]),
                thread=str(data.get("thread", "")),
                attributes=dict(data.get("attributes", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed trace span: {exc}") from exc


class _SpanHandle:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span_id", "_parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span_id = 0
        self._parent_id: int | None = None
        self._start = 0.0

    def set(self, **attributes) -> "_SpanHandle":
        """Attach attributes discovered mid-span (counts, cache hits)."""
        self._attributes.update(attributes)
        return self

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = next(tracer._ids)
        stack.append(self._span_id)
        self._start = tracer._clock()
        return self

    def __exit__(self, *_exc) -> None:
        tracer = self._tracer
        end = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        tracer._record(
            Span(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self._name,
                start=self._start - tracer._epoch,
                duration=end - self._start,
                thread=threading.current_thread().name,
                attributes=self._attributes,
            )
        )


class _NullHandle:
    """The shared no-op span handle of a disabled tracer."""

    __slots__ = ()

    def set(self, **_attributes) -> "_NullHandle":
        return self

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *_exc) -> None:
        return None


_NULL_HANDLE = _NullHandle()


class _AdoptHandle:
    """Context manager that adopts a foreign span id / trace id.

    Pushing an existing span id onto the calling thread's stack makes
    subsequent spans on this thread nest under it — the glue that keeps
    a trace connected across executor threads and worker queues.
    """

    __slots__ = ("_tracer", "_parent_id", "_trace_id", "_pushed", "_previous")

    def __init__(
        self, tracer: "Tracer", parent_id: int | None, trace_id: str | None
    ) -> None:
        self._tracer = tracer
        self._parent_id = parent_id
        self._trace_id = trace_id
        self._pushed = False
        self._previous: str | None = None

    def __enter__(self) -> "_AdoptHandle":
        tracer = self._tracer
        if self._parent_id is not None:
            tracer._stack().append(self._parent_id)
            self._pushed = True
        if self._trace_id is not None:
            self._previous = getattr(tracer._local, "trace_id", None)
            tracer._local.trace_id = self._trace_id
        return self

    def __exit__(self, *_exc) -> None:
        tracer = self._tracer
        if self._trace_id is not None:
            tracer._local.trace_id = self._previous
        if self._pushed:
            stack = tracer._stack()
            if stack and stack[-1] == self._parent_id:
                stack.pop()


class Tracer:
    """Collects spans from any thread; monotonic clock; JSONL output."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, **attributes):
        """Open a nested span; use as a context manager."""
        return _SpanHandle(self, name, attributes)

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        parent: bool = True,
        **attributes,
    ) -> Span:
        """Record an already-finished span from explicit timestamps.

        Bridges (e.g. ingest :class:`~repro.ingest.progress.JobEvent`
        consumers) use this for work that completed elsewhere.
        ``start`` is a raw monotonic-clock reading; with ``parent`` the
        span nests under the calling thread's current span.
        """
        stack = self._stack()
        span = Span(
            span_id=next(self._ids),
            parent_id=stack[-1] if (parent and stack) else None,
            name=name,
            start=start - self._epoch,
            duration=duration,
            thread=threading.current_thread().name,
            attributes=attributes,
        )
        self._record(span)
        return span

    def now(self) -> float:
        """Seconds since this tracer's epoch, on its monotonic clock."""
        return self._clock() - self._epoch

    def new_span_id(self) -> int:
        """Reserve a span id without opening a span.

        Callers that must hand out a parent id *before* the span's
        timings are known (the gateway wraps async work it only times
        at completion) reserve the id up front and record the span
        later via :meth:`add_span_at`.
        """
        return next(self._ids)

    def current_span_id(self) -> int | None:
        """The calling thread's innermost open (or adopted) span id."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_trace_id(self) -> str | None:
        """The trace id adopted on the calling thread, if any."""
        return getattr(self._local, "trace_id", None)

    def adopt(self, parent_id: int | None, trace_id: str | None = None):
        """Continue an existing span/trace on the calling thread.

        Context manager: while active, spans opened on this thread nest
        under ``parent_id`` and :meth:`current_trace_id` reports
        ``trace_id``. Either may be ``None`` to adopt only the other.
        """
        return _AdoptHandle(self, parent_id, trace_id)

    def add_span_at(
        self,
        name: str,
        start: float,
        duration: float,
        parent_id: int | None = None,
        span_id: int | None = None,
        **attributes,
    ) -> Span:
        """Record a finished span from epoch-relative timestamps.

        Unlike :meth:`add_span`, ``start`` is already relative to this
        tracer's epoch (pair with :meth:`now`), and the parent is
        explicit rather than read from the thread's stack — the shape
        cross-thread and cross-process stitching needs.
        """
        span = Span(
            span_id=next(self._ids) if span_id is None else span_id,
            parent_id=parent_id,
            name=name,
            start=start,
            duration=duration,
            thread=threading.current_thread().name,
            attributes=attributes,
        )
        self._record(span)
        return span

    def attach_remote_spans(
        self, spans: list[Span], parent_id: int | None, base_start: float
    ) -> int:
        """Graft spans recorded by a remote tracer into this trace.

        Remote span ids are remapped onto this tracer's id sequence (two
        shards both numbering from 1 must not collide), remote roots are
        re-parented under ``parent_id`` (normally the local RPC span),
        and starts shift by ``base_start`` — the remote epoch (request
        arrival) expressed on this tracer's clock. Returns the number of
        spans attached.
        """
        if not spans:
            return 0
        mapping = {sp.span_id: next(self._ids) for sp in spans}
        for sp in spans:
            self._record(
                Span(
                    span_id=mapping[sp.span_id],
                    parent_id=mapping.get(sp.parent_id, parent_id),
                    name=sp.name,
                    start=base_start + sp.start,
                    duration=sp.duration,
                    thread=sp.thread,
                    attributes=dict(sp.attributes),
                )
            )
        return len(spans)

    def spans(self) -> list[Span]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop every recorded span."""
        with self._lock:
            self._spans.clear()

    def write_jsonl(self, path: str | Path) -> Path:
        """Serialise every span, one JSON object per line."""
        path = Path(path)
        lines = [json.dumps(span.to_json()) for span in self.spans()]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def render(self) -> str:
        """Flame-style text tree of the recorded spans."""
        return render_spans(self.spans())


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False

    def span(self, _name: str, **_attributes) -> _NullHandle:
        """A shared no-op handle (no allocation, no clock reads)."""
        return _NULL_HANDLE

    def add_span(self, *_args, **_kwargs) -> None:
        """Ignore bridged spans."""
        return None

    def now(self) -> float:
        """No clock while disabled."""
        return 0.0

    def new_span_id(self) -> int:
        """No ids while disabled."""
        return 0

    def current_span_id(self) -> None:
        """No open spans while disabled."""
        return None

    def current_trace_id(self) -> None:
        """No trace context while disabled."""
        return None

    def adopt(self, _parent_id=None, _trace_id=None) -> _NullHandle:
        """A shared no-op context (nothing to adopt)."""
        return _NULL_HANDLE

    def add_span_at(self, *_args, **_kwargs) -> None:
        """Ignore explicit spans."""
        return None

    def attach_remote_spans(self, *_args, **_kwargs) -> int:
        """Ignore remote spans."""
        return 0

    def spans(self) -> list[Span]:
        """Always empty."""
        return []

    def clear(self) -> None:
        """Nothing to drop."""
        return None

    def render(self) -> str:
        """Nothing to render."""
        return "(tracing disabled)"


#: The process-default tracer: disabled.
NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER


def active_tracer() -> Tracer | NullTracer:
    """The tracer instrumentation currently reports to."""
    return _active


def install_tracer(tracer: Tracer | NullTracer | None):
    """Install ``tracer`` process-wide (None restores the no-op tracer).

    Returns the previously installed tracer so callers can restore it.
    """
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


def span(name: str, **attributes):
    """Open a span on the active tracer (no-op while tracing is off)."""
    return _active.span(name, **attributes)


def current_trace_id() -> str | None:
    """The trace id adopted on the calling thread (None while off)."""
    return _active.current_trace_id()


def load_trace(path: str | Path) -> list[Span]:
    """Read spans back from a JSONL trace file."""
    spans: list[Span] = []
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace file {path}: {exc}") from exc
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"malformed trace line: {exc}") from exc
        spans.append(Span.from_json(data))
    return spans


def _format_attrs(attributes: dict) -> str:
    if not attributes:
        return ""
    parts = []
    for key, value in attributes.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return "  " + " ".join(parts)


def render_spans(spans: list[Span], max_spans: int = 200) -> str:
    """Flame-style text tree: nesting, durations, share of the root.

    Spans beyond ``max_spans`` per parent are elided with a summary
    line so a loadtest trace stays readable.
    """
    from repro.obs.metrics import format_seconds

    if not spans:
        return "(empty trace)"
    children: dict[int | None, list[Span]] = {}
    for sp in spans:
        children.setdefault(sp.parent_id, []).append(sp)
    for group in children.values():
        group.sort(key=lambda sp: sp.start)
    # Orphans (parent finished after pruning or cross-process) render as roots.
    ids = {sp.span_id for sp in spans}
    roots = [
        sp
        for parent, group in children.items()
        for sp in group
        if parent is None or parent not in ids
    ]
    roots.sort(key=lambda sp: sp.start)

    lines: list[str] = []

    def walk(sp: Span, prefix: str, child_prefix: str, root_duration: float) -> None:
        share = (
            f" ({100.0 * sp.duration / root_duration:.0f}%)"
            if root_duration > 0 and prefix
            else ""
        )
        lines.append(
            f"{prefix}{sp.name:<24} {format_seconds(sp.duration):>9}{share}"
            f"{_format_attrs(sp.attributes)}"
        )
        kids = children.get(sp.span_id, [])
        shown = kids[:max_spans]
        for index, kid in enumerate(shown):
            last = index == len(shown) - 1 and len(kids) <= max_spans
            branch = "└─ " if last else "├─ "
            extend = "   " if last else "│  "
            walk(kid, child_prefix + branch, child_prefix + extend, root_duration)
        if len(kids) > max_spans:
            lines.append(
                f"{child_prefix}└─ … {len(kids) - max_spans} more spans elided"
            )

    for root in roots[:max_spans]:
        walk(root, "", "", root.duration)
    if len(roots) > max_spans:
        lines.append(f"… {len(roots) - max_spans} more root spans elided")
    return "\n".join(lines)
