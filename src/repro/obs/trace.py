"""Nested span tracing on the monotonic clock.

A :class:`Tracer` produces :class:`Span` records — name, start offset,
duration, attributes, parent — nested via a per-thread span stack, so
instrumented code just writes::

    with obs.span("mine.shots") as sp:
        shots = detect_shots(stream)
        sp.set(shots=len(shots))

Tracing is **zero-cost when disabled**: the module-level
:func:`span` helper dispatches to the installed tracer, which defaults
to :data:`NULL_TRACER` — its ``span()`` returns one shared no-op
handle, so a disabled call is a dict build and two no-op methods, no
locks, no clock reads, no allocation per span
(``benchmarks/bench_obs_overhead.py`` pins the end-to-end overhead).

Finished traces serialise one JSON object per span to a JSONL file and
render as a flame-style text tree (:func:`render_spans`), with each
span's share of its root's wall time.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObservabilityError


@dataclass
class Span:
    """One finished span.

    ``start`` is seconds since the tracer's epoch (its creation time)
    on the monotonic clock; ``duration`` is seconds; ``parent_id`` is
    ``None`` for roots.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    duration: float
    thread: str
    attributes: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """Plain-data form (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "thread": self.thread,
            "attributes": self.attributes,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Span":
        """Rebuild a span serialised by :meth:`to_json`."""
        try:
            return cls(
                span_id=int(data["span_id"]),
                parent_id=(
                    None if data.get("parent_id") is None else int(data["parent_id"])
                ),
                name=str(data["name"]),
                start=float(data["start"]),
                duration=float(data["duration"]),
                thread=str(data.get("thread", "")),
                attributes=dict(data.get("attributes", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed trace span: {exc}") from exc


class _SpanHandle:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span_id", "_parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span_id = 0
        self._parent_id: int | None = None
        self._start = 0.0

    def set(self, **attributes) -> "_SpanHandle":
        """Attach attributes discovered mid-span (counts, cache hits)."""
        self._attributes.update(attributes)
        return self

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = next(tracer._ids)
        stack.append(self._span_id)
        self._start = tracer._clock()
        return self

    def __exit__(self, *_exc) -> None:
        tracer = self._tracer
        end = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        tracer._record(
            Span(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self._name,
                start=self._start - tracer._epoch,
                duration=end - self._start,
                thread=threading.current_thread().name,
                attributes=self._attributes,
            )
        )


class _NullHandle:
    """The shared no-op span handle of a disabled tracer."""

    __slots__ = ()

    def set(self, **_attributes) -> "_NullHandle":
        return self

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *_exc) -> None:
        return None


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Collects spans from any thread; monotonic clock; JSONL output."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, **attributes):
        """Open a nested span; use as a context manager."""
        return _SpanHandle(self, name, attributes)

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        parent: bool = True,
        **attributes,
    ) -> Span:
        """Record an already-finished span from explicit timestamps.

        Bridges (e.g. ingest :class:`~repro.ingest.progress.JobEvent`
        consumers) use this for work that completed elsewhere.
        ``start`` is a raw monotonic-clock reading; with ``parent`` the
        span nests under the calling thread's current span.
        """
        stack = self._stack()
        span = Span(
            span_id=next(self._ids),
            parent_id=stack[-1] if (parent and stack) else None,
            name=name,
            start=start - self._epoch,
            duration=duration,
            thread=threading.current_thread().name,
            attributes=attributes,
        )
        self._record(span)
        return span

    def spans(self) -> list[Span]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop every recorded span."""
        with self._lock:
            self._spans.clear()

    def write_jsonl(self, path: str | Path) -> Path:
        """Serialise every span, one JSON object per line."""
        path = Path(path)
        lines = [json.dumps(span.to_json()) for span in self.spans()]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def render(self) -> str:
        """Flame-style text tree of the recorded spans."""
        return render_spans(self.spans())


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False

    def span(self, _name: str, **_attributes) -> _NullHandle:
        """A shared no-op handle (no allocation, no clock reads)."""
        return _NULL_HANDLE

    def add_span(self, *_args, **_kwargs) -> None:
        """Ignore bridged spans."""
        return None

    def spans(self) -> list[Span]:
        """Always empty."""
        return []

    def clear(self) -> None:
        """Nothing to drop."""
        return None

    def render(self) -> str:
        """Nothing to render."""
        return "(tracing disabled)"


#: The process-default tracer: disabled.
NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER


def active_tracer() -> Tracer | NullTracer:
    """The tracer instrumentation currently reports to."""
    return _active


def install_tracer(tracer: Tracer | NullTracer | None):
    """Install ``tracer`` process-wide (None restores the no-op tracer).

    Returns the previously installed tracer so callers can restore it.
    """
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


def span(name: str, **attributes):
    """Open a span on the active tracer (no-op while tracing is off)."""
    return _active.span(name, **attributes)


def load_trace(path: str | Path) -> list[Span]:
    """Read spans back from a JSONL trace file."""
    spans: list[Span] = []
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace file {path}: {exc}") from exc
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"malformed trace line: {exc}") from exc
        spans.append(Span.from_json(data))
    return spans


def _format_attrs(attributes: dict) -> str:
    if not attributes:
        return ""
    parts = []
    for key, value in attributes.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return "  " + " ".join(parts)


def render_spans(spans: list[Span], max_spans: int = 200) -> str:
    """Flame-style text tree: nesting, durations, share of the root.

    Spans beyond ``max_spans`` per parent are elided with a summary
    line so a loadtest trace stays readable.
    """
    from repro.obs.metrics import format_seconds

    if not spans:
        return "(empty trace)"
    children: dict[int | None, list[Span]] = {}
    for sp in spans:
        children.setdefault(sp.parent_id, []).append(sp)
    for group in children.values():
        group.sort(key=lambda sp: sp.start)
    # Orphans (parent finished after pruning or cross-process) render as roots.
    ids = {sp.span_id for sp in spans}
    roots = [
        sp
        for parent, group in children.items()
        for sp in group
        if parent is None or parent not in ids
    ]
    roots.sort(key=lambda sp: sp.start)

    lines: list[str] = []

    def walk(sp: Span, prefix: str, child_prefix: str, root_duration: float) -> None:
        share = (
            f" ({100.0 * sp.duration / root_duration:.0f}%)"
            if root_duration > 0 and prefix
            else ""
        )
        lines.append(
            f"{prefix}{sp.name:<24} {format_seconds(sp.duration):>9}{share}"
            f"{_format_attrs(sp.attributes)}"
        )
        kids = children.get(sp.span_id, [])
        shown = kids[:max_spans]
        for index, kid in enumerate(shown):
            last = index == len(shown) - 1 and len(kids) <= max_spans
            branch = "└─ " if last else "├─ "
            extend = "   " if last else "│  "
            walk(kid, child_prefix + branch, child_prefix + extend, root_duration)
        if len(kids) > max_spans:
            lines.append(
                f"{child_prefix}└─ … {len(kids) - max_spans} more spans elided"
            )

    for root in roots[:max_spans]:
        walk(root, "", "", root.duration)
    if len(roots) > max_spans:
        lines.append(f"… {len(roots) - max_spans} more root spans elided")
    return "\n".join(lines)
