"""Unified observability: tracing, metrics registry, exporters.

The first cross-cutting layer of the reproduction — every subsystem
reports through one surface:

* :mod:`repro.obs.trace` — nested, monotonic-clocked spans with
  attributes, JSONL trace files, flame-style text trees.  Disabled by
  default and zero-cost when disabled; ``classminer … --trace PATH``
  installs a real tracer for one run.
* :mod:`repro.obs.metrics` — the shared :class:`LatencyHistogram`
  (promoted from :mod:`repro.serving.metrics`) and
  :func:`format_seconds`.
* :mod:`repro.obs.registry` — named counter / gauge / histogram
  families under one lock, plus read-time collectors for the lock-free
  kernel and index hot-path stats.  :func:`get_registry` is the
  process-wide instance serving, ingest and mining all default to.
* :mod:`repro.obs.export` — Prometheus text exposition and JSON
  exporters (``classminer obs export``), with a line-format checker.
* :mod:`repro.obs.bridge` — ingest ``JobEvent`` → span/counter bridge
  and the default registry collectors.
* :mod:`repro.obs.slowlog` — bounded slow-query log retaining the N
  slowest queries (``GET /debug/slow``, ``classminer obs slow``).

Traces also cross process boundaries: the gateway accepts/generates
``X-Trace-Id``, RPC frames carry ``trace_id``/``parent_span``, workers
ship their spans back in response frames, and the coordinator stitches
them into one flame tree (see docs/OBSERVABILITY.md).

Instrumented call sites write::

    from repro import obs

    with obs.span("mine.shots", window=config.shot_window) as sp:
        shots = detect_shots(stream)
        sp.set(shots=len(shots))

which is a no-op while no tracer is installed (see
``benchmarks/bench_obs_overhead.py`` for the measured bound).
"""

from repro.obs.bridge import JobEventBridge, register_default_collectors
from repro.obs.export import (
    check_prometheus_text,
    render_json,
    render_prometheus,
    render_prometheus_dumps,
    validate_prometheus_text,
)
from repro.obs.metrics import BUCKET_BOUNDS, LatencyHistogram, format_seconds
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricFamily,
    MetricsRegistry,
    get_registry,
)
from repro.obs.slowlog import SlowQuery, SlowQueryLog, get_slow_log
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    current_trace_id,
    install_tracer,
    load_trace,
    new_trace_id,
    render_spans,
    span,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "JobEventBridge",
    "LatencyHistogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "active_tracer",
    "check_prometheus_text",
    "current_trace_id",
    "format_seconds",
    "get_registry",
    "get_slow_log",
    "install_tracer",
    "load_trace",
    "new_trace_id",
    "register_default_collectors",
    "render_json",
    "render_prometheus",
    "render_prometheus_dumps",
    "render_spans",
    "span",
    "validate_prometheus_text",
]
