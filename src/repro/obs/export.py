"""Metric exporters: Prometheus text format and JSON.

:func:`render_prometheus` emits the classic text exposition format —
``# HELP`` / ``# TYPE`` headers, ``name{label="value"} sample`` lines,
histograms as cumulative ``_bucket{le=…}`` series plus ``_sum`` and
``_count``.  :func:`render_prometheus_dumps` renders the *merged* view
of several registry :meth:`~repro.obs.registry.MetricsRegistry.dump`
payloads (the coordinator's own registry plus one scrape per shard
worker), tagging each source's samples with extra labels such as
``shard="2"``; samples that still collide fold together — histograms
through :meth:`~repro.obs.metrics.LatencyHistogram.merge`, counters by
summing, gauges last-wins.  :func:`validate_prometheus_text` is a
line-format checker (used by CI) that catches malformed names, labels
and sample values without needing a real Prometheus server.
"""

from __future__ import annotations

import json
import math
import re

from repro.errors import ObservabilityError
from repro.obs.metrics import BUCKET_BOUNDS, LatencyHistogram
from repro.obs.registry import MetricsRegistry

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in str(value))


def _labels_text(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _histogram_lines(
    name: str, pairs: tuple, counts: list[int], total: float
) -> list[str]:
    """The cumulative ``_bucket``/``_sum``/``_count`` series of one sample."""
    lines: list[str] = []
    cumulative = 0
    for bound, count in zip(BUCKET_BOUNDS, counts):
        cumulative += count
        le_pairs = tuple(pairs) + (("le", _format_value(bound)),)
        lines.append(f"{name}_bucket{_labels_text(le_pairs)} {cumulative}")
    cumulative += counts[-1]
    inf_pairs = tuple(pairs) + (("le", "+Inf"),)
    lines.append(f"{name}_bucket{_labels_text(inf_pairs)} {cumulative}")
    lines.append(f"{name}_sum{_labels_text(pairs)} {_format_value(total)}")
    lines.append(f"{name}_count{_labels_text(pairs)} {cumulative}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        samples = family.samples()
        if not samples:
            continue
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for pairs, child in samples:
            if family.kind == "histogram":
                lines.extend(
                    _histogram_lines(
                        family.name, tuple(pairs), child.bucket_counts(), child.total
                    )
                )
            else:
                lines.append(
                    f"{family.name}{_labels_text(pairs)} "
                    f"{_format_value(child.value)}"
                )
    collected = registry.collect()
    if collected:
        lines.append("# collected gauges (read-time collectors)")
        for name in sorted(collected):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(collected[name])}")
    return "\n".join(lines) + "\n" if lines else ""


def render_prometheus_dumps(
    dumps: list[tuple[dict[str, str], dict]],
) -> str:
    """Merged Prometheus exposition of several registry dumps.

    ``dumps`` is ``[(extra_labels, registry.dump()), ...]`` — one entry
    per source (the coordinator's registry with no extra labels, each
    scraped worker with ``{"shard": "<id>"}``). Same-named families
    from different sources emit as one family whose samples carry the
    source's extra labels; a family whose kind disagrees with the first
    sighting is skipped rather than corrupting the exposition. Samples
    whose full label set still collides are folded: histograms via
    :meth:`LatencyHistogram.merge`, counters by summing, gauges by
    last-wins.
    """
    merged: dict[str, dict] = {}
    collected: list[tuple[str, tuple, float]] = []
    for extra_labels, dump in dumps:
        extra = tuple(
            (str(name), str(value)) for name, value in (extra_labels or {}).items()
        )
        for fam in dump.get("families", []):
            name, kind = str(fam["name"]), str(fam["kind"])
            entry = merged.get(name)
            if entry is None:
                entry = {
                    "kind": kind,
                    "help": str(fam.get("help", "")),
                    "samples": {},
                    "order": [],
                }
                merged[name] = entry
            elif entry["kind"] != kind:
                continue
            if not entry["help"] and fam.get("help"):
                entry["help"] = str(fam["help"])
            for sample in fam.get("samples", []):
                pairs = extra + tuple(
                    (str(k), str(v)) for k, v in sample.get("labels", [])
                )
                existing = entry["samples"].get(pairs)
                if kind == "histogram":
                    histogram = LatencyHistogram.from_state(
                        sample.get("histogram", {})
                    )
                    if existing is None:
                        entry["samples"][pairs] = histogram
                        entry["order"].append(pairs)
                    else:
                        existing.merge(histogram)
                else:
                    value = float(sample.get("value", 0.0))
                    if existing is None:
                        entry["samples"][pairs] = value
                        entry["order"].append(pairs)
                    elif kind == "counter":
                        entry["samples"][pairs] = existing + value
                    else:
                        entry["samples"][pairs] = value
        for name in sorted(dump.get("collected", {})):
            collected.append((str(name), extra, float(dump["collected"][name])))
    lines: list[str] = []
    for name in sorted(merged):
        entry = merged[name]
        if not entry["order"]:
            continue
        if entry["help"]:
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        for pairs in entry["order"]:
            child = entry["samples"][pairs]
            if entry["kind"] == "histogram":
                lines.extend(
                    _histogram_lines(name, pairs, child.bucket_counts(), child.total)
                )
            else:
                lines.append(f"{name}{_labels_text(pairs)} {_format_value(child)}")
    if collected:
        lines.append("# collected gauges (read-time collectors)")
        emitted_type: set[str] = set()
        for name, extra, value in sorted(collected, key=lambda item: item[:2]):
            if name not in emitted_type:
                lines.append(f"# TYPE {name} gauge")
                emitted_type.add(name)
            lines.append(f"{name}{_labels_text(extra)} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def render_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The registry's flat snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


#: One sample line: name, optional {labels}, one float value.
_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_METRIC_NAME})"
    rf"(?:\{{(?:{_LABEL})(?:,(?:{_LABEL}))*\}})?"
    rf" (?P<value>\S+)$"
)
_HELP_RE = re.compile(rf"^# HELP {_METRIC_NAME} .*$")
_TYPE_RE = re.compile(
    rf"^# TYPE {_METRIC_NAME} (counter|gauge|histogram|summary|untyped)$"
)


def validate_prometheus_text(text: str) -> list[str]:
    """Line-format check of a Prometheus exposition; returns violations.

    Accepts ``# HELP`` / ``# TYPE`` / other comments, blank lines and
    well-formed sample lines whose value parses as a float (or
    ±Inf/NaN).  An empty list means the text passed.
    """
    errors: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP"):
            if not _HELP_RE.match(line):
                errors.append(f"line {number}: malformed HELP comment: {line!r}")
            continue
        if line.startswith("# TYPE"):
            if not _TYPE_RE.match(line):
                errors.append(f"line {number}: malformed TYPE comment: {line!r}")
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {number}: malformed sample: {line!r}")
            continue
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                errors.append(f"line {number}: non-numeric value {value!r}")
    return errors


def check_prometheus_text(text: str) -> None:
    """Raise :class:`ObservabilityError` when the exposition is malformed."""
    errors = validate_prometheus_text(text)
    if errors:
        raise ObservabilityError(
            "invalid Prometheus exposition: " + "; ".join(errors[:5])
        )
