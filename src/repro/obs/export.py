"""Metric exporters: Prometheus text format and JSON.

:func:`render_prometheus` emits the classic text exposition format —
``# HELP`` / ``# TYPE`` headers, ``name{label="value"} sample`` lines,
histograms as cumulative ``_bucket{le=…}`` series plus ``_sum`` and
``_count``.  :func:`validate_prometheus_text` is a line-format checker
(used by CI) that catches malformed names, labels and sample values
without needing a real Prometheus server.
"""

from __future__ import annotations

import json
import math
import re

from repro.errors import ObservabilityError
from repro.obs.metrics import BUCKET_BOUNDS
from repro.obs.registry import MetricsRegistry

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in str(value))


def _labels_text(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        samples = family.samples()
        if not samples:
            continue
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for pairs, child in samples:
            if family.kind == "histogram":
                cumulative = 0
                counts = child.bucket_counts()
                for bound, count in zip(BUCKET_BOUNDS, counts):
                    cumulative += count
                    le_pairs = tuple(pairs) + (("le", _format_value(bound)),)
                    lines.append(
                        f"{family.name}_bucket{_labels_text(le_pairs)} {cumulative}"
                    )
                cumulative += counts[-1]
                inf_pairs = tuple(pairs) + (("le", "+Inf"),)
                lines.append(
                    f"{family.name}_bucket{_labels_text(inf_pairs)} {cumulative}"
                )
                lines.append(
                    f"{family.name}_sum{_labels_text(pairs)} "
                    f"{_format_value(child.total)}"
                )
                lines.append(f"{family.name}_count{_labels_text(pairs)} {cumulative}")
            else:
                lines.append(
                    f"{family.name}{_labels_text(pairs)} "
                    f"{_format_value(child.value)}"
                )
    collected = registry.collect()
    if collected:
        lines.append("# collected gauges (read-time collectors)")
        for name in sorted(collected):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(collected[name])}")
    return "\n".join(lines) + "\n" if lines else ""


def render_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The registry's flat snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


#: One sample line: name, optional {labels}, one float value.
_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_METRIC_NAME})"
    rf"(?:\{{(?:{_LABEL})(?:,(?:{_LABEL}))*\}})?"
    rf" (?P<value>\S+)$"
)
_HELP_RE = re.compile(rf"^# HELP {_METRIC_NAME} .*$")
_TYPE_RE = re.compile(
    rf"^# TYPE {_METRIC_NAME} (counter|gauge|histogram|summary|untyped)$"
)


def validate_prometheus_text(text: str) -> list[str]:
    """Line-format check of a Prometheus exposition; returns violations.

    Accepts ``# HELP`` / ``# TYPE`` / other comments, blank lines and
    well-formed sample lines whose value parses as a float (or
    ±Inf/NaN).  An empty list means the text passed.
    """
    errors: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP"):
            if not _HELP_RE.match(line):
                errors.append(f"line {number}: malformed HELP comment: {line!r}")
            continue
        if line.startswith("# TYPE"):
            if not _TYPE_RE.match(line):
                errors.append(f"line {number}: malformed TYPE comment: {line!r}")
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {number}: malformed sample: {line!r}")
            continue
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                errors.append(f"line {number}: non-numeric value {value!r}")
    return errors


def check_prometheus_text(text: str) -> None:
    """Raise :class:`ObservabilityError` when the exposition is malformed."""
    errors = validate_prometheus_text(text)
    if errors:
        raise ObservabilityError(
            "invalid Prometheus exposition: " + "; ".join(errors[:5])
        )
