"""Bridges between existing signals and the observability layer.

Two kinds of glue live here:

* :class:`JobEventBridge` consumes ingest
  :class:`~repro.ingest.progress.JobEvent`\\ s and turns them into
  registry counters (``ingest_events_total{kind=…}``,
  ``ingest_jobs_total{outcome=…}``) and — for terminal events — spans
  on the active tracer, back-dated from the event's monotonic
  ``timestamp`` minus its ``wall_time`` so job spans line up with any
  in-process pipeline stage spans.
* :func:`register_default_collectors` attaches read-time collectors
  for the lock-free hot-path counters the kernel and index layers keep
  (:data:`repro.core.kernels.KERNEL_STATS`,
  :data:`repro.database.index.INDEX_STATS`) — the hot loops pay a bare
  attribute increment, the registry pays the aggregation only when a
  snapshot or export actually reads it.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import active_tracer

#: JobEvent kinds that terminate a job (and therefore carry a span).
_TERMINAL_KINDS = {"cached", "finished", "failed"}


class JobEventBridge:
    """A progress callback that mirrors job events into obs.

    Usable directly as an executor progress sink, or composed around
    an existing callback::

        bridge = JobEventBridge(registry)
        run_jobs(jobs, store, manifest, progress=bridge.wrap(tracker))
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._events = registry.counter(
            "ingest_events_total",
            "Ingest job events observed, by event kind.",
            labelnames=("kind",),
        )
        self._jobs = registry.counter(
            "ingest_jobs_total",
            "Terminal ingest job outcomes.",
            labelnames=("outcome",),
        )
        self._wall = registry.histogram(
            "ingest_job_seconds",
            "Wall seconds of terminal ingest attempts.",
        )

    def __call__(self, event) -> None:
        """Record one :class:`~repro.ingest.progress.JobEvent`."""
        self._events.labels(kind=event.kind).inc()
        if event.kind not in _TERMINAL_KINDS:
            return
        self._jobs.labels(outcome=event.kind).inc()
        self._wall.record(event.wall_time)
        tracer = active_tracer()
        if tracer.enabled:
            attributes = {"outcome": event.kind, "key": event.key[:12]}
            if event.attempt:
                attributes["attempt"] = event.attempt
            if event.shots is not None:
                attributes["shots"] = event.shots
            if event.scenes is not None:
                attributes["scenes"] = event.scenes
            if event.message:
                attributes["message"] = event.message
            tracer.add_span(
                f"ingest.job:{event.title}",
                start=event.timestamp - event.wall_time,
                duration=event.wall_time,
                **attributes,
            )

    def wrap(self, progress):
        """Compose with another progress callback (None passes through)."""
        if progress is None:
            return self

        def composed(event) -> None:
            self(event)
            progress(event)

        return composed


def kernel_stats_collector() -> dict[str, float]:
    """Read-time gauges from the similarity-kernel hot-path counters."""
    from repro.core.kernels import KERNEL_STATS

    return {
        "kernel_packs_total": float(KERNEL_STATS.packs),
        "kernel_packed_rows_total": float(KERNEL_STATS.packed_rows),
        "kernel_chunks_total": float(KERNEL_STATS.chunks),
        "kernel_pair_evals_total": float(KERNEL_STATS.pair_evals),
    }


def index_stats_collector() -> dict[str, float]:
    """Read-time gauges from the hierarchical-index hot-path counters."""
    from repro.database.index import INDEX_STATS

    return {
        "index_descents_total": float(INDEX_STATS.descents),
        "index_routes_total": float(INDEX_STATS.routes),
        "index_center_block_builds_total": float(INDEX_STATS.center_block_builds),
        "index_block_cache_hits_total": float(INDEX_STATS.block_hits),
        "index_block_cache_misses_total": float(INDEX_STATS.block_misses),
    }


def register_default_collectors(registry: MetricsRegistry) -> None:
    """Attach the kernel and index collectors to ``registry``.

    The imports happen inside the collectors, at read time, so a
    registry can exist before (or without) the heavy numeric modules.
    """
    registry.register_collector(kernel_stats_collector)
    registry.register_collector(index_stats_collector)
