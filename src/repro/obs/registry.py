"""Process-wide metrics registry: counters, gauges, histogram families.

A :class:`MetricsRegistry` owns named metric *families*; a family with
label names fans out into one child metric per distinct label set, so
``registry.counter("queries_total", labelnames=("kind",))`` yields one
counter per query kind while the exporter still sees a single family.

Lock discipline: the registry hands every metric it creates the *same*
re-entrant lock, so a :meth:`MetricsRegistry.snapshot` is one
consistent cut across every counter, gauge and histogram, and
histogram merges between registry metrics are a single acquisition.

*Collectors* are callables returning ``{name: value}`` evaluated at
snapshot/export time; the kernel and index layers publish their
lock-free hot-path counters this way instead of paying a lock per
chunk (see :mod:`repro.obs.bridge`).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable

from repro.errors import ObservabilityError
from repro.obs.metrics import LatencyHistogram

#: A collector contributes ``{metric_name: value}`` gauges at read time.
Collector = Callable[[], dict[str, float]]

#: Metric/label name charset (Prometheus-compatible).
_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(ch not in _NAME_OK for ch in name):
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise ObservabilityError("counters cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero the counter (metric resets, tests)."""
        with self._lock:
            self._value = 0.0


class Gauge:
    """Point-in-time value that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero the gauge."""
        with self._lock:
            self._value = 0.0


#: Metric kind -> child factory.
_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": LatencyHistogram,
}


class MetricFamily:
    """One named metric with zero or more label dimensions.

    With empty ``labelnames`` the family is its own single child and
    the metric methods (``inc``/``set``/``record``/…) delegate to it,
    so unlabeled usage stays one call:
    ``registry.counter("swaps_total").inc()``.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        lock: threading.RLock,
    ) -> None:
        self.name = _check_name(name)
        self.kind = kind
        self.help = help_text
        self.labelnames = tuple(_check_name(label) for label in labelnames)
        self._lock = lock
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labelvalues: str):
        """The child metric for one label set (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ObservabilityError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _KINDS[self.kind](self._lock)
                self._children[key] = child
            return child

    def samples(self) -> list[tuple[tuple[tuple[str, str], ...], object]]:
        """Every (label pairs, child metric) of the family."""
        with self._lock:
            return [
                (tuple(zip(self.labelnames, key)), child)
                for key, child in sorted(self._children.items())
            ]

    def reset(self) -> None:
        """Reset every child's value (children themselves are kept)."""
        with self._lock:
            for child in self._children.values():
                child.reset()  # type: ignore[attr-defined]

    # -- unlabeled convenience: the family acts as its single child. --

    def _solo(self):
        if self.labelnames:
            raise ObservabilityError(
                f"{self.name} is labeled by {self.labelnames}; call .labels()"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        """Unlabeled counter/gauge increment."""
        self._solo().inc(amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        """Unlabeled gauge set."""
        self._solo().set(value)  # type: ignore[attr-defined]

    def record(self, seconds: float) -> None:
        """Unlabeled histogram observation."""
        self._solo().record(seconds)  # type: ignore[attr-defined]

    def quantile(self, q: float) -> float:
        """Unlabeled histogram quantile."""
        return self._solo().quantile(q)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        """Unlabeled counter/gauge value."""
        return self._solo().value  # type: ignore[attr-defined]

    @property
    def count(self) -> int:
        """Unlabeled histogram observation count."""
        return self._solo().count  # type: ignore[attr-defined]

    @property
    def mean(self) -> float:
        """Unlabeled histogram mean."""
        return self._solo().mean  # type: ignore[attr-defined]

    @property
    def max(self) -> float:
        """Unlabeled histogram max."""
        return self._solo().max  # type: ignore[attr-defined]


class MetricsRegistry:
    """Named metric families plus read-time collectors, one shared lock."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Collector] = []

    @property
    def lock(self) -> threading.RLock:
        """The single re-entrant lock all this registry's metrics share."""
        return self._lock

    def _family(
        self, name: str, kind: str, help_text: str, labelnames: Iterable[str]
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help_text, labelnames, self._lock)
                self._families[name] = family
                return family
            if family.kind != kind:
                raise ObservabilityError(
                    f"{name} is a {family.kind}, requested as {kind}"
                )
            if labelnames and family.labelnames != labelnames:
                raise ObservabilityError(
                    f"{name} is labeled by {family.labelnames}, "
                    f"requested {labelnames}"
                )
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        """Get-or-create a counter family."""
        return self._family(name, "counter", help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        """Get-or-create a gauge family."""
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        """Get-or-create a latency-histogram family."""
        return self._family(name, "histogram", help_text, labelnames)

    def register_collector(self, collector: Collector) -> Collector:
        """Add a read-time ``{name: value}`` contributor; returns it."""
        with self._lock:
            self._collectors.append(collector)
        return collector

    def unregister_collector(self, collector: Collector) -> None:
        """Remove a collector (missing ones are a no-op)."""
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    def families(self) -> list[MetricFamily]:
        """Registered families, name-sorted (exporter input)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def collect(self) -> dict[str, float]:
        """Evaluate every collector into one merged ``{name: value}``."""
        with self._lock:
            collectors = list(self._collectors)
        merged: dict[str, float] = {}
        for collector in collectors:
            merged.update(collector())
        return merged

    def snapshot(self) -> dict[str, float]:
        """Flat point-in-time view of everything the registry knows.

        Counter and gauge samples appear as ``name`` or
        ``name{label=value,...}``; histograms expand to ``_count``,
        ``_sum``, ``_p50``/``_p95``/``_p99`` and ``_max`` entries.
        Collector values are merged in last.
        """
        view: dict[str, float] = {}
        with self._lock:
            for family in self.families():
                for labelpairs, child in family.samples():
                    suffix = (
                        "{"
                        + ",".join(f"{k}={v}" for k, v in labelpairs)
                        + "}"
                        if labelpairs
                        else ""
                    )
                    if family.kind == "histogram":
                        name = family.name
                        view[f"{name}_count{suffix}"] = float(child.count)
                        view[f"{name}_sum{suffix}"] = child.total
                        view[f"{name}_p50{suffix}"] = child.quantile(0.50)
                        view[f"{name}_p95{suffix}"] = child.quantile(0.95)
                        view[f"{name}_p99{suffix}"] = child.quantile(0.99)
                        view[f"{name}_max{suffix}"] = child.max
                    else:
                        view[f"{family.name}{suffix}"] = child.value
        view.update(self.collect())
        return view

    def dump(self) -> dict:
        """Wire-format state of every family plus collector values.

        The shape a shard worker returns for the ``metrics`` RPC op:
        JSON-safe plain data the coordinator can merge into a
        cluster-wide view (histograms carry their
        :meth:`~repro.obs.metrics.LatencyHistogram.state` and are
        rebuilt on the far side so merging reuses
        :meth:`~repro.obs.metrics.LatencyHistogram.merge`).
        """
        families = []
        with self._lock:
            for family in self.families():
                samples = []
                for labelpairs, child in family.samples():
                    sample: dict = {"labels": [list(pair) for pair in labelpairs]}
                    if family.kind == "histogram":
                        sample["histogram"] = child.state()  # type: ignore[attr-defined]
                    else:
                        sample["value"] = child.value  # type: ignore[attr-defined]
                    samples.append(sample)
                families.append(
                    {
                        "name": family.name,
                        "kind": family.kind,
                        "help": family.help,
                        "labelnames": list(family.labelnames),
                        "samples": samples,
                    }
                )
        return {"families": families, "collected": self.collect()}

    def reset(self) -> None:
        """Reset every metric value (families and collectors are kept)."""
        with self._lock:
            for family in self._families.values():
                family.reset()


#: The process-wide registry every subsystem reports into by default.
_GLOBAL_REGISTRY: MetricsRegistry | None = None
_GLOBAL_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry` (created on first use).

    Default collectors for the kernel and index hot-path stats are
    attached lazily by :func:`repro.obs.bridge.register_default_collectors`
    the first time the registry is created.
    """
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        if _GLOBAL_REGISTRY is None:
            _GLOBAL_REGISTRY = MetricsRegistry()
            # Imported here (not at module top) so the obs package can
            # be imported by repro.core without a circular import.
            from repro.obs.bridge import register_default_collectors

            register_default_collectors(_GLOBAL_REGISTRY)
        return _GLOBAL_REGISTRY
