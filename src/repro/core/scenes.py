"""Scene detection by group merging (Sec. 3.4).

Similarities between all neighbouring groups (Eq. 10) are pooled, the
fast entropy technique picks the merging threshold TG, and runs of
adjacent groups above TG merge into scenes.  Scenes with fewer than
three shots are eliminated.  Each scene's representative group (its
centroid for clustering) comes from Eq. (11) with the paper's
small-scene tie-break rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import Shot
from repro.core.groups import Group
from repro.core.kernels import FeatureMatrix, group_stsim
from repro.core.similarity import (
    SimilarityWeights,
    group_similarity_matrix,
)
from repro.core.threshold import entropy_threshold
from repro.errors import MiningError

#: Paper rule: scenes with fewer shots than this are eliminated.
MIN_SCENE_SHOTS = 3


@dataclass
class Scene:
    """A detected video scene: one or more merged groups.

    Attributes
    ----------
    scene_id:
        Zero-based index among *kept* scenes.
    groups:
        Member groups in temporal order.
    representative_group:
        Eq. (11) pick; also used as the scene centroid by clustering.
    """

    scene_id: int
    groups: list[Group]
    representative_group: Group = field(repr=False)

    def __post_init__(self) -> None:
        if not self.groups:
            raise MiningError(f"scene {self.scene_id} has no groups")

    @property
    def shots(self) -> list[Shot]:
        """All member shots in temporal order."""
        return [shot for group in self.groups for shot in group.shots]

    @property
    def shot_ids(self) -> list[int]:
        """All member shot ids."""
        return [shot.shot_id for shot in self.shots]

    @property
    def shot_count(self) -> int:
        """Number of member shots."""
        return len(self.shots)

    @property
    def group_count(self) -> int:
        """Number of member groups."""
        return len(self.groups)

    @property
    def duration(self) -> float:
        """Total duration in seconds."""
        return sum(group.duration for group in self.groups)

    @property
    def frame_span(self) -> tuple[int, int]:
        """``(first frame, last frame + 1)`` covered by the scene."""
        return (self.groups[0].frame_span[0], self.groups[-1].frame_span[1])

    def has_temporal_group(self) -> bool:
        """True when at least one member group is temporally related."""
        return any(group.is_temporal for group in self.groups)


@dataclass
class SceneDetectionResult:
    """Scenes plus the bookkeeping the evaluation needs.

    Attributes
    ----------
    scenes:
        Kept scenes (>= 3 shots each).
    eliminated:
        Merged units dropped by the < 3 shots rule (group lists).
    merge_threshold:
        The TG picked by the entropy technique.
    neighbour_similarities:
        SG_i of Eq. (10), one per adjacent group pair.
    """

    scenes: list[Scene]
    eliminated: list[list[Group]]
    merge_threshold: float
    neighbour_similarities: np.ndarray = field(repr=False)

    @property
    def scene_count(self) -> int:
        """Number of kept scenes."""
        return len(self.scenes)


def select_representative_group(
    groups: list[Group], weights: SimilarityWeights = SimilarityWeights()
) -> Group:
    """Eq. (11) and its special cases.

    * 3+ groups: highest mean GpSim to the other groups;
    * 2 groups: more shots wins, then longer duration;
    * 1 group: itself.
    """
    if not groups:
        raise MiningError("cannot pick a representative from an empty scene")
    if len(groups) == 1:
        return groups[0]
    if len(groups) == 2:
        return max(groups, key=lambda g: (g.shot_count, g.duration))
    # One packed kernel call scores every ordered pair; row means (diag
    # excluded) are exactly the scalar election's per-group scores.
    matrix = group_similarity_matrix([group.shots for group in groups], weights)
    np.fill_diagonal(matrix, 0.0)
    scores = matrix.sum(axis=1) / (len(groups) - 1)
    return groups[int(np.argmax(scores))]


def detect_scenes(
    groups: list[Group],
    weights: SimilarityWeights = SimilarityWeights(),
    merge_threshold: float | None = None,
    min_scene_shots: int = MIN_SCENE_SHOTS,
) -> SceneDetectionResult:
    """Merge neighbouring groups into scenes (Sec. 3.4 steps 1-4).

    ``merge_threshold`` may be supplied for ablations; by default the
    fast entropy technique picks TG from the Eq. (10) pool.
    """
    if not groups:
        raise MiningError("no groups to merge")
    if len(groups) == 1:
        neighbour = np.zeros(0)
        tg = 0.0 if merge_threshold is None else merge_threshold
        merged = [[groups[0]]]
    else:
        matrices = [FeatureMatrix.from_shots(group.shots) for group in groups]
        neighbour = np.array(
            [
                group_stsim(matrices[i], matrices[i + 1], weights)
                for i in range(len(groups) - 1)
            ]
        )
        tg = entropy_threshold(neighbour) if merge_threshold is None else merge_threshold
        merged = [[groups[0]]]
        for i in range(1, len(groups)):
            if neighbour[i - 1] > tg:
                merged[-1].append(groups[i])
            else:
                merged.append([groups[i]])

    scenes: list[Scene] = []
    eliminated: list[list[Group]] = []
    for unit in merged:
        shot_count = sum(group.shot_count for group in unit)
        if shot_count < min_scene_shots:
            eliminated.append(unit)
            continue
        scenes.append(
            Scene(
                scene_id=len(scenes),
                groups=unit,
                representative_group=select_representative_group(unit, weights),
            )
        )
    return SceneDetectionResult(
        scenes=scenes,
        eliminated=eliminated,
        merge_threshold=float(tg),
        neighbour_similarities=neighbour,
    )
