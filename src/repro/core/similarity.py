"""Similarity measures between shots and groups (Eqs. 1, 8, 9).

Eq. (1) — shot/shot:

    StSim(Si, Sj) = W_C * sum_k min(H_i,k, H_j,k)
                  + W_T * (1 - sum_k (T_i,k - T_j,k)^2)

Eq. (8) — shot/group: the maximum StSim against any shot of the group.

Eq. (9) — group/group: take the group with fewer shots as the benchmark
and average each benchmark shot's best match in the other group.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.features import Shot
from repro.core.kernels import (
    DEFAULT_COLOR_WEIGHT,
    DEFAULT_TEXTURE_WEIGHT,
    FeatureMatrix,
    group_pairwise_matrix,
    group_stsim,
    group_stsim_row,
    pairwise_stsim,
)
from repro.errors import MiningError


@dataclass(frozen=True)
class SimilarityWeights:
    """Colour/texture mixing weights of Eq. (1)."""

    color: float = DEFAULT_COLOR_WEIGHT
    texture: float = DEFAULT_TEXTURE_WEIGHT

    def __post_init__(self) -> None:
        if self.color < 0 or self.texture < 0:
            raise MiningError("weights must be non-negative")
        if self.color + self.texture <= 0:
            raise MiningError("at least one weight must be positive")


def shot_similarity(
    a: Shot, b: Shot, weights: SimilarityWeights = SimilarityWeights()
) -> float:
    """StSim of Eq. (1); higher means more similar.

    The colour term is a histogram intersection in ``[0, 1]``; the
    texture term is ``1 - squared L2 distance`` of the coarseness
    vectors (clamped at 0 so pathological textures cannot push the
    total negative).
    """
    color_term = float(np.minimum(a.histogram, b.histogram).sum())
    texture_term = max(1.0 - float(((a.texture - b.texture) ** 2).sum()), 0.0)
    return weights.color * color_term + weights.texture * texture_term


def shot_group_similarity(
    shot: Shot,
    group_shots: Sequence[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
) -> float:
    """StGpSim of Eq. (8): the shot's best match inside the group."""
    if not group_shots:
        raise MiningError("cannot compare a shot against an empty group")
    return max(shot_similarity(shot, member, weights) for member in group_shots)


def group_similarity(
    group_a: Sequence[Shot],
    group_b: Sequence[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
) -> float:
    """GpSim of Eq. (9): benchmark-averaged best-match similarity.

    The smaller group is the benchmark; each of its shots contributes
    its best match in the other group, and the mean is returned.
    """
    if not group_a or not group_b:
        raise MiningError("cannot compare empty groups")
    if len(group_a) <= len(group_b):
        benchmark, other = group_a, group_b
    else:
        benchmark, other = group_b, group_a
    total = sum(shot_group_similarity(shot, other, weights) for shot in benchmark)
    return total / len(benchmark)


def similarity_matrix(
    shots: Sequence[Shot], weights: SimilarityWeights = SimilarityWeights()
) -> np.ndarray:
    """Symmetric StSim matrix over a shot sequence (diagonal = 1-ish).

    Used by group classification and by the baselines.  Computed by the
    vectorized kernel (:func:`repro.core.kernels.pairwise_stsim`); the
    diagonal is filled analytically — ``StSim(s, s)`` is exactly
    ``W_C * ΣH + W_T`` — instead of spending a full Eq. (1) evaluation
    per shot.
    """
    if not shots:
        return np.zeros((0, 0), dtype=np.float64)
    return pairwise_stsim(FeatureMatrix.from_shots(shots), weights)


def group_similarity_to_many(
    group: Sequence[Shot],
    others: Sequence[Sequence[Shot]],
    weights: SimilarityWeights = SimilarityWeights(),
    group_first: bool = True,
) -> np.ndarray:
    """Batch GpSim of one group against many (one packed kernel call).

    ``group_first`` keeps the scalar oracle's benchmark tie-break:
    ``True`` evaluates ``group_similarity(group, g)`` for every ``g``,
    ``False`` evaluates ``group_similarity(g, group)``.
    """
    if not group:
        raise MiningError("cannot compare empty groups")
    return group_stsim_row(
        FeatureMatrix.from_shots(group),
        [FeatureMatrix.from_shots(g) for g in others],
        weights=weights,
        target_first=group_first,
    )


def group_similarity_matrix(
    groups: Sequence[Sequence[Shot]],
    weights: SimilarityWeights = SimilarityWeights(),
) -> np.ndarray:
    """Batch GpSim over every ordered group pair.

    ``out[i, j]`` equals ``group_similarity(groups[i], groups[j])``
    exactly (the benchmark of equal-sized groups is the first
    argument), so clustering and validity read the upper triangle and
    mirror it, while representative-group election reads full rows.
    """
    return group_pairwise_matrix(
        [FeatureMatrix.from_shots(g) for g in groups], weights=weights
    )


def batched_group_similarity(
    group_a: Sequence[Shot],
    group_b: Sequence[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
) -> float:
    """Vectorized Eq. (9) for one pair (kernel-backed ``group_similarity``)."""
    if not group_a or not group_b:
        raise MiningError("cannot compare empty groups")
    return group_stsim(
        FeatureMatrix.from_shots(group_a),
        FeatureMatrix.from_shots(group_b),
        weights=weights,
    )
