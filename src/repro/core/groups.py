"""Video group detection, classification and representation (Sec. 3.2).

Group detection compares each shot with up to two shots on each side
(Fig. 6) through the similarity distances of Eqs. (2)-(5), the
separation factor R(i) of Eq. (6), and the two-step boundary procedure
with thresholds T1/T2 picked by the fast entropy technique.

Group classification (Sec. 3.2.1) greedily clusters a group's shots; a
group with more than one cluster is *temporally related* (similar shots
shown back and forth), otherwise *spatially related*.  Representative
shots come from Eq. (7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.core.features import Shot
from repro.core.kernels import FeatureMatrix, banded_stsim, pairwise_stsim
from repro.core.similarity import SimilarityWeights, shot_similarity
from repro.core.threshold import entropy_threshold
from repro.errors import MiningError


class GroupKind(str, Enum):
    """The paper's two group categories."""

    TEMPORAL = "temporal"  # similar shots shown back and forth
    SPATIAL = "spatial"  # all shots mutually similar


@dataclass
class Group:
    """A detected video group.

    Attributes
    ----------
    group_id:
        Zero-based index in detection order.
    shots:
        Member shots, in temporal order.
    kind:
        Temporal vs spatial classification.
    clusters:
        The shot clusters found during classification (lists of member
        shots); temporal groups have more than one.
    representative_shots:
        One representative per cluster (Eq. 7).
    """

    group_id: int
    shots: list[Shot]
    kind: GroupKind = GroupKind.SPATIAL
    clusters: list[list[Shot]] = field(default_factory=list)
    representative_shots: list[Shot] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.shots:
            raise MiningError(f"group {self.group_id} has no shots")

    @property
    def shot_count(self) -> int:
        """Number of member shots."""
        return len(self.shots)

    @property
    def shot_ids(self) -> list[int]:
        """Member shot ids, in order."""
        return [shot.shot_id for shot in self.shots]

    @property
    def duration(self) -> float:
        """Total duration in seconds."""
        return sum(shot.duration for shot in self.shots)

    @property
    def frame_span(self) -> tuple[int, int]:
        """``(first frame, last frame + 1)`` covered by the group."""
        return (self.shots[0].start, self.shots[-1].stop)

    @property
    def is_temporal(self) -> bool:
        """True for temporally related groups."""
        return self.kind is GroupKind.TEMPORAL


@dataclass(frozen=True)
class GroupThresholds:
    """The two automatic thresholds of the detection procedure."""

    t1: float
    t2: float


def _side_similarities(
    shots: list[Shot], weights: SimilarityWeights
) -> tuple[np.ndarray, np.ndarray]:
    """CL and CR (Eqs. 2-3) for every shot, using <= 2 shots per side.

    Each shot only looks two positions away, so two banded kernel
    passes (offsets 1 and 2) cover every comparison in ``O(N)`` pair
    evaluations instead of per-pair Python calls.
    """
    n = len(shots)
    cl = np.zeros(n)
    cr = np.zeros(n)
    fm = FeatureMatrix.from_shots(shots)
    if n >= 2:
        near = banded_stsim(fm, 1, weights)
        cl[1:] = near
        cr[:-1] = near
    if n >= 3:
        far = banded_stsim(fm, 2, weights)
        np.maximum(cl[2:], far, out=cl[2:])
        np.maximum(cr[:-2], far, out=cr[:-2])
    return cl, cr


def separation_factors(cl: np.ndarray, cr: np.ndarray) -> np.ndarray:
    """R(i) of Eq. (6): right-side vs left-side correlation ratio."""
    n = cl.size
    factors = np.ones(n)
    # Shot 0 always starts the first group and has no left context, so
    # its factor stays neutral rather than spiking on the empty side.
    for i in range(1, n):
        right = cr[i] + (cr[i + 1] if i + 1 < n else cr[i])
        left = cl[i] + (cl[i + 1] if i + 1 < n else cl[i])
        factors[i] = right / max(left, 1e-9)
    return factors


def compute_thresholds(
    cl: np.ndarray, cr: np.ndarray, factors: np.ndarray
) -> GroupThresholds:
    """T1/T2 via the fast entropy technique (Sec. 3.2, step 3).

    T2 separates "similar" from "dissimilar" adjacent-shot correlations
    (pooled CL/CR values); T1 separates ordinary separation factors from
    boundary-sized ones.
    """
    pooled = np.concatenate([cl[cl > 0], cr[cr > 0]])
    if pooled.size == 0:
        # Degenerate sequence (single shot, or mutually dissimilar
        # shots): nothing correlates, so any positive T2 separates.
        return GroupThresholds(t1=1.0 + 1e-6, t2=0.5)
    t2 = entropy_threshold(pooled)
    finite = factors[np.isfinite(factors)]
    t1 = max(entropy_threshold(finite), 1.0 + 1e-6) if finite.size else 1.0 + 1e-6
    return GroupThresholds(t1=float(t1), t2=float(t2))


def detect_group_boundaries(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    thresholds: GroupThresholds | None = None,
) -> tuple[list[int], GroupThresholds]:
    """Run the two-step boundary procedure; returns starts of new groups.

    The returned list contains shot indices (> 0) at which a new group
    begins.  ``thresholds`` may be supplied for ablation studies.
    """
    if not shots:
        raise MiningError("no shots to group")
    cl, cr = _side_similarities(shots, weights)
    factors = separation_factors(cl, cr)
    if thresholds is None:
        thresholds = compute_thresholds(cl, cr, factors)

    boundaries: list[int] = []
    for i in range(1, len(shots)):
        if cr[i] > thresholds.t2 - 0.1:
            # Step 1: first shot of a group correlates ahead, not behind.
            if factors[i] > thresholds.t1 and cl[i] < thresholds.t2:
                boundaries.append(i)
        else:
            # Step 2: the shot is dissimilar to both sides (separator).
            if cr[i] < thresholds.t2 and cl[i] < thresholds.t2:
                boundaries.append(i)
    return boundaries, thresholds


def classify_group(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    cluster_threshold: float | None = None,
) -> tuple[GroupKind, list[list[Shot]]]:
    """Greedy seed clustering (Sec. 3.2.1); > 1 cluster means temporal.

    ``cluster_threshold`` (Th) defaults to the entropy pick over the
    group's pairwise similarities, falling back to 0.8 for tiny groups.

    The full pairwise StSim matrix is computed once by the vectorized
    kernel; both the threshold pool and every seed/candidate test read
    from it.
    """
    n = len(shots)
    matrix = pairwise_stsim(FeatureMatrix.from_shots(shots), weights)
    if cluster_threshold is None:
        if n >= 3:
            pool = matrix[np.triu_indices(n, 1)]
            cluster_threshold = entropy_threshold(pool)
        else:
            cluster_threshold = 0.8

    clusters: list[list[Shot]] = []
    remaining = list(range(n))
    while remaining:
        seed, rest = remaining[0], remaining[1:]
        # ">=" so a degenerate pool (all shots identical, threshold
        # equal to that similarity) still forms one cluster.  Membership
        # only depends on the seed, so one vectorized pass absorbs
        # everything the scalar absorb loop would.
        absorbed = matrix[seed, rest] >= cluster_threshold
        clusters.append(
            [shots[seed]] + [shots[i] for i, take in zip(rest, absorbed) if take]
        )
        remaining = [i for i, take in zip(rest, absorbed) if not take]
    kind = GroupKind.TEMPORAL if len(clusters) > 1 else GroupKind.SPATIAL
    return kind, clusters


def select_representative_shot(
    cluster: list[Shot], weights: SimilarityWeights = SimilarityWeights()
) -> Shot:
    """Eq. (7) and its small-cluster special cases.

    * 3+ shots: the shot with the highest mean similarity to the rest;
    * 2 shots: the longer one (more content);
    * 1 shot: itself.
    """
    if not cluster:
        raise MiningError("cannot pick a representative from an empty cluster")
    if len(cluster) == 1:
        return cluster[0]
    if len(cluster) == 2:
        return max(cluster, key=lambda shot: (shot.length, -shot.shot_id))
    matrix = pairwise_stsim(FeatureMatrix.from_shots(cluster), weights)
    np.fill_diagonal(matrix, 0.0)
    scores = matrix.sum(axis=1) / (len(cluster) - 1)
    return cluster[int(np.argmax(scores))]


def detect_groups(
    shots: list[Shot],
    weights: SimilarityWeights = SimilarityWeights(),
    thresholds: GroupThresholds | None = None,
) -> tuple[list[Group], GroupThresholds]:
    """Full Sec. 3.2 pipeline: boundaries, classification, representatives."""
    boundaries, used = detect_group_boundaries(shots, weights, thresholds)
    starts = [0] + boundaries
    stops = boundaries + [len(shots)]
    groups: list[Group] = []
    for group_id, (start, stop) in enumerate(zip(starts, stops)):
        members = shots[start:stop]
        kind, clusters = classify_group(members, weights)
        representatives = [
            select_representative_shot(cluster, weights) for cluster in clusters
        ]
        groups.append(
            Group(
                group_id=group_id,
                shots=members,
                kind=kind,
                clusters=clusters,
                representative_shots=representatives,
            )
        )
    return groups, used
