"""Cluster validity analysis (Eqs. 14-16).

The optimal number of scene clusters minimises the ratio of
intra-cluster to inter-cluster distance:

    rho(N) = (1/N) * sum_i  max_{j != i}  (sigma_i + sigma_j) / xi_ij

with sigma_i the mean distance of cluster members to their centroid
(Eq. 15, distances are ``1 - GpSim``) and xi_ij the distance between
centroids.  The search range is C_min = [0.5 M] to C_max = [0.7 M] —
the paper eliminates 30-50 % of the original scenes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.groups import Group
from repro.core.similarity import (
    SimilarityWeights,
    group_similarity,
    group_similarity_matrix,
    group_similarity_to_many,
)
from repro.errors import MiningError

#: Paper search range fractions.
CLUSTER_FRACTION_LOW = 0.5
CLUSTER_FRACTION_HIGH = 0.7


def search_range(scene_count: int) -> tuple[int, int]:
    """``(C_min, C_max)`` for a given number of scenes.

    Degenerate inputs (fewer than 4 scenes) return ``(M, M)`` — too few
    scenes to justify clustering.
    """
    if scene_count < 1:
        raise MiningError("need at least one scene")
    if scene_count < 4:
        return scene_count, scene_count
    c_min = max(1, int(CLUSTER_FRACTION_LOW * scene_count))
    c_max = max(c_min, int(CLUSTER_FRACTION_HIGH * scene_count))
    return c_min, c_max


def intra_cluster_distance(
    member_centroids: Sequence[Group],
    centroid: Group,
    weights: SimilarityWeights = SimilarityWeights(),
) -> float:
    """sigma_i of Eq. (15): mean ``1 - GpSim(member, centroid)``.

    All members are scored against the centroid in one batched kernel
    call (``group_first=False`` keeps the scalar argument order:
    member first, centroid second).
    """
    if not member_centroids:
        raise MiningError("cluster has no members")
    similarities = group_similarity_to_many(
        centroid.shots,
        [member.shots for member in member_centroids],
        weights,
        group_first=False,
    )
    return float((1.0 - similarities).mean())


def inter_cluster_distance(
    centroid_a: Group,
    centroid_b: Group,
    weights: SimilarityWeights = SimilarityWeights(),
) -> float:
    """xi_ij of Eq. (15): ``1 - GpSim`` between two centroids."""
    return 1.0 - group_similarity(centroid_a.shots, centroid_b.shots, weights)


def validity_index(
    clusters: Sequence[Sequence[Group]],
    centroids: Sequence[Group],
    weights: SimilarityWeights = SimilarityWeights(),
) -> float:
    """rho(N) of Eq. (14) for one clustering.

    ``clusters[i]`` holds the member-scene centroids of cluster ``i``
    and ``centroids[i]`` its own centroid.  Lower is better.  A single
    cluster has no inter-cluster term and scores ``inf``.
    """
    n = len(clusters)
    if n != len(centroids):
        raise MiningError("clusters and centroids disagree in length")
    if n < 2:
        return float("inf")
    sigmas = [
        intra_cluster_distance(members, centroid, weights)
        for members, centroid in zip(clusters, centroids)
    ]
    # All centroid/centroid distances from one packed kernel call; the
    # upper triangle carries the scalar loop's argument order.
    similarity = group_similarity_matrix([c.shots for c in centroids], weights)
    distances = np.zeros((n, n))
    upper = np.triu_indices(n, 1)
    d = np.maximum(1.0 - similarity[upper], 1e-9)
    distances[upper] = d
    distances[(upper[1], upper[0])] = d
    total = 0.0
    for i in range(n):
        ratios = [
            (sigmas[i] + sigmas[j]) / distances[i, j] for j in range(n) if j != i
        ]
        total += max(ratios)
    return total / n
