"""Content-structure mining: the full Sec. 3 pipeline in one call.

``mine_content_structure`` runs shot detection, group detection, scene
detection and scene clustering and returns a :class:`ContentStructure` —
the four-level hierarchy (clustered scenes > scenes > groups > shots)
of Definition 1.
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass, field

import numpy as np

logger = logging.getLogger(__name__)

from repro.core.clustering import (
    ClusteredScene,
    SceneClusteringResult,
    cluster_scenes,
)
from repro.core.features import Shot
from repro.core.groups import Group, GroupKind, GroupThresholds, detect_groups
from repro.core.scenes import Scene, SceneDetectionResult, detect_scenes
from repro.core.shots import (
    DEFAULT_WINDOW,
    ShotDetectionResult,
    detect_shots,
    shots_from_ground_truth,
)
from repro.core.similarity import SimilarityWeights
from repro.errors import DegradedResultWarning, MiningError
from repro.obs.trace import span as obs_span
from repro.resilience.faults import fault_point
from repro.video.stream import VideoStream


@dataclass(frozen=True)
class MiningConfig:
    """Tunable parameters of the content-structure miner.

    Defaults are the paper's choices; benches vary them for ablations.
    """

    weights: SimilarityWeights = field(default_factory=SimilarityWeights)
    shot_window: int = DEFAULT_WINDOW
    min_scene_shots: int = 3
    merge_threshold: float | None = None
    group_thresholds: GroupThresholds | None = None
    cluster_target: int | None = None

    def to_dict(self) -> dict:
        """Serialise to plain data (for experiment manifests)."""
        return {
            "weights": {"color": self.weights.color, "texture": self.weights.texture},
            "shot_window": self.shot_window,
            "min_scene_shots": self.min_scene_shots,
            "merge_threshold": self.merge_threshold,
            "group_thresholds": (
                None
                if self.group_thresholds is None
                else {"t1": self.group_thresholds.t1, "t2": self.group_thresholds.t2}
            ),
            "cluster_target": self.cluster_target,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MiningConfig":
        """Rebuild a config serialised by :meth:`to_dict`.

        Unknown keys raise :class:`MiningError` so typos in experiment
        manifests fail loudly rather than silently using defaults.
        """
        known = {
            "weights",
            "shot_window",
            "min_scene_shots",
            "merge_threshold",
            "group_thresholds",
            "cluster_target",
        }
        unknown = set(data) - known
        if unknown:
            raise MiningError(f"unknown MiningConfig keys: {sorted(unknown)}")
        weights_data = data.get("weights")
        weights = (
            SimilarityWeights(**weights_data)
            if weights_data is not None
            else SimilarityWeights()
        )
        thresholds_data = data.get("group_thresholds")
        thresholds = (
            GroupThresholds(**thresholds_data)
            if thresholds_data is not None
            else None
        )
        return cls(
            weights=weights,
            shot_window=data.get("shot_window", DEFAULT_WINDOW),
            min_scene_shots=data.get("min_scene_shots", 3),
            merge_threshold=data.get("merge_threshold"),
            group_thresholds=thresholds,
            cluster_target=data.get("cluster_target"),
        )


@dataclass
class ContentStructure:
    """The mined four-level hierarchy of one video."""

    title: str
    shots: list[Shot]
    groups: list[Group]
    scenes: list[Scene]
    clustered_scenes: list[ClusteredScene]
    shot_detection: ShotDetectionResult | None = field(default=None, repr=False)
    scene_detection: SceneDetectionResult | None = field(default=None, repr=False)
    clustering: SceneClusteringResult | None = field(default=None, repr=False)
    degraded_stages: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when any mining stage fell back instead of completing."""
        return bool(self.degraded_stages)

    @property
    def shot_count(self) -> int:
        """Number of detected shots."""
        return len(self.shots)

    @property
    def scene_count(self) -> int:
        """Number of kept scenes."""
        return len(self.scenes)

    @property
    def compression_rate_factor(self) -> float:
        """CRF of Eq. (21): detected scenes / total shots."""
        if not self.shots:
            raise MiningError("structure has no shots")
        return len(self.scenes) / len(self.shots)

    def scene_of_shot(self, shot_id: int) -> Scene | None:
        """The kept scene containing ``shot_id`` (None if eliminated)."""
        for scene in self.scenes:
            if shot_id in scene.shot_ids:
                return scene
        return None

    def cluster_of_scene(self, scene_id: int) -> ClusteredScene | None:
        """The cluster containing scene ``scene_id``."""
        for cluster in self.clustered_scenes:
            if scene_id in cluster.scene_ids:
                return cluster
        return None

    def level_sizes(self) -> dict[str, int]:
        """Node counts per hierarchy level (used by docs and benches)."""
        return {
            "clustered_scenes": len(self.clustered_scenes),
            "scenes": len(self.scenes),
            "groups": len(self.groups),
            "shots": len(self.shots),
        }


def degrade_stage(title: str, stage: str, exc: Exception) -> None:
    """Record one stage falling back: warn, log, count.

    Emits a :class:`DegradedResultWarning` (so callers can assert or
    escalate), logs the underlying failure, and bumps the process-wide
    ``mining_degraded_stages_total{stage=...}`` counter.
    """
    warnings.warn(
        DegradedResultWarning(
            f"{title}: stage {stage!r} failed ({exc}); continuing degraded"
        ),
        stacklevel=3,
    )
    logger.warning("%s: stage %s degraded: %s", title, stage, exc)
    # Imported lazily: the registry module pulls in exporter plumbing
    # that the core layer must not depend on at import time.
    from repro.obs.registry import get_registry

    get_registry().counter(
        "mining_degraded_stages_total",
        "Mining stages that fell back to a degraded result.",
        labelnames=("stage",),
    ).labels(stage=stage).inc()


def _fallback_groups(shots: list[Shot]) -> list[Group]:
    """One temporal group per shot: the no-similarity-information case."""
    return [
        Group(
            group_id=i,
            shots=[shot],
            kind=GroupKind.TEMPORAL,
            clusters=[[shot]],
            representative_shots=[shot],
        )
        for i, shot in enumerate(shots)
    ]


def mine_content_structure(
    stream: VideoStream,
    config: MiningConfig | None = None,
    oracle_shot_spans: list[tuple[int, int]] | None = None,
) -> ContentStructure:
    """Run the Sec. 3 pipeline on a video stream.

    ``oracle_shot_spans`` bypasses shot detection with known spans so
    downstream stages can be evaluated in isolation.

    Failure containment: shot detection is load-bearing (no shots means
    nothing downstream can exist) and stays fatal, but a failure in
    group detection, scene detection or clustering *degrades* the
    result instead of raising — the failed stage's output is replaced
    by its safest fallback (one group per shot / no scenes / no
    clusters), the stage name lands in
    :attr:`ContentStructure.degraded_stages`, and a
    :class:`DegradedResultWarning` is emitted.
    """
    if config is None:
        config = MiningConfig()
    degraded: list[str] = []

    shot_detection: ShotDetectionResult | None = None
    with obs_span("mine.shots", window=config.shot_window) as sp:
        fault_point("mine.shots")
        if oracle_shot_spans is not None:
            shots = shots_from_ground_truth(stream, oracle_shot_spans)
            sp.set(oracle=True)
        else:
            shot_detection = detect_shots(stream, window=config.shot_window)
            shots = shot_detection.shots
        if not shots:
            raise MiningError("no shots detected")
        sp.set(frames=len(stream), shots=len(shots))
    logger.info("%s: %d shots detected", stream.title, len(shots))

    with obs_span("mine.groups") as sp:
        try:
            fault_point("mine.groups")
            groups, thresholds = detect_groups(
                shots, config.weights, thresholds=config.group_thresholds
            )
            logger.debug(
                "%s: %d groups (T1=%.3f, T2=%.3f)",
                stream.title, len(groups), thresholds.t1, thresholds.t2,
            )
        except Exception as exc:
            degrade_stage(stream.title, "groups", exc)
            degraded.append("groups")
            groups = _fallback_groups(shots)
            sp.set(degraded=True)
        sp.set(groups=len(groups))

    with obs_span("mine.scenes") as sp:
        try:
            fault_point("mine.scenes")
            scene_detection = detect_scenes(
                groups,
                config.weights,
                merge_threshold=config.merge_threshold,
                min_scene_shots=config.min_scene_shots,
            )
            scenes = scene_detection.scenes
            sp.set(eliminated=len(scene_detection.eliminated))
            logger.info(
                "%s: %d scenes kept, %d units eliminated (TG=%.3f)",
                stream.title,
                len(scenes),
                len(scene_detection.eliminated),
                scene_detection.merge_threshold,
            )
        except Exception as exc:
            degrade_stage(stream.title, "scenes", exc)
            degraded.append("scenes")
            scene_detection = None
            scenes = []
            sp.set(degraded=True)
        sp.set(scenes=len(scenes))

    with obs_span("mine.clustering") as sp:
        clustering = None
        clustered: list[ClusteredScene] = []
        if scenes:
            try:
                fault_point("mine.clustering")
                clustering = cluster_scenes(
                    scenes, config.weights, target_count=config.cluster_target
                )
                clustered = clustering.clusters
                sp.set(clusters=len(clustered))
                logger.debug(
                    "%s: %d scene clusters (validity-selected N=%d)",
                    stream.title, len(clustered), clustering.chosen_count,
                )
            except Exception as exc:
                degrade_stage(stream.title, "clustering", exc)
                degraded.append("clustering")
                clustering = None
                clustered = []
                sp.set(degraded=True)

    return ContentStructure(
        title=stream.title,
        shots=shots,
        groups=groups,
        scenes=scenes,
        clustered_scenes=clustered,
        shot_detection=shot_detection,
        scene_detection=scene_detection,
        clustering=clustering,
        degraded_stages=tuple(degraded),
    )
