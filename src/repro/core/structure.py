"""Content-structure mining: the full Sec. 3 pipeline in one call.

``mine_content_structure`` runs shot detection, group detection, scene
detection and scene clustering and returns a :class:`ContentStructure` —
the four-level hierarchy (clustered scenes > scenes > groups > shots)
of Definition 1.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

logger = logging.getLogger(__name__)

from repro.core.clustering import (
    ClusteredScene,
    SceneClusteringResult,
    cluster_scenes,
)
from repro.core.features import Shot
from repro.core.groups import Group, GroupThresholds, detect_groups
from repro.core.scenes import Scene, SceneDetectionResult, detect_scenes
from repro.core.shots import (
    DEFAULT_WINDOW,
    ShotDetectionResult,
    detect_shots,
    shots_from_ground_truth,
)
from repro.core.similarity import SimilarityWeights
from repro.errors import MiningError
from repro.obs.trace import span as obs_span
from repro.video.stream import VideoStream


@dataclass(frozen=True)
class MiningConfig:
    """Tunable parameters of the content-structure miner.

    Defaults are the paper's choices; benches vary them for ablations.
    """

    weights: SimilarityWeights = field(default_factory=SimilarityWeights)
    shot_window: int = DEFAULT_WINDOW
    min_scene_shots: int = 3
    merge_threshold: float | None = None
    group_thresholds: GroupThresholds | None = None
    cluster_target: int | None = None

    def to_dict(self) -> dict:
        """Serialise to plain data (for experiment manifests)."""
        return {
            "weights": {"color": self.weights.color, "texture": self.weights.texture},
            "shot_window": self.shot_window,
            "min_scene_shots": self.min_scene_shots,
            "merge_threshold": self.merge_threshold,
            "group_thresholds": (
                None
                if self.group_thresholds is None
                else {"t1": self.group_thresholds.t1, "t2": self.group_thresholds.t2}
            ),
            "cluster_target": self.cluster_target,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MiningConfig":
        """Rebuild a config serialised by :meth:`to_dict`.

        Unknown keys raise :class:`MiningError` so typos in experiment
        manifests fail loudly rather than silently using defaults.
        """
        known = {
            "weights",
            "shot_window",
            "min_scene_shots",
            "merge_threshold",
            "group_thresholds",
            "cluster_target",
        }
        unknown = set(data) - known
        if unknown:
            raise MiningError(f"unknown MiningConfig keys: {sorted(unknown)}")
        weights_data = data.get("weights")
        weights = (
            SimilarityWeights(**weights_data)
            if weights_data is not None
            else SimilarityWeights()
        )
        thresholds_data = data.get("group_thresholds")
        thresholds = (
            GroupThresholds(**thresholds_data)
            if thresholds_data is not None
            else None
        )
        return cls(
            weights=weights,
            shot_window=data.get("shot_window", DEFAULT_WINDOW),
            min_scene_shots=data.get("min_scene_shots", 3),
            merge_threshold=data.get("merge_threshold"),
            group_thresholds=thresholds,
            cluster_target=data.get("cluster_target"),
        )


@dataclass
class ContentStructure:
    """The mined four-level hierarchy of one video."""

    title: str
    shots: list[Shot]
    groups: list[Group]
    scenes: list[Scene]
    clustered_scenes: list[ClusteredScene]
    shot_detection: ShotDetectionResult | None = field(default=None, repr=False)
    scene_detection: SceneDetectionResult | None = field(default=None, repr=False)
    clustering: SceneClusteringResult | None = field(default=None, repr=False)

    @property
    def shot_count(self) -> int:
        """Number of detected shots."""
        return len(self.shots)

    @property
    def scene_count(self) -> int:
        """Number of kept scenes."""
        return len(self.scenes)

    @property
    def compression_rate_factor(self) -> float:
        """CRF of Eq. (21): detected scenes / total shots."""
        if not self.shots:
            raise MiningError("structure has no shots")
        return len(self.scenes) / len(self.shots)

    def scene_of_shot(self, shot_id: int) -> Scene | None:
        """The kept scene containing ``shot_id`` (None if eliminated)."""
        for scene in self.scenes:
            if shot_id in scene.shot_ids:
                return scene
        return None

    def cluster_of_scene(self, scene_id: int) -> ClusteredScene | None:
        """The cluster containing scene ``scene_id``."""
        for cluster in self.clustered_scenes:
            if scene_id in cluster.scene_ids:
                return cluster
        return None

    def level_sizes(self) -> dict[str, int]:
        """Node counts per hierarchy level (used by docs and benches)."""
        return {
            "clustered_scenes": len(self.clustered_scenes),
            "scenes": len(self.scenes),
            "groups": len(self.groups),
            "shots": len(self.shots),
        }


def mine_content_structure(
    stream: VideoStream,
    config: MiningConfig | None = None,
    oracle_shot_spans: list[tuple[int, int]] | None = None,
) -> ContentStructure:
    """Run the Sec. 3 pipeline on a video stream.

    ``oracle_shot_spans`` bypasses shot detection with known spans so
    downstream stages can be evaluated in isolation.
    """
    if config is None:
        config = MiningConfig()

    shot_detection: ShotDetectionResult | None = None
    with obs_span("mine.shots", window=config.shot_window) as sp:
        if oracle_shot_spans is not None:
            shots = shots_from_ground_truth(stream, oracle_shot_spans)
            sp.set(oracle=True)
        else:
            shot_detection = detect_shots(stream, window=config.shot_window)
            shots = shot_detection.shots
        if not shots:
            raise MiningError("no shots detected")
        sp.set(frames=len(stream), shots=len(shots))
    logger.info("%s: %d shots detected", stream.title, len(shots))

    with obs_span("mine.groups") as sp:
        groups, thresholds = detect_groups(
            shots, config.weights, thresholds=config.group_thresholds
        )
        sp.set(groups=len(groups))
    logger.debug(
        "%s: %d groups (T1=%.3f, T2=%.3f)",
        stream.title, len(groups), thresholds.t1, thresholds.t2,
    )
    with obs_span("mine.scenes") as sp:
        scene_detection = detect_scenes(
            groups,
            config.weights,
            merge_threshold=config.merge_threshold,
            min_scene_shots=config.min_scene_shots,
        )
        scenes = scene_detection.scenes
        sp.set(scenes=len(scenes), eliminated=len(scene_detection.eliminated))
    logger.info(
        "%s: %d scenes kept, %d units eliminated (TG=%.3f)",
        stream.title,
        len(scenes),
        len(scene_detection.eliminated),
        scene_detection.merge_threshold,
    )

    with obs_span("mine.clustering") as sp:
        if scenes:
            clustering = cluster_scenes(
                scenes, config.weights, target_count=config.cluster_target
            )
            clustered = clustering.clusters
            sp.set(clusters=len(clustered))
            logger.debug(
                "%s: %d scene clusters (validity-selected N=%d)",
                stream.title, len(clustered), clustering.chosen_count,
            )
        else:
            clustering = None
            clustered = []

    return ContentStructure(
        title=stream.title,
        shots=shots,
        groups=groups,
        scenes=scenes,
        clustered_scenes=clustered,
        shot_detection=shot_detection,
        scene_detection=scene_detection,
        clustering=clustering,
    )
