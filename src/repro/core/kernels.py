"""Vectorized StSim/GpSim kernels: one engine for every hot path.

Every similarity in the pipeline reduces to Eq. (1):

    StSim(Si, Sj) = W_C * sum_k min(H_i,k, H_j,k)
                  + W_T * max(1 - sum_k (T_i,k - T_j,k)^2, 0)

Computed shot-by-shot this is dominated by Python dispatch, not
arithmetic.  This module packs shots into contiguous arrays
(:class:`FeatureMatrix`) and evaluates Eq. (1) over whole blocks:

* the colour term is a broadcast ``min``-sum (histogram intersection);
* the texture term uses the ``‖a‖² + ‖b‖² − 2·a·b`` expansion so a
  block of squared distances is one BLAS matmul plus two rank-1 adds,
  clamped at 0 exactly as the scalar oracle clamps;
* blocks are chunked (:data:`DEFAULT_BLOCK_PAIRS` pair evaluations per
  broadcast) so temporary memory stays bounded no matter how many
  shots are packed.

The scalar implementations in :mod:`repro.core.similarity` remain the
reference oracle; every kernel here matches them to ``<= 1e-9``
(enforced by ``tests/core/test_kernels.py``), so the paper-fidelity
tests keep their meaning while the hot paths run at NumPy speed.

Group-level reductions implement Eq. (8)/(9) exactly: the *benchmark*
group is the smaller one (ties go to the first argument), each
benchmark shot contributes its best match in the other group, and the
mean is returned.

The module is deliberately dependency-light (NumPy + the error type):
both the mining core and the database layer import it without pulling
in each other.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import MiningError

#: Paper weights of Eq. (1): W_C = 0.7, W_T = 0.3.  Single source of
#: truth — :mod:`repro.core.similarity` and the database index both
#: resolve their defaults here so the weights cannot drift apart.
DEFAULT_COLOR_WEIGHT = 0.7
DEFAULT_TEXTURE_WEIGHT = 0.3

#: Descriptor dimensions (Sec. 3.1): 256-bin HSV histogram, 10-dim
#: Tamura coarseness vector.
HISTOGRAM_DIM = 256
TEXTURE_DIM = 10

#: Pair evaluations per broadcast block.  The colour term materialises
#: a ``(rows, cols, 256)`` float64 temporary, so 4096 pairs cap the
#: scratch at ~8 MB — small enough to stay cache-resident, which is
#: what the memory-bound ``min``-sum wants (measured ~4x faster than
#: 64 MB blocks on a 200-shot matrix).
DEFAULT_BLOCK_PAIRS = 4096


class KernelStats:
    """Lock-free hot-path counters for the batch engine.

    Plain attribute increments: the chunk loop must not pay a lock per
    block, so these are CPython-GIL-approximate (an increment can in
    principle be lost under heavy thread contention, never negative or
    wildly off).  The process-global :data:`KERNEL_STATS` instance is
    published as read-time gauges through
    :func:`repro.obs.bridge.kernel_stats_collector`.
    """

    __slots__ = ("packs", "packed_rows", "chunks", "pair_evals")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.packs = 0
        self.packed_rows = 0
        self.chunks = 0
        self.pair_evals = 0

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the counters."""
        return {
            "packs": self.packs,
            "packed_rows": self.packed_rows,
            "chunks": self.chunks,
            "pair_evals": self.pair_evals,
        }


#: Process-wide kernel counters (exported via the obs registry).
KERNEL_STATS = KernelStats()


def _resolve_weights(weights) -> tuple[float, float]:
    """``(W_C, W_T)`` from a weights object (duck-typed) or the defaults."""
    if weights is None:
        return DEFAULT_COLOR_WEIGHT, DEFAULT_TEXTURE_WEIGHT
    return float(weights.color), float(weights.texture)


class FeatureMatrix:
    """Shots packed as contiguous ``(N, 256)`` + ``(N, 10)`` arrays.

    The packing is done once; every kernel then works on array blocks.
    Squared texture norms are cached lazily — they are reused by every
    cross-similarity the matrix participates in.
    """

    __slots__ = ("histograms", "textures", "_texture_sq")

    def __init__(self, histograms: np.ndarray, textures: np.ndarray) -> None:
        histograms = np.ascontiguousarray(histograms, dtype=np.float64)
        textures = np.ascontiguousarray(textures, dtype=np.float64)
        if histograms.ndim != 2 or textures.ndim != 2:
            raise MiningError("feature matrices must be 2-D")
        if histograms.shape[0] != textures.shape[0]:
            raise MiningError(
                "histogram and texture row counts disagree: "
                f"{histograms.shape[0]} vs {textures.shape[0]}"
            )
        self.histograms = histograms
        self.textures = textures
        self._texture_sq: np.ndarray | None = None
        KERNEL_STATS.packs += 1
        KERNEL_STATS.packed_rows += histograms.shape[0]

    @classmethod
    def from_shots(cls, shots: Sequence) -> "FeatureMatrix":
        """Pack objects exposing ``histogram``/``texture`` (e.g. Shots)."""
        if not shots:
            return cls(
                np.empty((0, HISTOGRAM_DIM)), np.empty((0, TEXTURE_DIM))
            )
        return cls(
            np.stack([np.asarray(shot.histogram, dtype=np.float64) for shot in shots]),
            np.stack([np.asarray(shot.texture, dtype=np.float64) for shot in shots]),
        )

    @classmethod
    def from_combined(
        cls, features: np.ndarray, histogram_dim: int = HISTOGRAM_DIM
    ) -> "FeatureMatrix":
        """Split stacked ``(N, 266)`` combined vectors back into views."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[1] <= histogram_dim:
            raise MiningError(
                f"combined features need > {histogram_dim} dimensions, "
                f"got {features.shape[1]}"
            )
        return cls(features[:, :histogram_dim], features[:, histogram_dim:])

    @classmethod
    def concatenate(cls, matrices: Sequence["FeatureMatrix"]) -> "FeatureMatrix":
        """Stack several matrices into one (used to pack group sets)."""
        if not matrices:
            return cls(np.empty((0, HISTOGRAM_DIM)), np.empty((0, TEXTURE_DIM)))
        return cls(
            np.concatenate([m.histograms for m in matrices]),
            np.concatenate([m.textures for m in matrices]),
        )

    @property
    def texture_sq(self) -> np.ndarray:
        """Cached per-row squared texture norms ``‖T_i‖²``."""
        if self._texture_sq is None:
            self._texture_sq = (self.textures * self.textures).sum(axis=1)
        return self._texture_sq

    def take(self, indices) -> "FeatureMatrix":
        """Row subset as a new matrix."""
        return FeatureMatrix(self.histograms[indices], self.textures[indices])

    def __len__(self) -> int:
        return self.histograms.shape[0]


def cross_stsim(
    a: FeatureMatrix,
    b: FeatureMatrix,
    weights=None,
    block_pairs: int = DEFAULT_BLOCK_PAIRS,
) -> np.ndarray:
    """Eq. (1) over every pair: ``out[i, j] = StSim(a_i, b_j)``.

    Rows of ``a`` are processed in chunks sized so each broadcast block
    evaluates at most ``block_pairs`` pairs.
    """
    na, nb = len(a), len(b)
    out = np.empty((na, nb), dtype=np.float64)
    if na == 0 or nb == 0:
        return out
    wc, wt = _resolve_weights(weights)
    rows = max(1, block_pairs // nb)
    KERNEL_STATS.chunks += -(-na // rows)
    KERNEL_STATS.pair_evals += na * nb
    b_hist = b.histograms
    b_tex_t = b.textures.T
    b_sq = b.texture_sq
    for start in range(0, na, rows):
        stop = min(start + rows, na)
        color = np.minimum(
            a.histograms[start:stop, None, :], b_hist[None, :, :]
        ).sum(axis=2)
        sq = (
            a.texture_sq[start:stop, None]
            + b_sq[None, :]
            - 2.0 * (a.textures[start:stop] @ b_tex_t)
        )
        out[start:stop] = wc * color + wt * np.maximum(1.0 - sq, 0.0)
    return out


def pairwise_stsim(
    fm: FeatureMatrix,
    weights=None,
    block_pairs: int = DEFAULT_BLOCK_PAIRS,
) -> np.ndarray:
    """Symmetric ``(N, N)`` StSim matrix with an analytic diagonal.

    ``StSim(s, s)`` needs no arithmetic: the intersection of a
    histogram with itself is its own mass and the texture distance is
    exactly zero, so the diagonal is ``W_C * ΣH_i + W_T``.

    Eq. (1) is symmetric, so only the upper-triangle blocks are
    evaluated; each is mirrored into the lower triangle, halving the
    work relative to :func:`cross_stsim` on the same matrix.
    """
    n = len(fm)
    out = np.empty((n, n), dtype=np.float64)
    if n == 0:
        return out
    wc, wt = _resolve_weights(weights)
    rows = max(1, block_pairs // n)
    KERNEL_STATS.chunks += -(-n // rows)
    KERNEL_STATS.pair_evals += n * (n + 1) // 2
    hist = fm.histograms
    tex = fm.textures
    sq = fm.texture_sq
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        color = np.minimum(
            hist[start:stop, None, :], hist[None, start:, :]
        ).sum(axis=2)
        dist = (
            sq[start:stop, None]
            + sq[None, start:]
            - 2.0 * (tex[start:stop] @ tex[start:].T)
        )
        block = wc * color + wt * np.maximum(1.0 - dist, 0.0)
        out[start:stop, start:] = block
        out[start:, start:stop] = block.T
    np.fill_diagonal(out, wc * hist.sum(axis=1) + wt)
    return out


def stsim_to_many(
    histogram: np.ndarray, texture: np.ndarray, fm: FeatureMatrix, weights=None
) -> np.ndarray:
    """Eq. (1) of one shot against every row of ``fm`` (shape ``(N,)``).

    The texture term uses direct squared differences — for a single
    query row that is as fast as the norm expansion and matches the
    scalar oracle bit-for-bit.
    """
    wc, wt = _resolve_weights(weights)
    KERNEL_STATS.chunks += 1
    KERNEL_STATS.pair_evals += len(fm)
    histogram = np.asarray(histogram, dtype=np.float64)
    texture = np.asarray(texture, dtype=np.float64)
    color = np.minimum(histogram[None, :], fm.histograms).sum(axis=1)
    diff = fm.textures - texture[None, :]
    texture_term = np.maximum(1.0 - (diff * diff).sum(axis=1), 0.0)
    return wc * color + wt * texture_term


def banded_stsim(fm: FeatureMatrix, offset: int, weights=None) -> np.ndarray:
    """``StSim(s_i, s_{i+offset})`` for every valid ``i``.

    Group detection (Eqs. 2-5) and the baselines only compare shots a
    few positions apart; a band needs ``N`` pair evaluations, not
    ``N²``.
    """
    if offset < 1:
        raise MiningError("band offset must be >= 1")
    n = len(fm)
    if n <= offset:
        return np.zeros(0, dtype=np.float64)
    wc, wt = _resolve_weights(weights)
    KERNEL_STATS.chunks += 1
    KERNEL_STATS.pair_evals += n - offset
    color = np.minimum(fm.histograms[:-offset], fm.histograms[offset:]).sum(axis=1)
    diff = fm.textures[:-offset] - fm.textures[offset:]
    texture_term = np.maximum(1.0 - (diff * diff).sum(axis=1), 0.0)
    return wc * color + wt * texture_term


def shot_group_stsim(
    histogram: np.ndarray, texture: np.ndarray, group: FeatureMatrix, weights=None
) -> float:
    """StGpSim of Eq. (8): the shot's best match inside the group."""
    if len(group) == 0:
        raise MiningError("cannot compare a shot against an empty group")
    return float(stsim_to_many(histogram, texture, group, weights).max())


def group_stsim(a: FeatureMatrix, b: FeatureMatrix, weights=None) -> float:
    """GpSim of Eq. (9): benchmark-averaged best-match similarity.

    The smaller group is the benchmark (ties go to ``a``, matching the
    scalar oracle's argument order); each benchmark shot contributes
    its best match in the other group.
    """
    if len(a) == 0 or len(b) == 0:
        raise MiningError("cannot compare empty groups")
    cross = cross_stsim(a, b, weights=weights)
    if len(a) <= len(b):
        return float(cross.max(axis=1).mean())
    return float(cross.max(axis=0).mean())


def _group_offsets(groups: Sequence[FeatureMatrix]) -> np.ndarray:
    sizes = np.array([len(g) for g in groups], dtype=np.intp)
    if np.any(sizes == 0):
        raise MiningError("cannot compare empty groups")
    offsets = np.zeros(len(groups) + 1, dtype=np.intp)
    np.cumsum(sizes, out=offsets[1:])
    return offsets


def _reduce_block(sub: np.ndarray, a_rows: bool) -> float:
    """Eq. (9) reduction of one cross block.

    ``sub`` is ``(rows, cols)``; ``a_rows`` says whether group *a* of
    the pair sits on the row axis.  The benchmark is the smaller group,
    ties going to *a*.
    """
    rows, cols = sub.shape
    a_size, b_size = (rows, cols) if a_rows else (cols, rows)
    benchmark_is_a = a_size <= b_size
    benchmark_on_rows = benchmark_is_a == a_rows
    if benchmark_on_rows:
        return float(sub.max(axis=1).mean())
    return float(sub.max(axis=0).mean())


def group_stsim_row(
    target: FeatureMatrix,
    others: Sequence[FeatureMatrix],
    weights=None,
    target_first: bool = True,
) -> np.ndarray:
    """GpSim of one group against many, in one packed kernel call.

    ``target_first`` preserves the scalar oracle's argument order for
    benchmark tie-breaks: ``True`` evaluates ``GpSim(target, g)``,
    ``False`` evaluates ``GpSim(g, target)``.
    """
    if len(target) == 0:
        raise MiningError("cannot compare empty groups")
    if not others:
        return np.zeros(0, dtype=np.float64)
    offsets = _group_offsets(others)
    packed = FeatureMatrix.concatenate(list(others))
    cross = cross_stsim(target, packed, weights=weights)
    out = np.empty(len(others), dtype=np.float64)
    for g in range(len(others)):
        sub = cross[:, offsets[g] : offsets[g + 1]]
        out[g] = _reduce_block(sub, a_rows=target_first)
    return out


def group_pairwise_matrix(
    groups: Sequence[FeatureMatrix], weights=None
) -> np.ndarray:
    """``out[i, j] = GpSim(groups[i], groups[j])`` for every ordered pair.

    All member shots are packed once and a single chunked cross-StSim
    feeds every block reduction.  The matrix is asymmetric only where
    the scalar oracle is: equal-sized groups benchmark on the first
    argument, so ``out[i, j]`` and ``out[j, i]`` can differ there —
    callers that want the scalar upper-triangle semantics read
    ``out[i, j]`` with ``i < j`` and mirror it themselves.
    """
    n = len(groups)
    out = np.empty((n, n), dtype=np.float64)
    if n == 0:
        return out
    offsets = _group_offsets(groups)
    packed = FeatureMatrix.concatenate(list(groups))
    cross = cross_stsim(packed, packed, weights=weights)
    for i in range(n):
        rows = slice(offsets[i], offsets[i + 1])
        for j in range(n):
            sub = cross[rows, offsets[j] : offsets[j + 1]]
            out[i, j] = _reduce_block(sub, a_rows=True)
    return out


# ---------------------------------------------------------------------------
# Combined-vector kernels (database layer: 256-d histogram ‖ 10-d texture).
# ---------------------------------------------------------------------------


def combined_stsim_to_many(
    query: np.ndarray,
    matrix: np.ndarray,
    weights=None,
    histogram_dim: int = HISTOGRAM_DIM,
) -> np.ndarray:
    """Eq. (1) of one combined 266-d query against stacked entries.

    Mirrors :func:`repro.database.index.feature_similarity` without the
    per-entry Python dispatch: one call scores a whole candidate block.
    """
    wc, wt = _resolve_weights(weights)
    query = np.asarray(query, dtype=np.float64)
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    KERNEL_STATS.chunks += 1
    KERNEL_STATS.pair_evals += matrix.shape[0]
    color = np.minimum(query[None, :histogram_dim], matrix[:, :histogram_dim]).sum(
        axis=1
    )
    diff = matrix[:, histogram_dim:] - query[None, histogram_dim:]
    texture_term = np.maximum(1.0 - (diff * diff).sum(axis=1), 0.0)
    return wc * color + wt * texture_term


def intersection_to_many(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Plain ``min``-sum of a query against stacked (already-reduced) rows.

    The reduced-sub-space branch of ``feature_similarity``: both sides
    are restricted to a node's discriminating dimensions before the
    call.
    """
    query = np.asarray(query, dtype=np.float64)
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    KERNEL_STATS.chunks += 1
    KERNEL_STATS.pair_evals += matrix.shape[0]
    return np.minimum(query[None, :], matrix).sum(axis=1)


def quantized_intersection_to_many(
    query_codes: np.ndarray,
    codes: np.ndarray,
    scale: np.ndarray,
    offset_total: float,
) -> np.ndarray:
    """Approximate ``min``-sum over per-dimension affine uint8 codes.

    Both sides carry the same scalar quantization
    ``value ≈ offset[d] + scale[d] * code`` with ``scale >= 0``, so the
    affine map commutes with the minimum and the intersection score
    decomposes exactly over the codes::

        sum_d min(deq(q_d), deq(x_d)) = sum_d scale_d * min(q_d, x_d)
                                      + sum_d offset_d

    The scan therefore touches only uint8 bytes (an 8x bandwidth
    reduction against the float64 sub-space scan) plus one matvec
    against the per-dim scales; ``offset_total`` is the precomputed
    ``sum_d offset_d``.  The result approximates
    :func:`intersection_to_many` up to quantization error — the ANN
    tier re-ranks survivors with the exact kernel.
    """
    query_codes = np.asarray(query_codes, dtype=np.uint8)
    codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
    KERNEL_STATS.chunks += 1
    KERNEL_STATS.pair_evals += codes.shape[0]
    mins = np.minimum(query_codes[None, :], codes)
    scale = np.asarray(scale, dtype=np.float64)
    return mins.astype(np.float64) @ scale + float(offset_total)
