"""Automatic threshold selection — the "fast entropy technique" [10].

Several stages of the paper pick thresholds automatically from a pool of
observed similarity/difference values (shot detection windows, the group
merging threshold TG, the group-detection thresholds T1/T2).  Reference
[10] describes a fast entropy-based selector; we implement Kapur's
maximum-entropy thresholding over a histogram of the values, which is the
standard formulation of entropy-based threshold detection:

    T* = argmax_T  H(values <= T) + H(values > T)

where H is the Shannon entropy of the normalised histogram restricted to
one side of the candidate threshold.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MiningError

#: Histogram resolution used by the selector.
DEFAULT_BINS = 64


def entropy_threshold(
    values: np.ndarray | list[float],
    bins: int = DEFAULT_BINS,
) -> float:
    """Pick the maximum-entropy threshold for a 1-D value pool.

    Returns a value strictly inside ``(min(values), max(values))`` when
    the pool has spread; degenerate pools (all values equal, or fewer
    than 2 values) return that single value.

    Parameters
    ----------
    values:
        The observed values (e.g. frame differences, group similarities).
    bins:
        Histogram resolution.

    Raises
    ------
    MiningError
        If the pool is empty or contains non-finite values.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise MiningError("cannot pick a threshold from an empty value pool")
    if not np.all(np.isfinite(values)):
        raise MiningError("value pool contains non-finite entries")
    low = float(values.min())
    high = float(values.max())
    if values.size < 2 or high - low < 1e-12:
        return low

    counts, edges = np.histogram(values, bins=bins, range=(low, high))
    probabilities = counts.astype(np.float64) / counts.sum()

    # Cumulative mass and cumulative entropy-sums from the left.
    cumulative = np.cumsum(probabilities)
    with np.errstate(divide="ignore", invalid="ignore"):
        plogp = np.where(probabilities > 0, probabilities * np.log(probabilities), 0.0)
    cumulative_plogp = np.cumsum(plogp)
    total_plogp = cumulative_plogp[-1]

    best_score = -np.inf
    best_index = 0
    for t in range(bins - 1):
        mass_low = cumulative[t]
        mass_high = 1.0 - mass_low
        if mass_low <= 0 or mass_high <= 0:
            continue
        # H_low = -sum_{i<=t} (p_i/mass_low) log(p_i/mass_low)
        h_low = np.log(mass_low) - cumulative_plogp[t] / mass_low
        h_high = np.log(mass_high) - (total_plogp - cumulative_plogp[t]) / mass_high
        score = h_low + h_high
        if score > best_score:
            best_score = score
            best_index = t
    return float(edges[best_index + 1])


def adaptive_local_threshold(
    window_values: np.ndarray | list[float],
    floor_sigma: float = 5.0,
    minimum: float = 0.05,
) -> float:
    """Threshold for one shot-detection window (Sec. 3.1).

    Combines the entropy threshold with a local-activity floor so quiet
    windows do not produce spuriously low thresholds: the result is

        max(entropy_threshold(window), median + floor_sigma * MAD, minimum)

    where MAD is the median absolute deviation — a robust activity
    estimate that peaks (true cuts) cannot inflate.
    """
    window_values = np.asarray(window_values, dtype=np.float64).ravel()
    if window_values.size == 0:
        raise MiningError("cannot adapt a threshold to an empty window")
    median = float(np.median(window_values))
    mad = float(np.median(np.abs(window_values - median)))
    activity_floor = median + floor_sigma * max(mad, 1e-4)
    entropy_pick = entropy_threshold(window_values) if window_values.size >= 2 else minimum
    return max(entropy_pick, activity_floor, minimum)
