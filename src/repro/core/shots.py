"""Shot-boundary detection with adaptive local thresholds (Sec. 3.1).

The stream's inter-frame histogram-difference signal is processed in
small windows (30 frames by default).  Each window gets its own
threshold — the fast-entropy pick combined with a robust local-activity
floor — so quiet passages and busy passages are judged by their own
statistics, exactly the adaptation the paper argues for.

A boundary is declared at frame transition ``i`` when ``d[i]`` exceeds
its window's threshold *and* is the local maximum among its immediate
neighbours (cuts are single-frame spikes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import Shot, build_shot
from repro.core.threshold import adaptive_local_threshold
from repro.errors import MiningError
from repro.video.stream import VideoStream
from repro.vision.difference import difference_signal

#: Paper window size: "a small window (e.g., 30 frames in our current work)".
DEFAULT_WINDOW = 30

#: Minimum frames per shot; spikes closer together than this are merged.
MIN_SHOT_LENGTH = 5


@dataclass
class ShotDetectionResult:
    """Everything the detector saw — kept for Fig. 5 style inspection.

    Attributes
    ----------
    shots:
        The detected shots with features.
    differences:
        The inter-frame difference signal (length ``frames - 1``).
    thresholds:
        The per-transition threshold actually applied (same length).
    boundaries:
        Frame indices where new shots start (excluding frame 0).
    """

    shots: list[Shot]
    differences: np.ndarray = field(repr=False)
    thresholds: np.ndarray = field(repr=False)
    boundaries: list[int]

    @property
    def shot_count(self) -> int:
        """Number of detected shots."""
        return len(self.shots)


def detect_boundaries(
    differences: np.ndarray,
    window: int = DEFAULT_WINDOW,
    min_shot_length: int = MIN_SHOT_LENGTH,
) -> tuple[list[int], np.ndarray]:
    """Find cut positions in a difference signal.

    Returns ``(boundaries, thresholds)`` where ``boundaries`` holds the
    frame indices at which a new shot starts and ``thresholds`` the
    per-transition adaptive threshold.
    """
    differences = np.asarray(differences, dtype=np.float64)
    n = differences.size
    if n == 0:
        return [], np.zeros(0)
    if window < 4:
        raise MiningError(f"window must be at least 4 frames, got {window}")

    thresholds = np.empty(n, dtype=np.float64)
    for start in range(0, n, window):
        stop = min(start + window, n)
        local = differences[start:stop]
        thresholds[start:stop] = adaptive_local_threshold(local)

    boundaries: list[int] = []
    for i in range(n):
        if differences[i] <= thresholds[i]:
            continue
        left = differences[i - 1] if i > 0 else -np.inf
        right = differences[i + 1] if i < n - 1 else -np.inf
        if differences[i] < max(left, right):
            continue  # not the local peak of this cut
        boundary = i + 1  # cut between frames i and i+1: new shot at i+1
        if boundaries and boundary - boundaries[-1] < min_shot_length:
            # Two spikes too close together: keep the stronger one.
            previous = boundaries[-1] - 1
            if differences[i] > differences[previous]:
                boundaries[-1] = boundary
            continue
        if boundary < min_shot_length:
            continue
        boundaries.append(boundary)
    return boundaries, thresholds


def detect_shots(
    stream: VideoStream,
    window: int = DEFAULT_WINDOW,
    min_shot_length: int = MIN_SHOT_LENGTH,
    mode: str = "histogram",
) -> ShotDetectionResult:
    """Segment a stream into shots and extract per-shot features.

    ``mode`` selects the difference signal: ``"histogram"`` (full-frame
    HSV histogram differences, the default) or ``"dc"`` (compressed-
    domain DC-coefficient differences, as the paper's MPEG detector
    [10] used — much cheaper, slightly less colour-sensitive).
    """
    if mode == "histogram":
        differences = difference_signal(stream)
    elif mode == "dc":
        from repro.vision.compressed import dc_difference_signal

        differences = dc_difference_signal(stream)
    else:
        raise MiningError(f"unknown detection mode {mode!r}")
    boundaries, thresholds = detect_boundaries(
        differences, window=window, min_shot_length=min_shot_length
    )
    spans = boundary_spans(boundaries, len(stream))
    shots = [
        build_shot(stream, shot_id, start, stop)
        for shot_id, (start, stop) in enumerate(spans)
    ]
    return ShotDetectionResult(
        shots=shots,
        differences=differences,
        thresholds=thresholds,
        boundaries=boundaries,
    )


def boundary_spans(boundaries: list[int], frame_count: int) -> list[tuple[int, int]]:
    """Convert boundary positions to half-open ``(start, stop)`` spans."""
    if frame_count < 1:
        raise MiningError("stream has no frames")
    starts = [0] + list(boundaries)
    stops = list(boundaries) + [frame_count]
    spans = []
    for start, stop in zip(starts, stops):
        if stop <= start:
            raise MiningError(f"boundary list is not strictly increasing: {boundaries}")
        spans.append((start, stop))
    return spans


def shots_from_ground_truth(stream: VideoStream, spans: list[tuple[int, int]]) -> list[Shot]:
    """Build feature-bearing shots from known spans (oracle segmentation).

    Used by evaluations that want to isolate the grouping/scene stages
    from shot-detection errors.
    """
    return [
        build_shot(stream, shot_id, start, stop)
        for shot_id, (start, stop) in enumerate(spans)
    ]
