"""Core contribution: video content-structure mining (Sec. 3) + facade."""

from repro.core.clustering import (
    ClusteredScene,
    SceneClusteringResult,
    cluster_scenes,
)
from repro.core.features import Shot, build_shot, representative_frame_index
from repro.core.groups import (
    Group,
    GroupKind,
    GroupThresholds,
    classify_group,
    detect_group_boundaries,
    detect_groups,
    select_representative_shot,
)
from repro.core.pipeline import ClassMiner, ClassMinerResult
from repro.core.scenes import (
    Scene,
    SceneDetectionResult,
    detect_scenes,
    select_representative_group,
)
from repro.core.shots import (
    ShotDetectionResult,
    boundary_spans,
    detect_boundaries,
    detect_shots,
    shots_from_ground_truth,
)
from repro.core.kernels import (
    FeatureMatrix,
    banded_stsim,
    cross_stsim,
    group_stsim,
    pairwise_stsim,
)
from repro.core.similarity import (
    SimilarityWeights,
    group_similarity,
    group_similarity_matrix,
    group_similarity_to_many,
    shot_group_similarity,
    shot_similarity,
    similarity_matrix,
)
from repro.core.structure import (
    ContentStructure,
    MiningConfig,
    mine_content_structure,
)
from repro.core.threshold import adaptive_local_threshold, entropy_threshold
from repro.core.validity import search_range, validity_index

__all__ = [
    "ClassMiner",
    "ClassMinerResult",
    "ClusteredScene",
    "ContentStructure",
    "FeatureMatrix",
    "Group",
    "GroupKind",
    "GroupThresholds",
    "MiningConfig",
    "Scene",
    "SceneClusteringResult",
    "SceneDetectionResult",
    "Shot",
    "ShotDetectionResult",
    "SimilarityWeights",
    "adaptive_local_threshold",
    "banded_stsim",
    "boundary_spans",
    "build_shot",
    "classify_group",
    "cluster_scenes",
    "cross_stsim",
    "detect_boundaries",
    "detect_group_boundaries",
    "detect_groups",
    "detect_scenes",
    "detect_shots",
    "entropy_threshold",
    "group_similarity",
    "group_similarity_matrix",
    "group_similarity_to_many",
    "group_stsim",
    "mine_content_structure",
    "pairwise_stsim",
    "representative_frame_index",
    "search_range",
    "select_representative_group",
    "select_representative_shot",
    "shot_group_similarity",
    "shot_similarity",
    "shots_from_ground_truth",
    "similarity_matrix",
    "validity_index",
]
