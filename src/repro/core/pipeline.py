"""The ClassMiner facade: the paper's full system in one object.

``ClassMiner.mine`` takes a video stream and returns everything the
database, skimming and evaluation layers consume: the content-structure
hierarchy, per-shot visual cues, per-shot audio analyses, and per-scene
events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.audio.speaker import ShotAudio, SpeakerAnalyzer
from repro.core.structure import (
    ContentStructure,
    MiningConfig,
    degrade_stage,
    mine_content_structure,
)
from repro.errors import MiningError
from repro.events.miner import EventMiner, EventMiningResult
from repro.events.model import SceneEvent
from repro.obs.trace import span as obs_span
from repro.resilience.faults import fault_point
from repro.types import EventKind
from repro.video.stream import VideoStream
from repro.vision.cues import VisualCues


@dataclass
class ClassMinerResult:
    """Everything ClassMiner mined from one video.

    ``degraded_stages`` names every pipeline stage that fell back
    instead of completing (``"cues"``, ``"audio"``, ``"events"``, or a
    structure stage like ``"scenes"``); an empty tuple means the full
    pipeline succeeded.  The flags survive artifact serialisation and
    database registration, so query results can say which answers come
    from weakened evidence.
    """

    structure: ContentStructure
    cues: dict[int, VisualCues] = field(repr=False)
    audio: dict[int, ShotAudio] = field(repr=False)
    events: EventMiningResult | None = field(default=None, repr=False)
    degraded_stages: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when any mining stage fell back instead of completing."""
        return bool(self.degraded_stages)

    @property
    def title(self) -> str:
        """Video title."""
        return self.structure.title

    def event_of_scene(self, scene_id: int) -> SceneEvent:
        """Mined event of scene ``scene_id``."""
        if self.events is None:
            raise MiningError("event mining was disabled for this run")
        return self.events.event_of_scene(scene_id)

    def scene_events(self) -> dict[int, EventKind]:
        """Scene id -> mined event kind (empty when events disabled)."""
        if self.events is None:
            return {}
        return {event.scene_index: event.kind for event in self.events.events}


class ClassMiner:
    """The paper's prototype system: structure + event mining.

    Parameters
    ----------
    config:
        Content-structure mining configuration.
    analyzer:
        Speaker analyzer (owns the speech/non-speech GMM); built lazily
        with defaults when omitted.
    """

    def __init__(
        self,
        config: MiningConfig | None = None,
        analyzer: SpeakerAnalyzer | None = None,
    ) -> None:
        self._config = config if config is not None else MiningConfig()
        self._analyzer = analyzer

    @property
    def config(self) -> MiningConfig:
        """The active mining configuration."""
        return self._config

    def mine(
        self,
        stream: VideoStream,
        mine_events: bool = True,
        oracle_shot_spans: list[tuple[int, int]] | None = None,
    ) -> ClassMinerResult:
        """Run the full pipeline on one video.

        Parameters
        ----------
        stream:
            The video (audio attached when speaker tests are wanted).
        mine_events:
            Disable to skip cue extraction and audio analysis (cheaper,
            used when only the structure is needed).
        oracle_shot_spans:
            Bypass shot detection with known spans (evaluation only).

        Failure containment: after a structure exists, no stage failure
        raises.  A cue-extraction failure yields a structure-only
        result (events cannot be mined without visual evidence); an
        audio failure falls back to visual-only event rules; an
        event-mining failure keeps structure, cues and audio.  Every
        fallback is named in :attr:`ClassMinerResult.degraded_stages`
        and announced with a :class:`~repro.errors.DegradedResultWarning`.
        """
        with obs_span(
            "mine", title=stream.title, frames=len(stream)
        ) as root:
            structure = mine_content_structure(
                stream, self._config, oracle_shot_spans=oracle_shot_spans
            )
            root.set(
                shots=structure.shot_count,
                scenes=structure.scene_count,
            )
            degraded = list(structure.degraded_stages)
            if not mine_events:
                return ClassMinerResult(
                    structure=structure,
                    cues={},
                    audio={},
                    degraded_stages=tuple(degraded),
                )

            miner = EventMiner(analyzer=self._analyzer)
            with obs_span("mine.cues") as sp:
                try:
                    fault_point("mine.cues")
                    cues = miner.visual_cues(structure.shots)
                except Exception as exc:
                    degrade_stage(stream.title, "cues", exc)
                    degraded += ["cues", "events"]
                    sp.set(degraded=True)
                    return ClassMinerResult(
                        structure=structure,
                        cues={},
                        audio={},
                        degraded_stages=tuple(degraded),
                    )
                sp.set(shots=len(cues))

            audio_source = stream.audio
            with obs_span("mine.audio") as sp:
                try:
                    fault_point("mine.audio")
                    audio = miner.shot_audio(structure.shots, audio_source)
                except Exception as exc:
                    degrade_stage(stream.title, "audio", exc)
                    degraded.append("audio")
                    audio = {}
                    audio_source = None  # events fall back to visual rules
                    sp.set(degraded=True)
                sp.set(shots=len(audio))

            with obs_span("mine.events") as sp:
                try:
                    fault_point("mine.events")
                    events = miner.mine(structure.scenes, audio_source)
                    sp.set(events=len(events.events))
                except Exception as exc:
                    degrade_stage(stream.title, "events", exc)
                    degraded.append("events")
                    events = None
                    sp.set(degraded=True)

            return ClassMinerResult(
                structure=structure,
                cues=cues,
                audio=audio,
                events=events,
                degraded_stages=tuple(degraded),
            )
