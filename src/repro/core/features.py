"""Per-shot visual features (Sec. 3.1).

After segmentation, the 10th frame of each shot becomes its
representative frame and two descriptors are extracted: a 256-bin HSV
colour histogram and a 10-dimensional Tamura coarseness texture vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MiningError
from repro.video.frame import Frame
from repro.video.stream import VideoStream
from repro.vision.histogram import hsv_histogram
from repro.vision.texture import tamura_coarseness

#: The paper takes the 10th frame of each shot as representative.
REPRESENTATIVE_FRAME_OFFSET = 9


@dataclass
class Shot:
    """A detected shot with its representative frame and features.

    Attributes
    ----------
    shot_id:
        Zero-based index in detection order.
    start / stop:
        Frame range, half-open.
    fps:
        Stream frame rate (for second-based durations).
    representative_frame:
        The paper's 10th frame (or the middle frame of shorter shots).
    histogram / texture:
        256-bin HSV histogram and 10-dim Tamura coarseness.
    """

    shot_id: int
    start: int
    stop: int
    fps: float
    representative_frame: Frame = field(repr=False)
    histogram: np.ndarray = field(repr=False)
    texture: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise MiningError(f"invalid shot span [{self.start}, {self.stop})")
        if self.fps <= 0:
            raise MiningError("fps must be positive")

    @property
    def length(self) -> int:
        """Number of frames."""
        return self.stop - self.start

    @property
    def duration(self) -> float:
        """Duration in seconds."""
        return self.length / self.fps

    @property
    def time_window(self) -> tuple[float, float]:
        """``(start, stop)`` in seconds."""
        return (self.start / self.fps, self.stop / self.fps)

    def frame_range(self) -> range:
        """Frame indices covered by the shot."""
        return range(self.start, self.stop)


def representative_frame_index(start: int, stop: int) -> int:
    """Pick the representative frame index for a shot span.

    The paper uses the 10th frame; shots shorter than 10 frames fall
    back to the middle frame.
    """
    if stop - start > REPRESENTATIVE_FRAME_OFFSET:
        return start + REPRESENTATIVE_FRAME_OFFSET
    return start + (stop - start) // 2


def build_shot(stream: VideoStream, shot_id: int, start: int, stop: int) -> Shot:
    """Construct a :class:`Shot` with features from a frame span."""
    if stop > len(stream):
        raise MiningError(f"shot span [{start}, {stop}) exceeds stream length")
    frame = stream[representative_frame_index(start, stop)]
    return Shot(
        shot_id=shot_id,
        start=start,
        stop=stop,
        fps=stream.fps,
        representative_frame=frame,
        histogram=hsv_histogram(frame),
        texture=tamura_coarseness(frame),
    )
