"""Seedless Pairwise Cluster Scheme for scene clustering (Sec. 3.5).

Unlike k-means, PCS needs no initial centroids and no presentation
order: it repeatedly merges the most similar pair of scene clusters
(similarity of their representative groups, Eqs. 12-13), re-electing
each merged cluster's representative group with SelectRepGroup.  The
stopping point is chosen by cluster-validity analysis over the paper's
[0.5 M, 0.7 M] range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.groups import Group
from repro.core.scenes import Scene, select_representative_group
from repro.core.similarity import (
    SimilarityWeights,
    group_similarity_matrix,
    group_similarity_to_many,
)
from repro.core.validity import search_range, validity_index
from repro.errors import MiningError


@dataclass
class ClusteredScene:
    """One scene cluster: visually similar scenes, possibly far apart.

    Attributes
    ----------
    cluster_id:
        Zero-based index.
    scenes:
        Member scenes, ordered by appearance.
    centroid:
        Representative group elected over all member groups.
    """

    cluster_id: int
    scenes: list[Scene]
    centroid: Group = field(repr=False)

    def __post_init__(self) -> None:
        if not self.scenes:
            raise MiningError(f"cluster {self.cluster_id} has no scenes")

    @property
    def scene_ids(self) -> list[int]:
        """Member scene ids."""
        return [scene.scene_id for scene in self.scenes]

    @property
    def shot_count(self) -> int:
        """Total shots across member scenes."""
        return sum(scene.shot_count for scene in self.scenes)

    @property
    def is_recurring(self) -> bool:
        """True when the cluster absorbed more than one scene."""
        return len(self.scenes) > 1


@dataclass
class SceneClusteringResult:
    """Clusters plus the validity curve that selected their count."""

    clusters: list[ClusteredScene]
    validity_curve: dict[int, float]
    chosen_count: int

    @property
    def cluster_count(self) -> int:
        """Number of clusters."""
        return len(self.clusters)


def _merged_centroid(
    scenes: list[Scene], weights: SimilarityWeights
) -> Group:
    """SelectRepGroup over every group of the member scenes."""
    all_groups = [group for scene in scenes for group in scene.groups]
    return select_representative_group(all_groups, weights)


def _pairwise_matrix(
    centroids: list[Group], weights: SimilarityWeights
) -> np.ndarray:
    """Symmetric GpSim matrix over centroids (diagonal ``-inf``).

    One packed kernel call scores every pair; the upper triangle (the
    scalar loop's ``group_similarity(centroids[i], centroids[j])`` with
    ``i < j``) is mirrored down, exactly like the scalar construction.
    """
    n = len(centroids)
    matrix = np.full((n, n), -np.inf)
    if n < 2:
        return matrix
    scored = group_similarity_matrix([c.shots for c in centroids], weights)
    upper = np.triu_indices(n, 1)
    matrix[upper] = scored[upper]
    matrix[(upper[1], upper[0])] = scored[upper]
    return matrix


def cluster_scenes(
    scenes: list[Scene],
    weights: SimilarityWeights = SimilarityWeights(),
    target_count: int | None = None,
) -> SceneClusteringResult:
    """Run PCS with validity-based model selection.

    ``target_count`` forces a specific cluster count (used by ablation
    benches); by default every count in ``[C_min, C_max]`` is evaluated
    with Eq. (14) and the minimiser wins.
    """
    if not scenes:
        raise MiningError("no scenes to cluster")
    m = len(scenes)
    c_min, c_max = search_range(m)
    if target_count is not None:
        if not 1 <= target_count <= m:
            raise MiningError(f"target_count must be in [1, {m}]")
        c_min = c_max = target_count

    # Active clusters: parallel lists of member-scene lists and centroids.
    members: list[list[Scene]] = [[scene] for scene in scenes]
    centroids: list[Group] = [scene.representative_group for scene in scenes]
    matrix = _pairwise_matrix(centroids, weights)

    snapshots: dict[int, tuple[list[list[Scene]], list[Group]]] = {}
    if m <= c_max:
        snapshots[m] = ([list(ms) for ms in members], list(centroids))

    while len(members) > c_min:
        n = len(members)
        flat_index = int(np.argmax(matrix))
        i, j = divmod(flat_index, n)
        if matrix[i, j] == -np.inf:
            break  # nothing left to merge
        if i > j:
            i, j = j, i
        merged_scenes = members[i] + members[j]
        merged_centroid = _merged_centroid(merged_scenes, weights)

        # Remove j, replace i.
        members.pop(j)
        centroids.pop(j)
        members[i] = merged_scenes
        centroids[i] = merged_centroid
        matrix = np.delete(np.delete(matrix, j, axis=0), j, axis=1)
        # Refresh row/column i in one batched kernel call: GpSim of the
        # merged centroid against every surviving centroid.
        others = [k for k in range(len(members)) if k != i]
        if others:
            row = group_similarity_to_many(
                centroids[i].shots, [centroids[k].shots for k in others], weights
            )
            matrix[i, others] = row
            matrix[others, i] = row

        count = len(members)
        if c_min <= count <= c_max:
            snapshots[count] = ([list(ms) for ms in members], list(centroids))

    if not snapshots:
        snapshots[len(members)] = ([list(ms) for ms in members], list(centroids))

    validity_curve: dict[int, float] = {}
    for count, (snapshot_members, snapshot_centroids) in snapshots.items():
        member_centroids = [
            [scene.representative_group for scene in cluster]
            for cluster in snapshot_members
        ]
        validity_curve[count] = validity_index(
            member_centroids, snapshot_centroids, weights
        )

    finite = {k: v for k, v in validity_curve.items() if np.isfinite(v)}
    chosen = min(finite, key=finite.get) if finite else max(snapshots)
    chosen_members, chosen_centroids = snapshots[chosen]

    clusters = [
        ClusteredScene(
            cluster_id=index,
            scenes=sorted(cluster, key=lambda scene: scene.scene_id),
            centroid=centroid,
        )
        for index, (cluster, centroid) in enumerate(
            zip(chosen_members, chosen_centroids)
        )
    ]
    clusters.sort(key=lambda c: c.scenes[0].scene_id)
    for index, cluster in enumerate(clusters):
        cluster.cluster_id = index
    return SceneClusteringResult(
        clusters=clusters,
        validity_curve=validity_curve,
        chosen_count=chosen,
    )
