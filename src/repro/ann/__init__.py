"""Approximate retrieval tier: IVF-quantized leaf scans + exact re-rank.

The hierarchical descent (Eqs. 24-25) is exact but still scans every
leaf candidate at full float64 precision; at millions of scenes those
leaf scans dominate query latency.  This package adds a per-leaf
IVF-style tier:

* a seeded pure-NumPy k-means **coarse quantizer** over the leaf's
  packed feature rows, restricted to the leaf's discriminating
  sub-space (:mod:`repro.ann.quantizer`);
* per-cell inverted lists with **scalar-quantized uint8 codes**
  (per-dim scale/offset), scanned by
  :func:`repro.core.kernels.quantized_intersection_to_many`;
* an **exact re-rank tail** that recomputes the true sub-space score on
  the top ``rerank_k`` survivors, so ``nprobe=all`` (with an unbounded
  tail) reproduces the exact path bit-identically — same candidates,
  same scores, same tie-break order (:mod:`repro.ann.index`).

``nprobe=None`` disables the tier entirely; every existing call site
keeps its exact semantics untouched.
"""

from repro.ann.index import (
    DEFAULT_NPROBE,
    DEFAULT_RERANK_K,
    AnnLeafIndex,
    build_leaf_ann,
    resolve_ann,
)
from repro.ann.quantizer import (
    ANN_SEED,
    DEFAULT_ANN_CELLS,
    kmeans_cells,
    quantize_queries,
    scalar_quantize,
)

__all__ = [
    "ANN_SEED",
    "DEFAULT_ANN_CELLS",
    "DEFAULT_NPROBE",
    "DEFAULT_RERANK_K",
    "AnnLeafIndex",
    "build_leaf_ann",
    "kmeans_cells",
    "quantize_queries",
    "resolve_ann",
    "scalar_quantize",
]
