"""ANN tier smoke: exactness, recall, persistence, degrade paths.

``make ann-smoke`` drives the approximate retrieval tier end to end on
a seeded synthetic corpus and checks its contracts:

1. ``nprobe`` covering every cell with an unbounded re-rank tail is
   *bit-identical* to the exact hierarchical scan (ids, scores,
   comparison counts, visited paths);
2. recall@10 is monotonically non-decreasing in ``nprobe`` and reaches
   1.0 at full probe, and pruning really reduces exact work;
3. a saved catalog round-trips every leaf's quantizer bit for bit
   (stored state reproduces a fresh deterministic build), and the lazy
   out-of-core reader answers ANN queries identically to the eager
   database;
4. a missing ANN code block (the ``storage.ann_block_missing`` fault
   point) degrades to the exact scan — same hits, ``ann_degraded``
   raised — and recovers once the fault clears.

Everything is seeded and deterministic; any check failure exits 1.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.ann.index import DEFAULT_RERANK_K, build_leaf_ann
from repro.database.query import search_hierarchical
from repro.errors import ReproError
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.storage.lazy import SQLVideoDatabase
from repro.storage.sqlcatalog import save_database
from repro.storage.synthetic import build_synthetic_database

#: An nprobe no leaf's cell count can reach: the exactness regime.
NPROBE_ALL = 1_000_000


def _report(name: str, ok: bool, detail: str) -> bool:
    print(f"ann-smoke: [{'ok ' if ok else 'FAIL'}] {name} — {detail}")
    return ok


def _hits(result) -> list[tuple[str, int, float]]:
    return [
        (h.entry.video_title, h.entry.shot_id, h.score) for h in result.hits
    ]


def _probes(database, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    entries = database.flat_index.entries
    width = entries[0].features.shape[0]
    near = [
        np.clip(
            entries[int(rng.integers(0, len(entries)))].features
            + rng.normal(0.0, 0.01, width),
            0.0,
            None,
        )
        for _ in range(6)
    ]
    return near + [rng.random(width) for _ in range(2)]


def _exactness(database, probes) -> bool:
    for probe in probes:
        exact = search_hierarchical(database.index_root, probe, k=10)
        ann = search_hierarchical(
            database.index_root, probe, k=10, nprobe=NPROBE_ALL
        )
        if _hits(ann) != _hits(exact):
            return _report("nprobe-all-identity", False, "hits diverged")
        if ann.stats.comparisons != exact.stats.comparisons:
            return _report(
                "nprobe-all-identity", False, "comparison counts diverged"
            )
        if ann.stats.visited_path != exact.stats.visited_path:
            return _report("nprobe-all-identity", False, "paths diverged")
        if ann.stats.approx_comparisons != 0:
            return _report(
                "nprobe-all-identity", False, "uint8 scan ran without pruning"
            )
    return _report(
        "nprobe-all-identity",
        True,
        f"{len(probes)} probes bit-identical to the exact scan",
    )


def _recall(database, probes) -> bool:
    root = database.index_root
    truth = [
        {(t, s) for t, s, _ in _hits(search_hierarchical(root, p, k=10))}
        for p in probes
    ]
    recalls = []
    comparisons = []
    for nprobe in (1, 2, 4, 8, NPROBE_ALL):
        per_probe = []
        work = 0
        for probe, ids in zip(probes, truth):
            result = search_hierarchical(
                root, probe, k=10, nprobe=nprobe, rerank_k=DEFAULT_RERANK_K
            )
            got = {(t, s) for t, s, _ in _hits(result)}
            per_probe.append(len(got & ids) / max(len(ids), 1))
            work += result.stats.reranked
        recalls.append(float(np.mean(per_probe)))
        comparisons.append(work)
    monotone = all(a <= b + 1e-12 for a, b in zip(recalls, recalls[1:]))
    ok = monotone and recalls[-1] == 1.0 and comparisons[0] < comparisons[-1]
    return _report(
        "recall-monotone",
        ok,
        f"recall@10 {['%.2f' % r for r in recalls]} over nprobe sweep, "
        f"reranked {comparisons[0]} -> {comparisons[-1]}",
    )


def _roundtrip(database, db_dir: Path, probes) -> bool:
    from repro.storage.lazy import _ann_index_for

    lazy = SQLVideoDatabase.open(db_dir)
    try:
        catalog = lazy.catalog
        for info in catalog.leaf_infos():
            row = catalog.ann_leaf_row(info.name)
            if row is None:
                return _report(
                    "sql-roundtrip", False, f"no stored quantizer: {info.name}"
                )
            loaded = _ann_index_for(catalog, info)
            population = np.asarray(catalog.features.open(info.block.sha))
            if loaded.digest() != build_leaf_ann(population, info.dims).digest():
                return _report(
                    "sql-roundtrip", False, f"digest drift: {info.name}"
                )
        for probe in probes[:4]:
            eager = search_hierarchical(
                database.index_root, probe, k=10, nprobe=4, rerank_k=16
            )
            cold = search_hierarchical(
                lazy.index_root, probe, k=10, nprobe=4, rerank_k=16
            )
            if _hits(cold) != _hits(eager):
                return _report("sql-roundtrip", False, "lazy/eager diverged")
        leaves = len(catalog.leaf_infos())
    finally:
        lazy.close()
    return _report(
        "sql-roundtrip",
        True,
        f"{leaves} stored quantizers deterministic, lazy == eager",
    )


def _degrade(database, db_dir: Path, probes) -> bool:
    lazy = SQLVideoDatabase.open(db_dir)
    try:
        probe = probes[0]
        exact = search_hierarchical(database.index_root, probe, k=10)
        plan = FaultPlan(
            [FaultSpec(point="storage.ann_block_missing", kind="error")],
            seed=0,
        )
        with inject(plan):
            degraded = search_hierarchical(
                lazy.index_root, probe, k=10, nprobe=NPROBE_ALL
            )
        recovered = search_hierarchical(
            lazy.index_root, probe, k=10, nprobe=NPROBE_ALL
        )
    finally:
        lazy.close()
    ok = (
        degraded.stats.ann_degraded
        and _hits(degraded) == _hits(exact)
        and not recovered.stats.ann_degraded
        and _hits(recovered) == _hits(exact)
    )
    return _report(
        "degrade-and-recover",
        ok,
        "missing block fell back to the exact scan, then healed",
    )


def run_smoke(videos: int = 120, shots: int = 10, seed: int = 0) -> int:
    """Run the ANN smoke; returns a process exit code."""
    root = Path(tempfile.mkdtemp(prefix="ann-smoke-"))
    failures = 0
    try:
        database = build_synthetic_database(videos, shots, seed=seed)
        db_dir = root / "db"
        db_dir.mkdir()
        save_database(database, db_dir)
        probes = _probes(database, seed=seed + 7)
        failures += not _exactness(database, probes)
        failures += not _recall(database, probes)
        failures += not _roundtrip(database, db_dir, probes)
        failures += not _degrade(database, db_dir, probes)
    except ReproError as exc:
        print(
            f"ann-smoke: [FAIL] typed {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        failures += 1
    except Exception as exc:  # noqa: BLE001 — must never escape a public API
        print(
            f"ann-smoke: [FAIL] UNTYPED {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        failures += 1
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if failures:
        print(f"ann-smoke: FAIL ({failures} checks)", file=sys.stderr)
        return 1
    print(f"ann-smoke: OK (videos={videos}, seed={seed})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.ann.smoke [--videos N]`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(description="ANN tier smoke test")
    parser.add_argument("--videos", type=int, default=120)
    parser.add_argument("--shots", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    return run_smoke(videos=args.videos, shots=args.shots, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
