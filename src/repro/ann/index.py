"""Per-leaf IVF index: coarse cells + uint8 codes + exact re-rank rows.

One :class:`AnnLeafIndex` shadows one scene-concept leaf.  It is built
over the leaf's packed population in **insertion order** (the same row
order :meth:`~repro.database.index.LeafHashIndex.fallback_block`
serves), restricted to the leaf's discriminating sub-space:

* ``centroids`` — seeded k-means cells over the reduced rows;
* ``assign`` — each row's cell (the inverted lists, kept as one flat
  array so membership tests are a vectorised ``isin``);
* ``codes`` + ``scale``/``offset`` — per-dim scalar-quantized uint8
  codes of the reduced rows;
* ``sigs`` — each row's persisted leaf-hash signature, so the bucket
  row sets rebuild without touching the float block.

Bit-identity contract
---------------------
:meth:`AnnLeafIndex.search_rows` returns surviving row indices in
**ascending row order** — the exact path's candidate order.  With
``nprobe >= cells`` no cell is pruned, and with an unbounded re-rank
tail (``rerank_k=None``) no approximate score is even computed: the
survivors are precisely the rows the exact scan would visit, in the
same order, so downstream dedup, exact scoring and the global stable
sort reproduce the exact path bit for bit.  The uint8 scan runs only
when it can prune (a finite ``rerank_k`` below the candidate count);
its evaluations are reported so ``QueryStats.approx_comparisons`` stays
honest.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.ann.quantizer import (
    ANN_SEED,
    DEFAULT_ANN_CELLS,
    kmeans_cells,
    quantize_queries,
    scalar_quantize,
)
from repro.core.kernels import (
    intersection_to_many,
    quantized_intersection_to_many,
)
from repro.database.index import leaf_signature
from repro.errors import (
    DatabaseError,
    FaultInjectedError,
    IntegrityError,
    StorageError,
)

#: Default cells probed per leaf when a query enables the ANN tier.
#: Half the trained cells: measured recall@10 on the synthetic bench
#: corpus is ~0.97 here vs ~0.81 at 4 of 16 (``bench_ann.py``).
DEFAULT_NPROBE = 8

#: Default exact-re-rank tail length (None would mean "all survivors").
DEFAULT_RERANK_K = 32

_EMPTY_ROWS = np.empty(0, dtype=np.intp)


class AnnLeafIndex:
    """IVF cells + scalar codes over one leaf's reduced feature rows."""

    __slots__ = (
        "dims",
        "centroids",
        "assign",
        "codes",
        "scale",
        "offset",
        "offset_total",
        "sigs",
        "seed",
        "_bucket_rows",
    )

    def __init__(
        self,
        dims: np.ndarray,
        centroids: np.ndarray,
        assign: np.ndarray,
        codes: np.ndarray,
        scale: np.ndarray,
        offset: np.ndarray,
        sigs: np.ndarray,
        seed: int = ANN_SEED,
    ) -> None:
        self.dims = np.asarray(dims, dtype=np.int64)
        self.centroids = np.atleast_2d(np.asarray(centroids, dtype=np.float64))
        self.assign = np.asarray(assign, dtype=np.int64)
        self.codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
        self.scale = np.asarray(scale, dtype=np.float64)
        self.offset = np.asarray(offset, dtype=np.float64)
        self.offset_total = float(self.offset.sum())
        self.sigs = np.atleast_2d(np.asarray(sigs, dtype=np.int64))
        self.seed = int(seed)
        self._bucket_rows: dict[tuple[int, ...], np.ndarray] | None = None
        rows, width = self.codes.shape
        if (
            self.assign.shape != (rows,)
            or self.sigs.shape[0] != rows
            or self.centroids.shape[1] != width
            or self.scale.shape != (width,)
            or self.offset.shape != (width,)
            or self.dims.shape != (width,)
        ):
            raise IntegrityError(
                "ANN leaf index state is inconsistent (truncated or mismatched "
                f"arrays for {rows} rows x {width} dims)"
            )

    @property
    def n_rows(self) -> int:
        """Indexed leaf rows."""
        return int(self.codes.shape[0])

    @property
    def n_cells(self) -> int:
        """Trained coarse cells."""
        return int(self.centroids.shape[0])

    def digest(self) -> str:
        """Content digest over every stored array (determinism probe)."""
        hasher = hashlib.sha256()
        for array in (
            self.dims, self.centroids, self.assign,
            self.codes, self.scale, self.offset, self.sigs,
        ):
            hasher.update(str(array.shape).encode())
            hasher.update(np.ascontiguousarray(array).tobytes())
        return hasher.hexdigest()

    def _buckets(self) -> dict[tuple[int, ...], np.ndarray]:
        if self._bucket_rows is None:
            grouped: dict[tuple[int, ...], list[int]] = {}
            for row, sig in enumerate(self.sigs):
                grouped.setdefault(
                    tuple(int(v) for v in sig), []
                ).append(row)
            self._bucket_rows = {
                key: np.asarray(rows, dtype=np.intp)
                for key, rows in grouped.items()
            }
        return self._bucket_rows

    def bucket_rows(self, signature: tuple[int, ...]) -> np.ndarray:
        """Row indices of one hash bucket, ascending (empty when absent)."""
        return self._buckets().get(tuple(signature), _EMPTY_ROWS)

    def _base_rows(self, features: np.ndarray, mode: str) -> np.ndarray:
        if mode == "all":
            return np.arange(self.n_rows, dtype=np.intp)
        rows = self.bucket_rows(leaf_signature(features))
        if mode == "bucket":
            return rows
        if mode != "auto":
            raise DatabaseError(f"unknown ANN scan mode {mode!r}")
        # Mirrors probe_block: an empty bucket falls back to all rows.
        return rows if rows.size else np.arange(self.n_rows, dtype=np.intp)

    def search_rows(
        self,
        features: np.ndarray,
        nprobe: int,
        rerank_k: int | None = None,
        mode: str = "auto",
    ) -> tuple[np.ndarray, int]:
        """Surviving candidate rows for one query, in ascending row order.

        Returns ``(rows, approx_evals)``: the rows the exact re-rank
        tail must score, plus the number of quantized-code evaluations
        performed (0 when the uint8 scan could not prune anything and
        was skipped).  ``mode`` picks the base row set: ``auto`` mirrors
        :meth:`~repro.database.index.LeafHashIndex.probe_block`
        (bucket, else all rows), ``bucket``/``all`` serve the sharded
        probe/scan phases, whose empty-bucket decision is global.
        """
        rows = self._base_rows(features, mode)
        if rows.size == 0:
            return rows, 0
        nprobe = max(1, int(nprobe))
        query = np.asarray(features, dtype=np.float64)[self.dims]
        if nprobe < self.n_cells:
            cell_scores = intersection_to_many(query, self.centroids)
            probed = np.lexsort(
                (np.arange(self.n_cells), -cell_scores)
            )[:nprobe]
            rows = rows[np.isin(self.assign[rows], probed)]
            if rows.size == 0:
                return rows, 0
        if rerank_k is None or int(rerank_k) >= rows.size:
            # Nothing to prune: the exact tail scores every candidate,
            # so the approximate scan would be pure overhead.
            return rows, 0
        query_codes = quantize_queries(query, self.scale, self.offset)[0]
        approx = quantized_intersection_to_many(
            query_codes, self.codes[rows], self.scale, self.offset_total
        )
        evals = int(rows.size)
        # Top rerank_k by approximate score, ascending-row tie-break,
        # then back to ascending row order for the exact tail.
        top = np.lexsort((rows, -approx))[: int(rerank_k)]
        return np.sort(rows[top]), evals


def build_leaf_ann(
    population: np.ndarray,
    dims: np.ndarray,
    cells: int = DEFAULT_ANN_CELLS,
    seed: int = ANN_SEED,
) -> AnnLeafIndex:
    """Train one leaf's ANN index from its packed ``(N, 266)`` rows.

    ``population`` must be in leaf insertion order (the fallback-block
    order); ``dims`` is the leaf's discriminating sub-space.  Fully
    deterministic: same rows, dims, cells and seed give byte-identical
    state in any process (see ``AnnLeafIndex.digest``).
    """
    population = np.ascontiguousarray(
        np.atleast_2d(population), dtype=np.float64
    )
    dims = np.asarray(dims, dtype=np.int64)
    reduced = np.ascontiguousarray(population[:, dims])
    centroids, assign = kmeans_cells(reduced, cells=cells, seed=seed)
    codes, scale, offset = scalar_quantize(reduced)
    # Per-row signatures go through the scalar leaf_signature so bucket
    # membership is bit-identical to the hash index's own buckets.
    sigs = np.asarray(
        [leaf_signature(row) for row in population], dtype=np.int64
    ).reshape(population.shape[0], -1)
    return AnnLeafIndex(
        dims=dims,
        centroids=centroids,
        assign=assign,
        codes=codes,
        scale=scale,
        offset=offset,
        sigs=sigs,
        seed=seed,
    )


def resolve_ann(node) -> tuple[AnnLeafIndex | None, bool]:
    """The leaf node's ANN index: ``(index or None, degraded)``.

    Resolution order:

    * an already-resolved :class:`AnnLeafIndex` on ``node.ann``;
    * a loader thunk (the SQL catalog's lazy path) — a storage failure
      (missing/truncated code block, or the
      ``storage.ann_block_missing`` fault point) returns
      ``(None, True)`` and *keeps* the thunk so a later query can
      recover once the block is restored;
    * an eager populated leaf with no persisted index builds one
      deterministically on first use and caches it on the node (a
      concurrent build races benignly — both produce identical state).

    ``(None, False)`` means the leaf simply has no ANN tier (empty
    leaf, routing-metadata tree); the caller scans exactly.
    """
    ann = getattr(node, "ann", None)
    if isinstance(ann, AnnLeafIndex):
        return ann, False
    if ann is not None:
        try:
            index = ann()
        except (StorageError, IntegrityError, FaultInjectedError):
            return None, True
        if index is not None:
            node.ann = index
            return index, False
        # No persisted row (e.g. a catalog written before the ANN
        # schema): fall through to the deterministic eager build.
    leaf = getattr(node, "leaf", None)
    if leaf is None or node.dims is None or len(leaf) == 0:
        return None, False
    _entries, matrix = leaf.fallback_block()
    index = build_leaf_ann(np.asarray(matrix, dtype=np.float64), node.dims)
    node.ann = index
    return index, False
