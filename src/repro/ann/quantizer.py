"""Seeded coarse quantizer + scalar code quantization (pure NumPy).

Two deterministic building blocks for the ANN tier:

* :func:`kmeans_cells` — a seeded Lloyd's k-means over packed feature
  rows.  Initialisation draws from ``np.random.default_rng(seed)`` and
  every reduction (assignment argmin, member mean) is order-stable, so
  the same ``(data, cells, seed)`` triple yields byte-identical
  centroids and assignments *in every process* — shard builders each
  train their own quantizer and still agree with a rebuilt one.
* :func:`scalar_quantize` — per-dimension affine uint8 codes
  (``value ≈ offset[d] + scale[d] * code``).  The scale is non-negative
  by construction, which is what lets
  :func:`repro.core.kernels.quantized_intersection_to_many` compute the
  intersection score directly on the codes.

Distance computations use the ``‖a‖² + ‖b‖² − 2·a·b`` expansion so the
assignment step is one matmul plus rank-1 adds — no ``(N, C, d)``
temporary, keeping training memory flat in the corpus dimension.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatabaseError

#: Coarse cells trained per leaf (clamped to the leaf population).
DEFAULT_ANN_CELLS = 16

#: Seed of every quantizer training run (persisted per leaf).
ANN_SEED = 0

#: Lloyd iterations; few suffice for a routing-quality clustering.
_KMEANS_ITERATIONS = 4


def _assign(data: np.ndarray, centroids: np.ndarray, data_sq: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment via the norm expansion (ties → lowest)."""
    cent_sq = (centroids * centroids).sum(axis=1)
    d2 = data_sq[:, None] + cent_sq[None, :] - 2.0 * (data @ centroids.T)
    return np.argmin(d2, axis=1)


def kmeans_cells(
    data: np.ndarray,
    cells: int = DEFAULT_ANN_CELLS,
    seed: int = ANN_SEED,
    iterations: int = _KMEANS_ITERATIONS,
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded k-means: ``(centroids (C, d), assignment (N,) int64)``.

    ``cells`` is clamped to ``[1, N]``.  An emptied cell keeps its
    previous centroid (deterministic, no resampling), so the output
    depends only on the inputs and the seed.
    """
    data = np.ascontiguousarray(np.atleast_2d(data), dtype=np.float64)
    n = data.shape[0]
    if n == 0:
        raise DatabaseError("cannot train a quantizer on an empty population")
    cells = max(1, min(int(cells), n))
    rng = np.random.default_rng(seed)
    chosen = np.sort(rng.choice(n, size=cells, replace=False))
    centroids = data[chosen].copy()
    data_sq = (data * data).sum(axis=1)
    assignment = _assign(data, centroids, data_sq)
    for _ in range(max(0, int(iterations))):
        for c in range(cells):
            members = data[assignment == c]
            if members.shape[0]:
                centroids[c] = members.mean(axis=0)
        assignment = _assign(data, centroids, data_sq)
    return centroids, assignment.astype(np.int64)


def scalar_quantize(
    data: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-dim affine uint8 codes: ``(codes (N, d), scale (d,), offset (d,))``.

    ``offset`` is the per-dim minimum, ``scale`` the per-dim range over
    255 (zero for constant dimensions, whose rows all encode as 0 and
    dequantize exactly to the constant).  Codes round to nearest, so the
    reconstruction error per dimension is at most half a scale step.
    """
    data = np.ascontiguousarray(np.atleast_2d(data), dtype=np.float64)
    if data.shape[0] == 0:
        raise DatabaseError("cannot quantize an empty population")
    offset = data.min(axis=0)
    scale = (data.max(axis=0) - offset) / 255.0
    safe = np.where(scale > 0.0, scale, 1.0)
    codes = np.clip(np.rint((data - offset[None, :]) / safe[None, :]), 0, 255)
    return codes.astype(np.uint8), scale, offset


def quantize_queries(
    data: np.ndarray, scale: np.ndarray, offset: np.ndarray
) -> np.ndarray:
    """Encode query rows with a stored quantizer's scale/offset.

    Values outside the training range clip to the code range ends —
    the monotone ``min`` decomposition stays valid because clipping can
    only move the reconstructed value toward the data range, and the
    exact re-rank tail corrects any survivor it misjudged.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    safe = np.where(np.asarray(scale) > 0.0, scale, 1.0)
    codes = np.clip(np.rint((data - offset[None, :]) / safe[None, :]), 0, 255)
    return codes.astype(np.uint8)
