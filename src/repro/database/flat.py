"""Flat linear-scan retrieval: the Eq. (24) baseline.

With no indexing structure, every query compares against every shot in
the database and ranks all of them:

    T_e = N_T * T_m + O(N_T log N_T)
"""

from __future__ import annotations

import time

import numpy as np

from repro.database.index import ShotEntry, feature_similarity
from repro.database.query import QueryResult, QueryStats, RankedShot


class FlatIndex:
    """A plain list of shot entries, scanned in full per query."""

    def __init__(self, entries: list[ShotEntry] | None = None) -> None:
        self._entries: list[ShotEntry] = list(entries or [])

    def insert(self, entry: ShotEntry) -> None:
        """Append one shot."""
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[ShotEntry]:
        """All indexed shots."""
        return list(self._entries)

    def search(self, features: np.ndarray, k: int = 10) -> QueryResult:
        """Compare against everything, rank everything (Eq. 24)."""
        start = time.perf_counter()
        stats = QueryStats(visited_path=["flat_scan"])
        scored = []
        for entry in self._entries:
            scored.append(
                RankedShot(
                    entry=entry,
                    score=feature_similarity(features, entry.features),
                )
            )
            stats.comparisons += 1
        scored.sort(key=lambda hit: hit.score, reverse=True)
        stats.ranked = len(scored)
        stats.elapsed_seconds = time.perf_counter() - start
        return QueryResult(hits=scored[:k], stats=stats)
