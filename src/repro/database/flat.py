"""Flat linear-scan retrieval: the Eq. (24) baseline.

With no indexing structure, every query compares against every shot in
the database and ranks all of them:

    T_e = N_T * T_m + O(N_T log N_T)
"""

from __future__ import annotations

import time

import numpy as np

from repro.database.index import ShotEntry, feature_similarity_batch
from repro.database.query import QueryResult, QueryStats, RankedShot


class FlatIndex:
    """A plain list of shot entries, scanned in full per query.

    The scan itself is one batched kernel call over a cached stacked
    feature matrix (rebuilt lazily after inserts); every entry still
    counts as one logical comparison, exactly the Eq. (24) cost.
    """

    def __init__(self, entries: list[ShotEntry] | None = None) -> None:
        self._entries: list[ShotEntry] = list(entries or [])
        self._matrix: np.ndarray | None = None

    def insert(self, entry: ShotEntry) -> None:
        """Append one shot."""
        self._entries.append(entry)
        self._matrix = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[ShotEntry]:
        """All indexed shots."""
        return list(self._entries)

    def feature_matrix(self) -> np.ndarray:
        """Cached ``(N, 266)`` stack of every entry's features."""
        if self._matrix is None:
            self._matrix = (
                np.stack([entry.features for entry in self._entries])
                if self._entries
                else np.empty((0, 0))
            )
        return self._matrix

    def warm(self) -> None:
        """Pre-build the stacked matrix (snapshot construction)."""
        self.feature_matrix()

    def search(self, features: np.ndarray, k: int = 10) -> QueryResult:
        """Compare against everything, rank everything (Eq. 24)."""
        start = time.perf_counter()
        stats = QueryStats(visited_path=["flat_scan"])
        scored: list[RankedShot] = []
        if self._entries:
            scores = feature_similarity_batch(features, self.feature_matrix())
            scored = [
                RankedShot(entry=entry, score=float(score))
                for entry, score in zip(self._entries, scores)
            ]
            stats.comparisons += len(scored)
        scored.sort(key=lambda hit: hit.score, reverse=True)
        stats.ranked = len(scored)
        stats.elapsed_seconds = time.perf_counter() - start
        return QueryResult(hits=scored[:k], stats=stats)
