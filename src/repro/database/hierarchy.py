"""The medical concept hierarchy (Fig. 2) and its node model.

The database model derives its levels from the concept hierarchy of
video content: database root -> semantic cluster -> sub-level cluster ->
semantic scene -> shot.  Nodes are meaningful to humans (each names a
medical concept), which is what lets the same tree drive indexing,
browsing and access control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import DatabaseError
from repro.types import EventKind


class ConceptLevel(str, Enum):
    """The five database-model levels of Fig. 1/Fig. 2."""

    DATABASE = "database"
    CLUSTER = "cluster"
    SUBCLUSTER = "subcluster"
    SCENE = "scene"
    SHOT = "shot"

    @property
    def depth(self) -> int:
        """0 for the root, increasing downward."""
        order = (
            ConceptLevel.DATABASE,
            ConceptLevel.CLUSTER,
            ConceptLevel.SUBCLUSTER,
            ConceptLevel.SCENE,
            ConceptLevel.SHOT,
        )
        return order.index(self)


@dataclass
class ConceptNode:
    """One node of the concept hierarchy.

    Attributes
    ----------
    name:
        Human-readable concept name (unique among siblings).
    level:
        Hierarchy level of this node.
    children:
        Child nodes, in insertion order.
    parent:
        Back-pointer (None at the root).
    """

    name: str
    level: ConceptLevel
    children: list["ConceptNode"] = field(default_factory=list)
    parent: "ConceptNode | None" = field(default=None, repr=False)

    def add_child(self, name: str, level: ConceptLevel) -> "ConceptNode":
        """Create and attach a child node; returns it.

        Adding a child whose level is not strictly deeper, or whose name
        duplicates a sibling, raises :class:`DatabaseError`.
        """
        if level.depth <= self.level.depth:
            raise DatabaseError(
                f"child level {level.value} not below parent {self.level.value}"
            )
        if any(child.name == name for child in self.children):
            raise DatabaseError(f"duplicate child {name!r} under {self.name!r}")
        child = ConceptNode(name=name, level=level, parent=self)
        self.children.append(child)
        return child

    def find(self, name: str) -> "ConceptNode | None":
        """Depth-first search for a node by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def path(self) -> list[str]:
        """Names from the root to this node."""
        names: list[str] = []
        node: ConceptNode | None = self
        while node is not None:
            names.append(node.name)
            node = node.parent
        return list(reversed(names))

    def walk(self) -> list["ConceptNode"]:
        """This node and all descendants, depth-first."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes

    def leaves(self) -> list["ConceptNode"]:
        """All leaf nodes under (and including) this node."""
        if not self.children:
            return [self]
        return [leaf for child in self.children for leaf in child.leaves()]

    def is_ancestor_of(self, other: "ConceptNode") -> bool:
        """True when ``other`` lies strictly below this node."""
        node = other.parent
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False


#: Subject-area cluster for each corpus video (how a curator would shelve
#: them under Fig. 2's "Medical Education" branch).
VIDEO_SUBJECT_AREAS = {
    "face_repair": "surgery",
    "laparoscopy": "surgery",
    "laser_eye_surgery": "surgery",
    "nuclear_medicine": "imaging",
    "skin_examination": "dermatology",
}

#: The three scene-level concepts of Fig. 2.
SCENE_CONCEPTS = tuple(kind.value for kind in EventKind)


def build_medical_hierarchy() -> ConceptNode:
    """Build the Fig. 2 concept hierarchy for the medical domain.

    Returns the database root.  The "Medical Education" cluster carries
    the full subject-area / scene-concept structure; the sibling
    clusters exist as in the figure but stay empty in this corpus.
    """
    root = ConceptNode(name="medical_video_database", level=ConceptLevel.DATABASE)
    root.add_child("health_care", ConceptLevel.CLUSTER)
    education = root.add_child("medical_education", ConceptLevel.CLUSTER)
    root.add_child("medical_report", ConceptLevel.CLUSTER)

    for area in sorted(set(VIDEO_SUBJECT_AREAS.values())):
        subcluster = education.add_child(area, ConceptLevel.SUBCLUSTER)
        for concept in SCENE_CONCEPTS:
            subcluster.add_child(f"{area}/{concept}", ConceptLevel.SCENE)
    return root


def hierarchy_to_dict(node: ConceptNode) -> dict:
    """Serialise a concept (sub)tree to plain data.

    The format round-trips through :func:`hierarchy_from_dict`, letting
    deployments persist or hand-author custom taxonomies (the paper
    obtains its hierarchy "from domain experts or using WordNet").
    """
    return {
        "name": node.name,
        "level": node.level.value,
        "children": [hierarchy_to_dict(child) for child in node.children],
    }


def hierarchy_from_dict(data: dict, parent: ConceptNode | None = None) -> ConceptNode:
    """Rebuild a concept tree serialised by :func:`hierarchy_to_dict`.

    Raises :class:`DatabaseError` on missing keys, unknown levels, or
    level ordering violations (children must be strictly deeper).
    """
    try:
        name = data["name"]
        level = ConceptLevel(data["level"])
    except (KeyError, ValueError) as exc:
        raise DatabaseError(f"malformed hierarchy node: {exc}") from exc
    node = ConceptNode(name=name, level=level, parent=parent)
    if parent is not None and level.depth <= parent.level.depth:
        raise DatabaseError(
            f"node {name!r} at level {level.value} not below its parent"
        )
    for child_data in data.get("children", []):
        node.children.append(hierarchy_from_dict(child_data, parent=node))
    return node


def ensure_subject_area(root: ConceptNode, area: str) -> ConceptNode:
    """Get (creating on demand) the subject-area subcluster ``area``.

    A newly created area receives the full set of scene-level concept
    leaves, so every area supports every event category.
    """
    education = root.find("medical_education")
    if education is None:
        raise DatabaseError("hierarchy has no medical_education cluster")
    subcluster = next((c for c in education.children if c.name == area), None)
    if subcluster is None:
        subcluster = education.add_child(area, ConceptLevel.SUBCLUSTER)
        for concept in SCENE_CONCEPTS:
            subcluster.add_child(f"{area}/{concept}", ConceptLevel.SCENE)
    return subcluster


def scene_node_for(
    root: ConceptNode, video_title: str, event: EventKind
) -> ConceptNode:
    """Locate the scene-level node a mined scene maps to.

    Unknown video titles fall into the ``general`` subject area, which
    is created on demand.
    """
    area = VIDEO_SUBJECT_AREAS.get(video_title, "general")
    subcluster = ensure_subject_area(root, area)
    target = f"{area}/{event.value}"
    node = next((c for c in subcluster.children if c.name == target), None)
    if node is None:
        raise DatabaseError(f"missing scene concept {target!r}")
    return node
