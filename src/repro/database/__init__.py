"""Hierarchical video database: model, index, queries, access control."""

from repro.database.access import (
    AccessController,
    AuditRecord,
    FilterRule,
    Permission,
    User,
)
from repro.database.catalog import RegisteredVideo, VideoDatabase
from repro.database.events_query import EventHit, event_census, query_events
from repro.database.flat import FlatIndex
from repro.database.hierarchy import (
    ConceptLevel,
    ConceptNode,
    build_medical_hierarchy,
    ensure_subject_area,
    hierarchy_from_dict,
    hierarchy_to_dict,
    scene_node_for,
)
from repro.database.index import (
    IndexNode,
    LeafHashIndex,
    ShotEntry,
    build_node,
    combine_features,
    discriminating_dimensions,
    feature_similarity,
    feature_similarity_batch,
    leaf_signature,
)
from repro.database.scene_search import RankedScene, SceneEntry, SceneIndex
from repro.database.query import (
    QueryResult,
    QueryStats,
    RankedShot,
    search_hierarchical,
)

__all__ = [
    "AccessController",
    "AuditRecord",
    "ConceptLevel",
    "ConceptNode",
    "EventHit",
    "FilterRule",
    "FlatIndex",
    "IndexNode",
    "LeafHashIndex",
    "Permission",
    "QueryResult",
    "QueryStats",
    "RankedScene",
    "RankedShot",
    "SceneEntry",
    "SceneIndex",
    "RegisteredVideo",
    "ShotEntry",
    "User",
    "VideoDatabase",
    "build_medical_hierarchy",
    "build_node",
    "ensure_subject_area",
    "event_census",
    "hierarchy_from_dict",
    "hierarchy_to_dict",
    "query_events",
    "combine_features",
    "discriminating_dimensions",
    "feature_similarity",
    "feature_similarity_batch",
    "leaf_signature",
    "scene_node_for",
    "search_hierarchical",
]
