"""Query processing over the hierarchical index (Sec. 6.2).

A query descends the tree — root -> cluster -> subcluster -> scene
leaf — comparing only against each level's centres, then probes the
leaf's hash bucket and ranks the candidates.  The returned
:class:`QueryStats` counts the similarity computations so the Eq. (25)
cost model can be verified against the implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.database.index import (
    INDEX_STATS,
    IndexNode,
    ShotEntry,
    feature_similarity_batch,
)
from repro.errors import DatabaseError


@dataclass(frozen=True)
class RankedShot:
    """One search hit."""

    entry: ShotEntry
    score: float


@dataclass
class QueryStats:
    """Work accounting for one query.

    Attributes
    ----------
    comparisons:
        Exact feature-similarity evaluations performed.
    ranked:
        Candidates that entered the ranking step.
    visited_path:
        Names of the index nodes the query descended through.
    elapsed_seconds:
        Duration of the search, measured with ``time.perf_counter()``.
        The clock is monotonic and sub-millisecond accurate, so serving
        latency histograms built from it can never go negative when the
        system wall clock steps (NTP adjustments, DST).
    approx_comparisons:
        Quantized-code (uint8) evaluations performed by the ANN tier
        (0 whenever ``nprobe`` is off or the scan could not prune).
    reranked:
        Leaf candidates the ANN tier's exact re-rank tail scored.
    ann_degraded:
        True when at least one leaf's ANN state failed to load and the
        query fell back to that leaf's exact scan.
    """

    comparisons: int = 0
    ranked: int = 0
    visited_path: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    approx_comparisons: int = 0
    reranked: int = 0
    ann_degraded: bool = False


@dataclass
class QueryResult:
    """Hits plus stats."""

    hits: list[RankedShot]
    stats: QueryStats

    @property
    def top(self) -> RankedShot:
        """Best hit; raises when the search came back empty."""
        if not self.hits:
            raise DatabaseError("query returned no hits")
        return self.hits[0]


def _child_scores(
    node: IndexNode, features: np.ndarray, stats: QueryStats
) -> list[tuple[float, IndexNode]]:
    """Best-centre score of every populated child.

    The node's children stack their centres per level
    (:meth:`~repro.database.index.IndexNode.center_block`), so one
    batched kernel call scores them all; ``stats.comparisons`` still
    counts every logical centre evaluation.
    """
    block = node.center_block()
    if block is None:
        return []
    scores = feature_similarity_batch(features, block.centers)
    stats.comparisons += int(scores.shape[0])
    return [
        (float(scores[block.offsets[c] : block.offsets[c + 1]].max()), child)
        for c, child in enumerate(block.children)
    ]


def _rank_leaf_exact(
    leaf: IndexNode,
    features: np.ndarray,
    scored: list[RankedShot],
    seen: set[tuple[str, int]],
    stats: QueryStats,
) -> None:
    """Exact leaf ranking: probe the bucket, dedup, batch-score."""
    # One kernel call ranks the whole candidate block of this leaf
    # (in its discriminating sub-space); each scored entry still
    # counts as one logical comparison.
    entries, matrix = leaf.leaf.probe_block(features)  # type: ignore[union-attr]
    keep = [i for i, entry in enumerate(entries) if entry.key not in seen]
    if not keep:
        return
    seen.update(entries[i].key for i in keep)
    block = matrix if len(keep) == len(entries) else matrix[keep]
    scores = feature_similarity_batch(features, block, dims=leaf.dims)
    scored.extend(
        RankedShot(entry=entries[i], score=float(score))
        for i, score in zip(keep, scores)
    )
    stats.comparisons += len(keep)


def _rank_leaf_ann(
    leaf: IndexNode,
    ann,
    features: np.ndarray,
    nprobe: int,
    rerank_k: int | None,
    scored: list[RankedShot],
    seen: set[tuple[str, int]],
    stats: QueryStats,
) -> None:
    """ANN leaf ranking: IVF-pruned candidates, exact re-rank tail.

    Survivor rows arrive in ascending row order — the same sequence the
    exact probe visits — so dedup order, exact scores (computed by the
    same kernel over the same stored float64 rows) and the global
    stable sort reproduce the exact path bit-identically whenever no
    cell or survivor was pruned (``nprobe >= cells``, unbounded tail).
    """
    rows, approx_evals = ann.search_rows(
        features, nprobe=nprobe, rerank_k=rerank_k, mode="auto"
    )
    stats.approx_comparisons += approx_evals
    if rows.size == 0:
        return
    entries = leaf.leaf.all_entries()  # type: ignore[union-attr]
    _all_entries, matrix = leaf.leaf.fallback_block()  # type: ignore[union-attr]
    kept = [int(row) for row in rows if entries[int(row)].key not in seen]
    if not kept:
        return
    seen.update(entries[row].key for row in kept)
    scores = feature_similarity_batch(features, matrix[kept], dims=leaf.dims)
    scored.extend(
        RankedShot(entry=entries[row], score=float(score))
        for row, score in zip(kept, scores)
    )
    stats.comparisons += len(kept)
    stats.reranked += len(kept)


def search_hierarchical(
    root: IndexNode,
    features: np.ndarray,
    k: int = 10,
    allowed_leaves: set[str] | None = None,
    beam: int = 2,
    nprobe: int | None = None,
    rerank_k: int | None = None,
) -> QueryResult:
    """Descend the index and rank shots in the most relevant leaves.

    Parameters
    ----------
    root:
        Index root node.
    features:
        266-d query feature vector.
    k:
        Number of hits to return.
    allowed_leaves:
        When given, only these leaf names may be entered (the access
        controller passes the caller's permitted concepts here).  If the
        descent reaches no permitted leaf, the most similar permitted
        leaf is used instead; with none permitted, the search returns
        empty.
    beam:
        Descent width: the top ``beam`` children are followed at each
        level.  Width 1 is the cheapest greedy descent; the default of
        2 recovers almost all the exhaustive scan's accuracy on
        visually overlapping subject areas for a small extra cost.
    nprobe:
        None (the default) keeps every leaf scan exact.  An integer
        enables the ANN tier: only candidates in the query's best
        ``nprobe`` coarse cells are considered per leaf, and survivors
        are re-ranked with the exact kernel.  ``nprobe >= cells``
        prunes nothing, so (with ``rerank_k=None``) results are
        bit-identical to the exact path.  A leaf whose ANN state cannot
        load falls back to its exact scan and flags
        ``stats.ann_degraded``.
    rerank_k:
        Length of the exact re-rank tail per leaf.  None re-ranks every
        surviving candidate exactly — which makes the final ranking the
        exact ranking restricted to the probed candidate set, so recall
        grows monotonically in ``nprobe``.
    """
    if beam < 1:
        raise DatabaseError("beam must be >= 1")
    if nprobe is not None and nprobe < 1:
        raise DatabaseError("nprobe must be >= 1 (or None for exact)")
    if rerank_k is not None and rerank_k < 1:
        raise DatabaseError("rerank_k must be >= 1 (or None for all)")
    start = time.perf_counter()
    INDEX_STATS.descents += 1
    stats = QueryStats()
    leaves = descend_to_leaves(root, features, stats, allowed_leaves, beam)
    if not leaves:
        if allowed_leaves is not None:
            stats.elapsed_seconds = time.perf_counter() - start
            return QueryResult(hits=[], stats=stats)
        raise DatabaseError("descent reached no populated leaf")

    scored: list[RankedShot] = []
    seen: set[tuple[str, int]] = set()
    for leaf in leaves:
        ann = None
        if nprobe is not None:
            from repro.ann.index import resolve_ann

            ann, degraded = resolve_ann(leaf)
            if degraded:
                stats.ann_degraded = True
        if ann is None:
            _rank_leaf_exact(leaf, features, scored, seen, stats)
        else:
            _rank_leaf_ann(
                leaf, ann, features, nprobe, rerank_k, scored, seen, stats
            )
    scored.sort(key=lambda hit: hit.score, reverse=True)
    stats.ranked = len(scored)
    stats.elapsed_seconds = time.perf_counter() - start
    return QueryResult(hits=scored[:k], stats=stats)


def descend_to_leaves(
    root: IndexNode,
    features: np.ndarray,
    stats: QueryStats,
    allowed_leaves: set[str] | None = None,
    beam: int = 2,
) -> list[IndexNode]:
    """The Eq. (25) beam descent, separated from leaf ranking.

    Appends every visited node to ``stats.visited_path`` and counts the
    centre comparisons into ``stats.comparisons``, exactly as
    :func:`search_hierarchical` does — the scatter-gather coordinator
    runs this same descent over its routing-metadata tree so a sharded
    query visits (and pays for) the identical node sequence.  Returns
    the reached leaves in visit order, or an empty list when an access
    scope permits none of them.
    """
    if beam < 1:
        raise DatabaseError("beam must be >= 1")
    stats.visited_path.append(root.name)
    frontier: list[IndexNode] = [root]
    leaves: list[IndexNode] = []
    while frontier:
        next_frontier: list[tuple[float, IndexNode]] = []
        for node in frontier:
            if node.is_leaf:
                leaves.append(node)
                continue
            next_frontier.extend(_child_scores(node, features, stats))
        if not next_frontier:
            break
        next_frontier.sort(key=lambda item: item[0], reverse=True)
        frontier = [child for _, child in next_frontier[:beam]]
        for node in frontier:
            stats.visited_path.append(node.name)

    if allowed_leaves is not None:
        leaves = [leaf for leaf in leaves if leaf.name in allowed_leaves]
        if not leaves:
            fallback = _best_permitted_leaf(root, features, allowed_leaves, stats)
            if fallback is None:
                return []
            leaves = [fallback]
            stats.visited_path.append(fallback.name)
    return leaves


def _best_permitted_leaf(
    root: IndexNode,
    features: np.ndarray,
    allowed: set[str],
    stats: QueryStats,
) -> IndexNode | None:
    """Fallback: the permitted leaf whose centres best match the query.

    Permitted leaf centres are stacked and scored in one batched kernel
    call; the first-best tie-break matches the scalar scan.
    """
    leaves = [
        leaf
        for leaf in _iter_leaves(root)
        if leaf.name in allowed and leaf.centers is not None
    ]
    if not leaves:
        return None
    centers = np.concatenate([leaf.centers for leaf in leaves])
    counts = [leaf.centers.shape[0] for leaf in leaves]
    offsets = np.zeros(len(leaves) + 1, dtype=np.intp)
    np.cumsum(counts, out=offsets[1:])
    scores = feature_similarity_batch(features, centers)
    stats.comparisons += int(scores.shape[0])
    best = int(np.argmax(scores))
    return leaves[int(np.searchsorted(offsets, best, side="right") - 1)]


def _iter_leaves(node: IndexNode):
    if node.is_leaf:
        yield node
        return
    for child in node.children:
        yield from _iter_leaves(child)
