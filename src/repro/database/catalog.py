"""The video database: registration, indexing, search, persistence.

:class:`VideoDatabase` ties the pieces together.  Mined videos are
registered scene by scene: each scene's shots land in the hash index of
the scene-level concept node its mined event maps to (Fig. 2), the
index tree mirrors the concept hierarchy, and searches run through the
access controller.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.pipeline import ClassMinerResult
from repro.database.access import AccessController, User
from repro.database.flat import FlatIndex
from repro.database.hierarchy import (
    ConceptLevel,
    ConceptNode,
    build_medical_hierarchy,
    ensure_subject_area,
    scene_node_for,
)
from repro.database.index import (
    IndexNode,
    ShotEntry,
    build_node,
    combine_features,
)
from repro.database.query import QueryResult, search_hierarchical
from repro.errors import DatabaseError
from repro.types import EventKind


@dataclass
class RegisteredVideo:
    """Bookkeeping for one registered video.

    ``degraded_stages`` carries the mining pipeline's degradation flags
    (see :attr:`~repro.core.pipeline.ClassMinerResult.degraded_stages`)
    through persistence, so health checks and query results can report
    which corpus entries were mined from weakened evidence.
    """

    title: str
    shot_count: int
    scene_count: int
    events: dict[int, str] = field(default_factory=dict)
    degraded_stages: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when any mining stage fell back for this video."""
        return bool(self.degraded_stages)


class VideoDatabase:
    """Hierarchical, access-controlled shot database."""

    def __init__(self, controller: AccessController | None = None) -> None:
        self._hierarchy = build_medical_hierarchy()
        self._controller = (
            controller if controller is not None else AccessController(self._hierarchy)
        )
        self._leaf_entries: dict[str, list[ShotEntry]] = {}
        self._videos: dict[str, RegisteredVideo] = {}
        self._index_root: IndexNode | None = None
        self._flat = FlatIndex()

    @property
    def hierarchy(self) -> ConceptNode:
        """The concept hierarchy root."""
        return self._hierarchy

    @property
    def controller(self) -> AccessController:
        """The access controller guarding searches."""
        return self._controller

    @property
    def videos(self) -> dict[str, RegisteredVideo]:
        """Registered videos by title."""
        return dict(self._videos)

    @property
    def shot_count(self) -> int:
        """Total indexed shots."""
        return len(self._flat)

    def register(self, result: ClassMinerResult) -> RegisteredVideo:
        """Register one mined video.

        Every shot of every kept scene is filed under the scene-level
        concept of the scene's mined event.  Shots from eliminated
        scenes are filed under the ``unknown`` concept so nothing is
        lost.  Re-registering a title raises :class:`DatabaseError`.
        """
        title = result.title
        if title in self._videos:
            raise DatabaseError(f"video {title!r} already registered")
        events = result.scene_events()

        record = RegisteredVideo(
            title=title,
            shot_count=result.structure.shot_count,
            scene_count=result.structure.scene_count,
            degraded_stages=tuple(result.degraded_stages),
        )
        assigned: set[int] = set()
        for scene in result.structure.scenes:
            event = events.get(scene.scene_id, EventKind.UNKNOWN)
            record.events[scene.scene_id] = event.value
            node = scene_node_for(self._hierarchy, title, event)
            for shot in scene.shots:
                entry = ShotEntry(
                    video_title=title,
                    shot_id=shot.shot_id,
                    scene_id=scene.scene_id,
                    features=combine_features(shot.histogram, shot.texture),
                )
                self._leaf_entries.setdefault(node.name, []).append(entry)
                self._flat.insert(entry)
                assigned.add(shot.shot_id)
        # Shots whose scene was eliminated: file under 'unknown'.
        node = scene_node_for(self._hierarchy, title, EventKind.UNKNOWN)
        for shot in result.structure.shots:
            if shot.shot_id in assigned:
                continue
            entry = ShotEntry(
                video_title=title,
                shot_id=shot.shot_id,
                scene_id=-1,
                features=combine_features(shot.histogram, shot.texture),
            )
            self._leaf_entries.setdefault(node.name, []).append(entry)
            self._flat.insert(entry)

        self._videos[title] = record
        self._index_root = None  # force rebuild
        return record

    def register_bulk(
        self,
        results: "Iterable[ClassMinerResult]",
        skip_registered: bool = False,
    ) -> list[RegisteredVideo]:
        """Register many mined videos (the ingest bulk path).

        Accepts any iterable — e.g. a generator lazily deserialising
        artifacts from an :class:`~repro.ingest.artifacts.ArtifactStore`
        — so only one result needs to be in memory at a time.  With
        ``skip_registered`` an already-present title is skipped instead
        of raising; the returned records cover only the videos added by
        this call.
        """
        records: list[RegisteredVideo] = []
        for result in results:
            if skip_registered and result.title in self._videos:
                continue
            records.append(self.register(result))
        return records

    def register_entries(
        self,
        title: str,
        scenes: "Iterable[tuple[int, EventKind, Iterable[np.ndarray]]]",
        degraded_stages: tuple[str, ...] = (),
    ) -> RegisteredVideo:
        """Register pre-featurised shots directly, bypassing the miner.

        ``scenes`` yields ``(scene_id, event, feature_vectors)``; shots
        receive sequential ids in iteration order and are filed exactly
        as :meth:`register` files mined scenes.  Used by synthetic
        corpus builders (storage smoke and benchmarks) and migration
        tooling; re-registering a title raises :class:`DatabaseError`.
        """
        if title in self._videos:
            raise DatabaseError(f"video {title!r} already registered")
        record = RegisteredVideo(
            title=title,
            shot_count=0,
            scene_count=0,
            degraded_stages=tuple(degraded_stages),
        )
        shot_id = 0
        for scene_id, event, feature_vectors in scenes:
            record.scene_count += 1
            record.events[int(scene_id)] = event.value
            node = scene_node_for(self._hierarchy, title, event)
            for features in feature_vectors:
                entry = ShotEntry(
                    video_title=title,
                    shot_id=shot_id,
                    scene_id=int(scene_id),
                    features=np.asarray(features, dtype=np.float64),
                )
                self._leaf_entries.setdefault(node.name, []).append(entry)
                self._flat.insert(entry)
                shot_id += 1
        record.shot_count = shot_id
        self._videos[title] = record
        self._index_root = None
        return record

    def unregister(self, title: str) -> int:
        """Remove a video and all its shots; returns entries removed.

        Raises :class:`DatabaseError` for unknown titles.  The
        hierarchical index is invalidated and rebuilt on next use.
        """
        if title not in self._videos:
            raise DatabaseError(f"video {title!r} is not registered")
        removed = 0
        for leaf, entries in list(self._leaf_entries.items()):
            kept = [entry for entry in entries if entry.video_title != title]
            removed += len(entries) - len(kept)
            if kept:
                self._leaf_entries[leaf] = kept
            else:
                del self._leaf_entries[leaf]
        remaining = [
            entry for entry in self._flat.entries if entry.video_title != title
        ]
        self._flat = FlatIndex(remaining)
        del self._videos[title]
        self._index_root = None
        return removed

    def describe(self) -> dict[str, int]:
        """Shot counts per scene-concept leaf (catalog statistics)."""
        return {
            leaf: len(entries)
            for leaf, entries in sorted(self._leaf_entries.items())
        }

    def leaf_entries(self) -> dict[str, list[ShotEntry]]:
        """Per-leaf shot entries, in leaf creation order (copied lists).

        The ordering is load-bearing: the durable storage layer persists
        leaves in this order so a lazily opened catalog rebuilds its
        index tree and hash buckets bit-identically.
        """
        return {
            leaf: list(entries) for leaf, entries in self._leaf_entries.items()
        }

    def clone_subset(self, titles: "Iterable[str]") -> "VideoDatabase":
        """A new in-RAM database holding only the given videos.

        The shard builder's partitioning primitive.  Orderings are
        preserved, not recomputed: each leaf keeps its surviving entries
        in the original creation order and the flat index keeps the
        original registration (global-ordinal) order, so within-shard
        relative order always equals the unsharded relative order — the
        invariant the scatter-gather merge relies on for bit-identical
        tie-breaks.  Unknown titles raise :class:`DatabaseError`;
        registration records (events, degradation flags) are copied.
        """
        wanted = set(titles)
        missing = wanted - set(self._videos)
        if missing:
            raise DatabaseError(
                f"cannot clone unregistered videos: {sorted(missing)}"
            )
        clone = VideoDatabase()
        for leaf, entries in self._leaf_entries.items():
            kept = [entry for entry in entries if entry.video_title in wanted]
            if not kept:
                continue
            if "/" in leaf:
                ensure_subject_area(clone._hierarchy, leaf.split("/", 1)[0])
            clone._leaf_entries[leaf] = kept
        clone._flat = FlatIndex(
            [
                entry
                for entry in self._flat.entries
                if entry.video_title in wanted
            ]
        )
        for title in self._videos:
            if title not in wanted:
                continue
            record = self._videos[title]
            clone._videos[title] = RegisteredVideo(
                title=record.title,
                shot_count=record.shot_count,
                scene_count=record.scene_count,
                events=dict(record.events),
                degraded_stages=record.degraded_stages,
            )
        return clone

    def build_index(self) -> IndexNode:
        """(Re)build the hierarchical index mirroring the concept tree."""
        if not self._videos:
            raise DatabaseError("no videos registered")
        root = self._build_subtree(self._hierarchy)
        if root is None:
            raise DatabaseError("index is empty after build")
        self._index_root = root
        return root

    def _build_subtree(self, concept: ConceptNode) -> IndexNode | None:
        if concept.level is ConceptLevel.SCENE or not concept.children:
            entries = self._leaf_entries.get(concept.name, [])
            if not entries:
                return None
            return build_node(concept.name, concept.level.depth, entries=entries)
        children = [
            child_node
            for child in concept.children
            if (child_node := self._build_subtree(child)) is not None
        ]
        if not children:
            return None
        return build_node(concept.name, concept.level.depth, children=children)

    @property
    def index_root(self) -> IndexNode:
        """The hierarchical index (built on demand)."""
        if self._index_root is None:
            self.build_index()
        assert self._index_root is not None
        return self._index_root

    @property
    def flat_index(self) -> FlatIndex:
        """The Eq. (24) linear-scan baseline over the same entries."""
        return self._flat

    def search(
        self,
        features: np.ndarray,
        user: User | None = None,
        k: int = 10,
    ) -> QueryResult:
        """Hierarchical search, access-filtered when a user is given."""
        allowed = None
        if user is not None:
            allowed = self._controller.permitted_leaves(user)
        return search_hierarchical(self.index_root, features, k=k, allowed_leaves=allowed)

    def search_flat(self, features: np.ndarray, k: int = 10) -> QueryResult:
        """Baseline linear scan (no hierarchy, no access filter)."""
        return self._flat.search(features, k=k)

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise the catalog (entries + registrations) to JSON.

        The write is atomic: the payload lands in a temp file in the
        target directory and is renamed into place, so a crash (or a
        serialisation error) mid-save can never leave a truncated
        catalog where a valid one stood.
        """
        payload = {
            "videos": {
                title: {
                    "shot_count": video.shot_count,
                    "scene_count": video.scene_count,
                    "events": video.events,
                    "degraded_stages": list(video.degraded_stages),
                }
                for title, video in self._videos.items()
            },
            "leaves": {
                leaf: [
                    {
                        "video_title": entry.video_title,
                        "shot_id": entry.shot_id,
                        "scene_id": entry.scene_id,
                        "features": entry.features.tolist(),
                    }
                    for entry in entries
                ]
                for leaf, entries in self._leaf_entries.items()
            },
        }
        target = Path(path)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{target.name}.", suffix=".tmp", dir=target.parent or "."
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload))
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: str | Path) -> "VideoDatabase":
        """Restore a catalog written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise DatabaseError(f"cannot load database from {path}: {exc}") from exc
        db = cls()
        for leaf, entries in payload.get("leaves", {}).items():
            if "/" in leaf:
                # Recreate on-demand subject areas ('general/...').
                ensure_subject_area(db._hierarchy, leaf.split("/", 1)[0])
            for raw in entries:
                entry = ShotEntry(
                    video_title=raw["video_title"],
                    shot_id=int(raw["shot_id"]),
                    scene_id=int(raw["scene_id"]),
                    features=np.asarray(raw["features"], dtype=np.float64),
                )
                db._leaf_entries.setdefault(leaf, []).append(entry)
                db._flat.insert(entry)
        for title, raw in payload.get("videos", {}).items():
            db._videos[title] = RegisteredVideo(
                title=title,
                shot_count=int(raw["shot_count"]),
                scene_count=int(raw["scene_count"]),
                events={int(k): v for k, v in raw.get("events", {}).items()},
                degraded_stages=tuple(raw.get("degraded_stages", ())),
            )
        return db
