"""Hierarchical access control (Sec. 2, third requirement).

The indexing hierarchy doubles as the protection hierarchy: filtering
rules attach to semantic concepts and apply to the whole subtree below
them, giving "a wide range of protection granularity levels".  Access
decisions combine:

1. **explicit rules** — DENY beats ALLOW, deeper (more specific) rules
   beat shallower ones;
2. **multilevel security** — every concept carries a sensitivity level
   (inherited downward as a maximum) and the user needs clearance at or
   above it.

All decisions are appended to an audit log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.database.hierarchy import ConceptNode
from repro.errors import AccessDeniedError, DatabaseError
from repro.types import EventKind


class Permission(str, Enum):
    """Explicit rule effect."""

    ALLOW = "allow"
    DENY = "deny"


#: Default sensitivity of the scene-level concepts: graphic clinical
#: footage is the most restricted, patient dialogs carry privacy
#: concerns, presentations are public teaching material.
DEFAULT_SENSITIVITY = {
    EventKind.PRESENTATION.value: 0,
    EventKind.UNKNOWN.value: 1,
    EventKind.DIALOG.value: 2,
    EventKind.CLINICAL_OPERATION.value: 3,
}


@dataclass(frozen=True)
class FilterRule:
    """One filtering rule attached to a concept."""

    concept: str
    permission: Permission
    reason: str = ""


@dataclass(frozen=True)
class User:
    """A database principal.

    Attributes
    ----------
    name:
        Login name.
    clearance:
        Multilevel-security clearance (0 = public only).
    rules:
        Per-user rule overrides (e.g. a researcher DENYed dialogs for a
        privacy study, or ALLOWed one clinical concept).
    """

    name: str
    clearance: int = 0
    rules: tuple[FilterRule, ...] = ()


@dataclass(frozen=True)
class AuditRecord:
    """One access decision."""

    user: str
    concept: str
    granted: bool
    reason: str


class AccessController:
    """Evaluates access to concept-hierarchy nodes."""

    def __init__(
        self,
        root: ConceptNode,
        sensitivity: dict[str, int] | None = None,
        global_rules: list[FilterRule] | None = None,
    ) -> None:
        self._root = root
        self._sensitivity = dict(DEFAULT_SENSITIVITY)
        if sensitivity:
            self._sensitivity.update(sensitivity)
        self._global_rules = list(global_rules or [])
        self._audit: list[AuditRecord] = []

    @property
    def audit_log(self) -> list[AuditRecord]:
        """All recorded decisions, oldest first."""
        return list(self._audit)

    def add_rule(self, rule: FilterRule) -> None:
        """Attach a database-wide filtering rule."""
        self._global_rules.append(rule)

    def _node(self, concept: str) -> ConceptNode:
        node = self._root.find(concept)
        if node is None:
            raise DatabaseError(f"unknown concept {concept!r}")
        return node

    def _effective_sensitivity(self, node: ConceptNode) -> int:
        """Maximum sensitivity along the path (inherited downward).

        A node's own sensitivity comes from the most specific matching
        key: the exact node name, else the suffix after ``/`` (scene
        concepts are named ``area/event``).
        """
        level = 0
        current: ConceptNode | None = node
        while current is not None:
            key = current.name
            if key in self._sensitivity:
                level = max(level, self._sensitivity[key])
            elif "/" in key and key.split("/", 1)[1] in self._sensitivity:
                level = max(level, self._sensitivity[key.split("/", 1)[1]])
            current = current.parent
        return level

    def _matching_rules(self, user: User, node: ConceptNode) -> list[tuple[int, FilterRule]]:
        """Rules applying to the node or any ancestor, with their depth."""
        path = node.path()
        matches: list[tuple[int, FilterRule]] = []
        for rule in list(self._global_rules) + list(user.rules):
            for depth, name in enumerate(path):
                if rule.concept == name or (
                    "/" in name and rule.concept == name.split("/", 1)[1]
                ):
                    matches.append((depth, rule))
        return matches

    def check(self, user: User, concept: str) -> bool:
        """Decide (and audit) whether ``user`` may access ``concept``."""
        node = self._node(concept)
        matches = self._matching_rules(user, node)
        decision: bool
        reason: str
        if matches:
            deepest = max(depth for depth, _ in matches)
            at_depth = [rule for depth, rule in matches if depth == deepest]
            if any(rule.permission is Permission.DENY for rule in at_depth):
                decision, reason = False, "explicit deny rule"
            else:
                decision, reason = True, "explicit allow rule"
        else:
            required = self._effective_sensitivity(node)
            if user.clearance >= required:
                decision, reason = True, f"clearance {user.clearance} >= {required}"
            else:
                decision, reason = False, f"clearance {user.clearance} < {required}"
        self._audit.append(
            AuditRecord(user=user.name, concept=concept, granted=decision, reason=reason)
        )
        return decision

    def require(self, user: User, concept: str) -> None:
        """Like :meth:`check` but raises :class:`AccessDeniedError`."""
        if not self.check(user, concept):
            raise AccessDeniedError(f"{user.name} may not access {concept}")

    def permitted_leaves(self, user: User) -> set[str]:
        """Names of all scene-level leaf concepts the user may enter."""
        return {
            leaf.name
            for leaf in self._root.leaves()
            if self.check(user, leaf.name)
        }
