"""Scene-level retrieval: query at the granularity of Fig. 1's scene nodes.

Shot-level search answers "find this picture"; scene-level search
answers "find passages that look like this one".  Each registered
scene is summarised by a centroid feature vector (the mean of its
member shots' combined features — the natural analogue of the paper's
representative-group centroid in feature space) and queries rank scenes
by Eq. (1)-style similarity to that centroid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import ClassMinerResult
from repro.database.index import (
    combine_features,
    feature_similarity_batch,
)
from repro.errors import DatabaseError
from repro.types import EventKind


@dataclass(frozen=True)
class SceneEntry:
    """One indexed scene.

    Attributes
    ----------
    video_title / scene_id:
        Identity of the scene.
    event:
        Mined event kind.
    shot_count:
        Member shots.
    centroid:
        Mean combined feature vector of the member shots.
    """

    video_title: str
    scene_id: int
    event: EventKind
    shot_count: int
    centroid: np.ndarray = field(repr=False, hash=False, compare=False)


@dataclass(frozen=True)
class RankedScene:
    """One scene-search hit."""

    entry: SceneEntry
    score: float


class SceneIndex:
    """Flat index of scene centroids with optional event filtering.

    Centroids are stacked into one cached matrix (rebuilt lazily after
    inserts) so a search is one batched kernel call.
    """

    def __init__(self) -> None:
        self._entries: list[SceneEntry] = []
        self._matrix: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[SceneEntry]:
        """All indexed scenes."""
        return list(self._entries)

    def insert(self, entry: SceneEntry) -> None:
        """Add one pre-built scene entry (the snapshot-rebuild path)."""
        self._entries.append(entry)
        self._matrix = None

    def centroid_matrix(self) -> np.ndarray:
        """Cached ``(N, 266)`` stack of every entry's centroid."""
        if self._matrix is None:
            self._matrix = (
                np.stack([entry.centroid for entry in self._entries])
                if self._entries
                else np.empty((0, 0))
            )
        return self._matrix

    def warm(self) -> None:
        """Pre-build the stacked matrix (snapshot construction)."""
        self.centroid_matrix()

    def register(self, result: ClassMinerResult) -> int:
        """Index every kept scene of a mined video; returns scenes added."""
        events = result.scene_events()
        added = 0
        for scene in result.structure.scenes:
            features = np.stack(
                [
                    combine_features(shot.histogram, shot.texture)
                    for shot in scene.shots
                ]
            )
            self.insert(
                SceneEntry(
                    video_title=result.title,
                    scene_id=scene.scene_id,
                    event=events.get(scene.scene_id, EventKind.UNKNOWN),
                    shot_count=scene.shot_count,
                    centroid=features.mean(axis=0),
                )
            )
            added += 1
        return added

    def search(
        self,
        features: np.ndarray,
        k: int = 5,
        event: EventKind | None = None,
    ) -> list[RankedScene]:
        """Rank scenes by centroid similarity, optionally within an event.

        Raises :class:`DatabaseError` when the index is empty.
        """
        if not self._entries:
            raise DatabaseError("scene index is empty")
        matrix = self.centroid_matrix()
        if event is not None:
            keep = [i for i, entry in enumerate(self._entries) if entry.event is event]
            if not keep:
                return []
            candidates = [self._entries[i] for i in keep]
            matrix = matrix[keep]
        else:
            candidates = self._entries
        scores = feature_similarity_batch(features, matrix)
        hits = [
            RankedScene(entry=entry, score=float(score))
            for entry, score in zip(candidates, scores)
        ]
        hits.sort(key=lambda hit: hit.score, reverse=True)
        return hits[:k]

    def similar_scenes(
        self, video_title: str, scene_id: int, k: int = 5
    ) -> list[RankedScene]:
        """Scenes most similar to an indexed scene (itself excluded)."""
        query = next(
            (
                entry
                for entry in self._entries
                if entry.video_title == video_title and entry.scene_id == scene_id
            ),
            None,
        )
        if query is None:
            raise DatabaseError(f"scene {video_title}/{scene_id} is not indexed")
        hits = self.search(query.centroid, k=k + 1)
        return [
            hit
            for hit in hits
            if not (
                hit.entry.video_title == video_title
                and hit.entry.scene_id == scene_id
            )
        ][:k]
