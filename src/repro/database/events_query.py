"""Event-based queries: "Show me all patient-doctor dialogs" (Sec. 4).

The paper motivates event mining with exactly this query.  Once videos
are registered, their scenes carry mined event labels, so answering it
is a walk over the catalog filtered by event kind — with access control
applied at the scene-concept level, the same way search is guarded.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.database.access import AccessController, User
from repro.database.hierarchy import VIDEO_SUBJECT_AREAS
from repro.errors import DatabaseError
from repro.types import EventKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database.catalog import RegisteredVideo, VideoDatabase


@dataclass(frozen=True)
class EventHit:
    """One scene matching an event query.

    Attributes
    ----------
    video_title / scene_id:
        Where the scene lives.
    event:
        The mined event kind (always the queried kind).
    concept:
        The scene-level concept node the scene is filed under.
    """

    video_title: str
    scene_id: int
    event: EventKind
    concept: str


def event_concept(video_title: str, event: EventKind) -> str:
    """Scene-level concept name a video's event scenes are filed under."""
    area = VIDEO_SUBJECT_AREAS.get(video_title, "general")
    return f"{area}/{event.value}"


def query_event_records(
    records: "Mapping[str, RegisteredVideo]",
    controller: AccessController,
    kind: EventKind,
    user: User | None = None,
    video_title: str | None = None,
) -> list[EventHit]:
    """Event query over registration records (the snapshot-friendly core).

    :func:`query_events` delegates here; the serving layer's immutable
    snapshots call this directly so event queries never touch the live,
    mutable :class:`~repro.database.catalog.VideoDatabase`.
    """
    videos = dict(records)
    if video_title is not None:
        if video_title not in videos:
            raise DatabaseError(f"video {video_title!r} is not registered")
        videos = {video_title: videos[video_title]}

    hits: list[EventHit] = []
    for title, record in sorted(videos.items()):
        concept = event_concept(title, kind)
        if user is not None and not controller.check(user, concept):
            continue
        for scene_id, event_value in sorted(record.events.items()):
            if event_value != kind.value:
                continue
            hits.append(
                EventHit(
                    video_title=title,
                    scene_id=scene_id,
                    event=kind,
                    concept=concept,
                )
            )
    return hits


def query_events(
    database: "VideoDatabase",
    kind: EventKind,
    user: User | None = None,
    video_title: str | None = None,
) -> list[EventHit]:
    """All scenes of the given event kind, access-filtered.

    Parameters
    ----------
    database:
        The catalog to query.
    kind:
        Which event to retrieve (e.g. :attr:`EventKind.DIALOG`).
    user:
        When given, scenes whose concept the user may not access are
        silently filtered (and the denial is audited).
    video_title:
        Restrict to one registered video.

    Raises
    ------
    DatabaseError
        If ``video_title`` names an unregistered video.
    """
    return query_event_records(
        database.videos,
        database.controller,
        kind,
        user=user,
        video_title=video_title,
    )


def event_census(
    database: "VideoDatabase", user: User | None = None
) -> dict[EventKind, int]:
    """Scene counts per event kind across the (permitted) catalog."""
    return {
        kind: len(query_events(database, kind, user=user))
        for kind in EventKind
    }
