"""Cluster-based hierarchical index (Sec. 2 and Sec. 6.2).

Two mechanisms, exactly as the paper prescribes:

* **Leaf nodes** (scene-level concepts) index their shots with a *hash
  table*: a coarse signature of the feature vector keys buckets, so a
  query probes one bucket (plus its neighbours) instead of every shot.
* **Non-leaf nodes** keep *multiple centres* — a single Gaussian cannot
  model a high-level concept made of several visual components — and a
  query descends through whichever child owns the best-matching centre.

Every node also records the *discriminating dimensions* of its feature
population (dimension reduction), so similarity inside a node is
computed on a sub-space: the paper's ``T_c, T_sc, T_s, T_o <= T_m``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernels import combined_stsim_to_many, intersection_to_many
from repro.core.similarity import SimilarityWeights
from repro.errors import DatabaseError

#: Shared Eq. (1) weights: resolved from the core defaults so the index
#: and the mining layer cannot drift apart.
_DEFAULT_WEIGHTS = SimilarityWeights()

#: Number of centres kept per non-leaf node.
DEFAULT_CENTERS = 4
#: Dimensions retained by per-node dimension reduction.
DEFAULT_REDUCED_DIM = 64
#: Histogram bins folded into the leaf hash signature.
SIGNATURE_BINS = 4


class IndexStats:
    """Lock-free hot-path counters for the hierarchical index.

    Plain attribute increments (same GIL-approximate trade as
    :class:`repro.core.kernels.KernelStats`): the descent and the leaf
    feature-block cache must not pay a lock per query.  Published as
    read-time gauges through
    :func:`repro.obs.bridge.index_stats_collector`.
    """

    __slots__ = (
        "descents",
        "routes",
        "center_block_builds",
        "block_hits",
        "block_misses",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.descents = 0
        self.routes = 0
        self.center_block_builds = 0
        self.block_hits = 0
        self.block_misses = 0

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy of the counters."""
        return {
            "descents": self.descents,
            "routes": self.routes,
            "center_block_builds": self.center_block_builds,
            "block_hits": self.block_hits,
            "block_misses": self.block_misses,
        }


#: Process-wide index counters (exported via the obs registry).
INDEX_STATS = IndexStats()


@dataclass(frozen=True)
class ShotEntry:
    """One indexed shot.

    Attributes
    ----------
    video_title / shot_id:
        Identity of the shot.
    scene_id:
        The mined scene it belongs to.
    features:
        Concatenated 256-d histogram + 10-d texture (266-d).
    """

    video_title: str
    shot_id: int
    scene_id: int
    features: np.ndarray = field(repr=False, hash=False, compare=False)

    @property
    def key(self) -> tuple[str, int]:
        """Globally unique shot key."""
        return (self.video_title, self.shot_id)


def combine_features(histogram: np.ndarray, texture: np.ndarray) -> np.ndarray:
    """Concatenate the paper's two descriptors into one vector."""
    histogram = np.asarray(histogram, dtype=np.float64).ravel()
    texture = np.asarray(texture, dtype=np.float64).ravel()
    return np.concatenate([histogram, texture])


def feature_similarity(
    a: np.ndarray,
    b: np.ndarray,
    dims: np.ndarray | None = None,
    weights: SimilarityWeights = _DEFAULT_WEIGHTS,
) -> float:
    """Eq. (1)-style similarity on (optionally reduced) feature vectors.

    Histogram part uses intersection; texture part uses the quadratic
    term, mixed with the shared :class:`SimilarityWeights` defaults
    (W_C = 0.7, W_T = 0.3) so index and core weights stay one value.
    When ``dims`` is given both vectors are restricted to those
    dimensions first (the node's discriminating sub-space).
    """
    if dims is not None:
        # Reduced sub-space: intersection kernel over the retained dims.
        a = a[dims]
        b = b[dims]
        return float(np.minimum(a, b).sum())
    color = float(np.minimum(a[:256], b[:256]).sum())
    texture = max(1.0 - float(((a[256:] - b[256:]) ** 2).sum()), 0.0)
    return weights.color * color + weights.texture * texture


def feature_similarity_batch(
    features: np.ndarray,
    matrix: np.ndarray,
    dims: np.ndarray | None = None,
    weights: SimilarityWeights = _DEFAULT_WEIGHTS,
) -> np.ndarray:
    """Batched :func:`feature_similarity`: one query against stacked rows.

    ``matrix`` is ``(M, 266)``; the result is ``(M,)`` with
    ``out[m] == feature_similarity(features, matrix[m], dims)`` to
    kernel precision.  One call replaces ``M`` interpreter dispatches —
    the Eq. (25) descent and the leaf ranking both run through here.
    """
    if dims is not None:
        return intersection_to_many(features[dims], matrix[:, dims])
    return combined_stsim_to_many(features, matrix, weights=weights)


def discriminating_dimensions(
    features: np.ndarray, keep: int = DEFAULT_REDUCED_DIM
) -> np.ndarray:
    """Pick the ``keep`` highest-variance dimensions of a population.

    This is the paper's dimension-reduction step: only dimensions that
    actually vary inside the node are worth comparing there.
    """
    features = np.atleast_2d(features)
    variances = features.var(axis=0)
    keep = min(keep, features.shape[1])
    return np.sort(np.argsort(variances)[::-1][:keep])


def leaf_signature(features: np.ndarray, bins: int = SIGNATURE_BINS) -> tuple[int, ...]:
    """Hash signature: which coarse histogram quadrants dominate.

    The 256-bin histogram is folded into ``bins`` super-bins; the
    signature lists the two heaviest super-bins, but a rank is only
    recorded when it carries real mass (> 0.1) — ties between
    near-empty super-bins would otherwise flip under feature noise.
    """
    histogram = features[:256]
    folded = histogram.reshape(bins, -1).sum(axis=1)
    order = np.argsort(folded)[::-1]
    signature = []
    for rank in order[:2]:
        signature.append(int(rank) if folded[rank] > 0.1 else -1)
    return tuple(signature)


class LeafHashIndex:
    """Hash-table shot index used at scene-concept leaves."""

    def __init__(self) -> None:
        self._buckets: dict[tuple[int, ...], list[ShotEntry]] = {}
        # Parallel insertion-order list: the all-entries fallback must
        # rank in registration order so a sharded merge by global
        # ordinal reproduces the single-process tie-break exactly.
        self._order: list[ShotEntry] = []
        # signature -> (entries, stacked features); None keys the
        # all-entries fallback block.  Rebuilt lazily, dropped on insert.
        self._blocks: dict[
            tuple[int, ...] | None, tuple[list[ShotEntry], np.ndarray]
        ] = {}

    def insert(self, entry: ShotEntry) -> None:
        """Add one shot to its signature bucket."""
        signature = leaf_signature(entry.features)
        self._buckets.setdefault(signature, []).append(entry)
        self._order.append(entry)
        self._blocks.clear()

    def probe(self, features: np.ndarray) -> list[ShotEntry]:
        """Candidates in the query's bucket; falls back to all entries
        when the bucket is empty (small leaves)."""
        signature = leaf_signature(features)
        bucket = self._buckets.get(signature, [])
        if bucket:
            return list(bucket)
        return self.all_entries()

    def _block(
        self, key: tuple[int, ...] | None
    ) -> tuple[list[ShotEntry], np.ndarray]:
        cached = self._blocks.get(key)
        if cached is None:
            INDEX_STATS.block_misses += 1
            entries = list(self._buckets.get(key, ())) if key is not None else (
                self.all_entries()
            )
            matrix = (
                np.stack([entry.features for entry in entries])
                if entries
                else np.empty((0, 0))
            )
            cached = (entries, matrix)
            self._blocks[key] = cached
        else:
            INDEX_STATS.block_hits += 1
        return cached

    def probe_block(
        self, features: np.ndarray
    ) -> tuple[list[ShotEntry], np.ndarray]:
        """Like :meth:`probe`, plus the candidates' stacked features.

        The stacked ``(M, 266)`` matrix is cached per bucket signature,
        so repeated queries (the serving hot path) never re-stack
        entry features.  Callers must treat both values as read-only.
        """
        signature = leaf_signature(features)
        key = signature if self._buckets.get(signature) else None
        return self._block(key)

    def bucket_block(
        self, features: np.ndarray
    ) -> tuple[list[ShotEntry], np.ndarray]:
        """Signature-bucket block only — never the all-entries fallback.

        A sharded probe must decide *globally* whether the bucket is
        empty: one shard's empty bucket may be populated on another, so
        each shard first reports just its own bucket and the coordinator
        asks for a full leaf scan only when every shard came back empty.
        """
        signature = leaf_signature(features)
        if not self._buckets.get(signature):
            return [], np.empty((0, 0))
        return self._block(signature)

    def fallback_block(self) -> tuple[list[ShotEntry], np.ndarray]:
        """The all-entries block, in insertion order.

        What :meth:`probe_block` falls back to on an empty bucket; shard
        workers serve it when the coordinator has established that a
        query's bucket is empty on *every* shard.
        """
        return self._block(None)

    def warm(self) -> None:
        """Pre-build every bucket block plus the all-entries fallback."""
        for signature in self._buckets:
            self._block(signature)
        self._block(None)

    def all_entries(self) -> list[ShotEntry]:
        """Every indexed shot, in insertion order."""
        return list(self._order)

    def __len__(self) -> int:
        return len(self._order)

    @property
    def bucket_count(self) -> int:
        """Number of non-empty buckets."""
        return len(self._buckets)


@dataclass(frozen=True)
class CenterBlock:
    """Stacked routing centres of a node's populated children.

    ``centers[offsets[c]:offsets[c + 1]]`` are the centres of
    ``children[c]``; one batched kernel call scores them all.
    """

    centers: np.ndarray = field(repr=False)
    children: tuple["IndexNode", ...]
    offsets: np.ndarray = field(repr=False)


@dataclass
class IndexNode:
    """One node of the hierarchical index tree.

    Non-leaf nodes route via ``centers``; leaf nodes hold a
    :class:`LeafHashIndex`.
    """

    name: str
    depth: int
    children: list["IndexNode"] = field(default_factory=list)
    centers: np.ndarray | None = field(default=None, repr=False)
    dims: np.ndarray | None = field(default=None, repr=False)
    leaf: LeafHashIndex | None = None
    _center_block: CenterBlock | None = field(default=None, repr=False, compare=False)
    # The leaf's approximate-retrieval tier: an AnnLeafIndex, a loader
    # thunk (the SQL catalog's lazy path), or None.  Resolved through
    # repro.ann.index.resolve_ann; kept untyped so the database layer
    # does not import the ANN package at module load.
    ann: object | None = field(default=None, repr=False, compare=False)

    @property
    def is_leaf(self) -> bool:
        """True for scene-concept leaves."""
        return self.leaf is not None

    def shot_count(self) -> int:
        """Total shots indexed under this node."""
        if self.is_leaf:
            return len(self.leaf)  # type: ignore[arg-type]
        return sum(child.shot_count() for child in self.children)

    def center_block(self) -> CenterBlock | None:
        """Cached stacked centres of populated children (None if none).

        The catalog never mutates a built tree in place — registration
        invalidates and rebuilds — so the cache lives as long as the
        node.  A snapshot build pre-warms it for the serving hot path.
        """
        if self._center_block is None:
            populated = tuple(
                child for child in self.children if child.centers is not None
            )
            if not populated:
                return None
            INDEX_STATS.center_block_builds += 1
            offsets = np.zeros(len(populated) + 1, dtype=np.intp)
            np.cumsum([c.centers.shape[0] for c in populated], out=offsets[1:])
            self._center_block = CenterBlock(
                centers=np.concatenate([c.centers for c in populated]),
                children=populated,
                offsets=offsets,
            )
        return self._center_block


def _kcenters(features: np.ndarray, k: int) -> np.ndarray:
    """Greedy k-centre selection (farthest-point), then mean refinement.

    Deterministic and adequate for routing; the paper only requires
    "multiple centres", not an optimal clustering.
    """
    features = np.atleast_2d(features)
    n = features.shape[0]
    k = max(1, min(k, n))
    chosen = [0]
    for _ in range(1, k):
        distances = np.min(
            ((features[:, None, :] - features[None, chosen, :]) ** 2).sum(axis=2),
            axis=1,
        )
        chosen.append(int(np.argmax(distances)))
    centers = features[chosen].copy()
    # One Lloyd step: assign and average.
    assignment = np.argmin(
        ((features[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2), axis=1
    )
    for c in range(k):
        members = features[assignment == c]
        if members.shape[0]:
            centers[c] = members.mean(axis=0)
    return centers


def build_node(
    name: str,
    depth: int,
    children: list[IndexNode] | None = None,
    entries: list[ShotEntry] | None = None,
    num_centers: int = DEFAULT_CENTERS,
    reduced_dim: int = DEFAULT_REDUCED_DIM,
) -> IndexNode:
    """Construct a leaf (from entries) or internal node (from children)."""
    if (children is None) == (entries is None):
        raise DatabaseError("a node needs either children or entries, not both")
    if entries is not None:
        leaf = LeafHashIndex()
        for entry in entries:
            leaf.insert(entry)
        node = IndexNode(name=name, depth=depth, leaf=leaf)
        if entries:
            population = np.stack([entry.features for entry in entries])
            node.centers = _kcenters(population, num_centers)
            node.dims = discriminating_dimensions(population, reduced_dim)
        return node

    node = IndexNode(name=name, depth=depth, children=list(children or []))
    populations = []
    for child in node.children:
        if child.centers is not None:
            populations.append(child.centers)
    if populations:
        stacked = np.vstack(populations)
        node.centers = _kcenters(stacked, num_centers)
        node.dims = discriminating_dimensions(stacked, reduced_dim)
    return node


def route_child(node: IndexNode, features: np.ndarray) -> tuple[IndexNode, int]:
    """Pick the child whose best centre matches the query best.

    Returns ``(child, comparisons_made)``.  All centres of all
    populated children are scored in one batched kernel call;
    ``comparisons`` still counts every logical centre evaluation, and
    the first-best tie-break matches the scalar scan.
    """
    if node.is_leaf or not node.children:
        raise DatabaseError(f"cannot route inside leaf node {node.name!r}")
    block = node.center_block()
    if block is None:
        raise DatabaseError(f"node {node.name!r} has no populated children")
    INDEX_STATS.routes += 1
    scores = feature_similarity_batch(features, block.centers)
    best = int(np.argmax(scores))
    child_index = int(np.searchsorted(block.offsets, best, side="right") - 1)
    return block.children[child_index], int(scores.shape[0])
