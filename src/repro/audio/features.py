"""Fourteen clip-level audio features (Sec. 4.2, after Liu & Huang [22]).

Each ~2-second clip is described by a 14-dimensional vector that the GMM
classifier uses to separate *clean speech* from *non-speech* (music,
ambience, silence).  Features are computed over 30 ms analysis frames
with a 10 ms hop and then aggregated over the clip.
"""

from __future__ import annotations

import numpy as np

from repro.audio.mfcc import frame_signal
from repro.audio.waveform import Waveform
from repro.errors import AudioError

FEATURE_DIM = 14

FEATURE_NAMES = (
    "volume_mean",
    "volume_std",
    "volume_dynamic_range",
    "non_silence_ratio",
    "zcr_mean",
    "zcr_std",
    "four_hz_modulation",
    "spectral_centroid_mean",
    "spectral_centroid_std",
    "spectral_rolloff_mean",
    "spectral_flux_mean",
    "bandwidth_mean",
    "low_energy_ratio",
    "pitch_strength",
)

_SILENCE_RMS = 1e-3


def _frame_rms(frames: np.ndarray) -> np.ndarray:
    return np.sqrt((frames**2).mean(axis=1))


def _frame_zcr(frames: np.ndarray) -> np.ndarray:
    signs = np.sign(frames)
    signs[signs == 0] = 1
    return 0.5 * np.abs(np.diff(signs, axis=1)).mean(axis=1)


def _spectral_stats(
    frames: np.ndarray, sample_rate: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-frame centroid, rolloff (85%), flux and bandwidth."""
    window = np.hamming(frames.shape[1])
    spectra = np.abs(np.fft.rfft(frames * window, axis=1))
    freqs = np.fft.rfftfreq(frames.shape[1], d=1.0 / sample_rate)
    power = spectra**2
    total = power.sum(axis=1)
    safe_total = np.where(total > 0, total, 1.0)

    centroid = (power * freqs[None, :]).sum(axis=1) / safe_total

    cumulative = np.cumsum(power, axis=1)
    rolloff_idx = (cumulative >= 0.85 * total[:, None]).argmax(axis=1)
    rolloff = freqs[rolloff_idx]

    normalised = spectra / np.sqrt(safe_total)[:, None]
    flux = np.zeros(frames.shape[0])
    if frames.shape[0] > 1:
        flux[1:] = np.sqrt(((normalised[1:] - normalised[:-1]) ** 2).sum(axis=1))

    spread = ((freqs[None, :] - centroid[:, None]) ** 2 * power).sum(axis=1)
    bandwidth = np.sqrt(spread / safe_total)
    return centroid, rolloff, flux, bandwidth


def _four_hz_modulation(rms: np.ndarray, hop_seconds: float) -> float:
    """Energy of the RMS envelope near the 4 Hz syllable rate.

    Speech has a strong amplitude modulation at ~4 Hz; music and
    ambience do not.  Returns the fraction of envelope spectral energy
    inside the 2–8 Hz band.
    """
    if rms.size < 8:
        return 0.0
    envelope = rms - rms.mean()
    spectrum = np.abs(np.fft.rfft(envelope)) ** 2
    freqs = np.fft.rfftfreq(envelope.size, d=hop_seconds)
    band = (freqs >= 2.0) & (freqs <= 8.0)
    total = spectrum[1:].sum()  # exclude DC
    if total <= 0:
        return 0.0
    return float(spectrum[band].sum() / total)


def _pitch_strength(
    samples: np.ndarray, sample_rate: int, fmin: float = 60.0, fmax: float = 400.0
) -> float:
    """Peak normalised autocorrelation inside the speech pitch range.

    Only the lags covering the pitch range are evaluated (a few dozen
    dot products) — a full autocorrelation would be O(n^2) per clip and
    dominated the whole pipeline.
    """
    if samples.size < int(sample_rate / fmin) * 2:
        return 0.0
    centred = samples - samples.mean()
    energy = float((centred**2).sum())
    if energy <= 0:
        return 0.0
    lag_min = int(sample_rate / fmax)
    lag_max = min(int(sample_rate / fmin), centred.size - 1)
    if lag_max <= lag_min:
        return 0.0
    best = -np.inf
    for lag in range(lag_min, lag_max):
        value = float(centred[: centred.size - lag] @ centred[lag:])
        if value > best:
            best = value
    return best / energy


def clip_features(clip: Waveform) -> np.ndarray:
    """Compute the 14-dimensional feature vector for one audio clip."""
    if len(clip) == 0:
        raise AudioError("cannot extract features from an empty clip")
    hop_seconds = 0.010
    frames = frame_signal(clip.samples, clip.sample_rate, 0.030, hop_seconds)
    if frames.shape[0] == 0:
        raise AudioError("clip shorter than one analysis window")

    rms = _frame_rms(frames)
    zcr = _frame_zcr(frames)
    centroid, rolloff, flux, bandwidth = _spectral_stats(frames, clip.sample_rate)

    mean_rms = float(rms.mean())
    nyquist = clip.sample_rate / 2.0

    features = np.array(
        [
            mean_rms,
            float(rms.std() / (mean_rms + 1e-9)),
            float((rms.max() - rms.min()) / (rms.max() + 1e-9)),
            float((rms > _SILENCE_RMS).mean()),
            float(zcr.mean()),
            float(zcr.std()),
            _four_hz_modulation(rms, hop_seconds),
            float(centroid.mean() / nyquist),
            float(centroid.std() / nyquist),
            float(rolloff.mean() / nyquist),
            float(flux.mean()),
            float(bandwidth.mean() / nyquist),
            float((rms < 0.5 * mean_rms).mean()),
            _pitch_strength(clip.samples, clip.sample_rate),
        ]
    )
    if features.shape != (FEATURE_DIM,):
        raise AudioError("internal error: wrong feature dimensionality")
    return features
