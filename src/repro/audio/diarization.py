"""Speaker diarization across shots, built on the ΔBIC test.

The paper's dialog rule needs to know that "at least one speaker should
be duplicated more than once" — which is a diarization question.  This
module exposes the general machinery: agglomeratively link shots whose
representative clips the ΔBIC test judges to be the *same* speaker, and
label the connected components.  Shots without usable speech stay
unlabelled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audio.speaker import ShotAudio, SpeakerAnalyzer
from repro.errors import AudioError


@dataclass(frozen=True)
class Diarization:
    """Speaker labelling of a shot sequence.

    Attributes
    ----------
    labels:
        ``shot_id -> speaker index`` for every shot with usable speech;
        indices are dense, ordered by first appearance.
    num_speakers:
        Number of distinct speaker clusters found.
    unlabelled:
        Shot ids without usable speech (too short, no clean-speech clip).
    """

    labels: dict[int, int]
    num_speakers: int
    unlabelled: tuple[int, ...]

    def shots_of_speaker(self, speaker: int) -> list[int]:
        """Shot ids attributed to one speaker, in temporal order."""
        if not 0 <= speaker < self.num_speakers:
            raise AudioError(f"speaker index {speaker} out of range")
        return sorted(
            shot_id for shot_id, label in self.labels.items() if label == speaker
        )

    def recurring_speakers(self) -> list[int]:
        """Speakers appearing in more than one shot (the dialog cue)."""
        counts: dict[int, int] = {}
        for label in self.labels.values():
            counts[label] = counts.get(label, 0) + 1
        return sorted(label for label, count in counts.items() if count > 1)


class _UnionFind:
    def __init__(self, items: list[int]) -> None:
        self._parent = {item: item for item in items}

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)


def diarize_shots(
    analyses: list[ShotAudio],
    analyzer: SpeakerAnalyzer | None = None,
    max_gap: int | None = None,
) -> Diarization:
    """Cluster shots by speaker identity.

    Every pair of speech-bearing shots (optionally restricted to pairs
    at most ``max_gap`` positions apart — diarization of long videos
    rarely needs long-range links) is tested with ΔBIC; *same-speaker*
    verdicts become links and connected components become speakers.

    Parameters
    ----------
    analyses:
        Per-shot audio analyses (from :class:`SpeakerAnalyzer`).
    analyzer:
        The analyzer whose ΔBIC configuration to use.
    max_gap:
        Maximum index distance between compared shots (None = all pairs).
    """
    if analyzer is None:
        analyzer = SpeakerAnalyzer()
    speech_shots = [a for a in analyses if a.has_speech and a.mfcc_vectors.shape[0] >= 20]
    unlabelled = tuple(
        a.shot_id for a in analyses if a not in speech_shots
    )
    if not speech_shots:
        return Diarization(labels={}, num_speakers=0, unlabelled=unlabelled)

    uf = _UnionFind([a.shot_id for a in speech_shots])
    for i, first in enumerate(speech_shots):
        for j in range(i + 1, len(speech_shots)):
            if max_gap is not None and j - i > max_gap:
                break
            second = speech_shots[j]
            result = analyzer.speaker_change(first, second)
            if result is not None and not result.is_change:
                uf.union(first.shot_id, second.shot_id)

    # Dense labels ordered by first appearance.
    label_of_root: dict[int, int] = {}
    labels: dict[int, int] = {}
    for analysis in speech_shots:
        root = uf.find(analysis.shot_id)
        if root not in label_of_root:
            label_of_root[root] = len(label_of_root)
        labels[analysis.shot_id] = label_of_root[root]
    return Diarization(
        labels=labels,
        num_speakers=len(label_of_root),
        unlabelled=unlabelled,
    )
