"""Audio substrate: waveforms, synthesis, features, MFCC, GMM, BIC, speakers."""

from repro.audio.bic import BicResult, bic_speaker_change
from repro.audio.clips import CLIP_SECONDS, AudioClip, segment_clips
from repro.audio.diarization import Diarization, diarize_shots
from repro.audio.features import FEATURE_DIM, FEATURE_NAMES, clip_features
from repro.audio.gmm import GaussianMixture, GmmClassifier
from repro.audio.mfcc import mfcc, mel_filterbank
from repro.audio.speaker import (
    NON_SPEECH_LABEL,
    SPEECH_LABEL,
    ShotAudio,
    SpeakerAnalyzer,
    analyze_shots,
    default_speech_classifier,
)
from repro.audio.synthesis import (
    VOICE_BANK,
    SpeakerVoice,
    synthesize_ambient,
    synthesize_music,
    synthesize_speech,
)
from repro.audio.waveform import DEFAULT_SAMPLE_RATE, Waveform

__all__ = [
    "AudioClip",
    "BicResult",
    "CLIP_SECONDS",
    "Diarization",
    "DEFAULT_SAMPLE_RATE",
    "FEATURE_DIM",
    "FEATURE_NAMES",
    "GaussianMixture",
    "GmmClassifier",
    "NON_SPEECH_LABEL",
    "SPEECH_LABEL",
    "ShotAudio",
    "SpeakerAnalyzer",
    "SpeakerVoice",
    "VOICE_BANK",
    "Waveform",
    "analyze_shots",
    "bic_speaker_change",
    "clip_features",
    "diarize_shots",
    "default_speech_classifier",
    "mel_filterbank",
    "mfcc",
    "segment_clips",
    "synthesize_ambient",
    "synthesize_music",
    "synthesize_speech",
]
