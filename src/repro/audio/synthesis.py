"""Synthetic audio sources: formant speakers, music, noise, silence.

The paper's audio analysis needs (a) clean speech it can tell apart from
non-speech, and (b) speakers that are statistically distinct in MFCC
space so the BIC test can detect speaker changes.  A formant synthesiser
gives both: each :class:`SpeakerVoice` is a vocal-tract configuration
(fundamental pitch + formant resonances) driving a glottal pulse train.
Different configurations produce clearly different spectral envelopes —
exactly what MFCCs measure.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

from repro.audio.waveform import DEFAULT_SAMPLE_RATE, Waveform
from repro.errors import AudioError


@dataclass(frozen=True)
class SpeakerVoice:
    """One synthetic speaker: a fixed vocal-tract configuration.

    Attributes
    ----------
    name:
        Stable identifier (used as ground-truth speaker label).
    pitch_hz:
        Fundamental frequency of the glottal pulse train.
    formants_hz:
        Centre frequencies of the vocal-tract resonances.
    bandwidths_hz:
        Bandwidth of each resonance (same length as ``formants_hz``).
    syllable_rate_hz:
        Amplitude-envelope modulation rate (speech rhythm).
    """

    name: str
    pitch_hz: float
    formants_hz: tuple[float, ...]
    bandwidths_hz: tuple[float, ...]
    syllable_rate_hz: float = 4.0

    def __post_init__(self) -> None:
        if self.pitch_hz <= 0:
            raise AudioError("pitch must be positive")
        if len(self.formants_hz) != len(self.bandwidths_hz):
            raise AudioError("formants and bandwidths must align")
        if not self.formants_hz:
            raise AudioError("a voice needs at least one formant")


#: A small cast of clearly distinct voices for the synthetic corpus.
VOICE_BANK: dict[str, SpeakerVoice] = {
    "dr_adams": SpeakerVoice(
        name="dr_adams",
        pitch_hz=110.0,
        formants_hz=(600.0, 1100.0, 2400.0),
        bandwidths_hz=(80.0, 110.0, 160.0),
        syllable_rate_hz=3.6,
    ),
    "dr_baker": SpeakerVoice(
        name="dr_baker",
        pitch_hz=205.0,
        formants_hz=(850.0, 1900.0, 2900.0),
        bandwidths_hz=(90.0, 130.0, 180.0),
        syllable_rate_hz=4.4,
    ),
    "patient_chen": SpeakerVoice(
        name="patient_chen",
        pitch_hz=150.0,
        formants_hz=(500.0, 1500.0, 2600.0),
        bandwidths_hz=(70.0, 120.0, 170.0),
        syllable_rate_hz=3.9,
    ),
    "nurse_diaz": SpeakerVoice(
        name="nurse_diaz",
        pitch_hz=240.0,
        formants_hz=(700.0, 2100.0, 3200.0),
        bandwidths_hz=(85.0, 140.0, 190.0),
        syllable_rate_hz=4.8,
    ),
    "narrator": SpeakerVoice(
        name="narrator",
        pitch_hz=95.0,
        formants_hz=(450.0, 1300.0, 2200.0),
        bandwidths_hz=(60.0, 100.0, 150.0),
        syllable_rate_hz=3.2,
    ),
}


def _glottal_pulse_train(
    duration: float, pitch_hz: float, sample_rate: int, rng: np.random.Generator
) -> np.ndarray:
    """Impulse train at ``pitch_hz`` with ±2% period jitter."""
    count = int(round(duration * sample_rate))
    excitation = np.zeros(count)
    period = sample_rate / pitch_hz
    position = 0.0
    while position < count:
        excitation[int(position)] = 1.0
        jitter = 1.0 + rng.normal(0.0, 0.02)
        position += period * max(jitter, 0.5)
    return excitation


def _formant_filter(
    excitation: np.ndarray, voice: SpeakerVoice, sample_rate: int
) -> np.ndarray:
    """Pass excitation through cascaded two-pole resonators."""
    output = excitation
    for freq, bandwidth in zip(voice.formants_hz, voice.bandwidths_hz):
        if freq >= sample_rate / 2:
            continue  # resonance above Nyquist contributes nothing
        r = np.exp(-np.pi * bandwidth / sample_rate)
        theta = 2.0 * np.pi * freq / sample_rate
        # H(z) = 1 / (1 - 2 r cos(theta) z^-1 + r^2 z^-2)
        a = np.array([1.0, -2.0 * r * np.cos(theta), r * r])
        output = sp_signal.lfilter([1.0], a, output)
    return output


def synthesize_speech(
    voice: SpeakerVoice,
    duration: float,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    seed: int = 0,
    level: float = 0.6,
) -> Waveform:
    """Render ``duration`` seconds of speech in the given voice.

    The glottal pulse train is filtered through the voice's formant
    resonators, amplitude-modulated at the syllable rate (with short
    inter-word gaps) and mixed with a whisper of aspiration noise.
    """
    if duration <= 0:
        raise AudioError("duration must be positive")
    # zlib.crc32 is stable across processes (unlike hash() with PYTHONHASHSEED).
    rng = np.random.default_rng(seed + zlib.crc32(voice.name.encode()) % 100_000)
    excitation = _glottal_pulse_train(duration, voice.pitch_hz, sample_rate, rng)
    speech = _formant_filter(excitation, voice, sample_rate)

    count = speech.size
    t = np.arange(count) / sample_rate
    syllables = 0.55 + 0.45 * np.sin(2.0 * np.pi * voice.syllable_rate_hz * t)
    # Inter-word pauses: brief dips roughly every second.
    word_gate = (np.sin(2.0 * np.pi * 0.9 * t + rng.uniform(0, np.pi)) > -0.95).astype(
        float
    )
    envelope = syllables * (0.2 + 0.8 * word_gate)
    aspiration = rng.normal(0.0, 0.01, count)
    speech = speech * envelope + aspiration

    peak = np.abs(speech).max()
    if peak > 0:
        speech = speech / peak * level
    return Waveform(samples=speech, sample_rate=sample_rate)


def synthesize_music(
    duration: float,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    seed: int = 0,
    level: float = 0.4,
) -> Waveform:
    """Simple sustained-chord background music (non-speech)."""
    if duration <= 0:
        raise AudioError("duration must be positive")
    rng = np.random.default_rng(seed)
    count = int(round(duration * sample_rate))
    t = np.arange(count) / sample_rate
    root = rng.choice([220.0, 262.0, 330.0])
    chord = sum(
        np.sin(2.0 * np.pi * root * ratio * t + rng.uniform(0, 2 * np.pi))
        for ratio in (1.0, 1.25, 1.5)
    )
    tremolo = 0.9 + 0.1 * np.sin(2.0 * np.pi * 0.5 * t)
    music = chord * tremolo / 3.0
    return Waveform(samples=music * level, sample_rate=sample_rate)


def synthesize_ambient(
    duration: float,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    seed: int = 0,
    level: float = 0.15,
) -> Waveform:
    """Operating-room ambience: filtered noise plus a monitor beep."""
    if duration <= 0:
        raise AudioError("duration must be positive")
    rng = np.random.default_rng(seed)
    count = int(round(duration * sample_rate))
    noise = rng.normal(0.0, 1.0, count)
    # One-pole low-pass to make it a dull rumble rather than white noise.
    smooth = sp_signal.lfilter([0.08], [1.0, -0.92], noise)
    t = np.arange(count) / sample_rate
    beep_gate = (np.sin(2.0 * np.pi * 1.1 * t) > 0.995).astype(float)
    beep = 0.5 * np.sin(2.0 * np.pi * 880.0 * t) * beep_gate
    ambience = smooth / max(np.abs(smooth).max(), 1e-9) + beep
    peak = np.abs(ambience).max()
    if peak > 0:
        ambience = ambience / peak * level
    return Waveform(samples=ambience, sample_rate=sample_rate)
