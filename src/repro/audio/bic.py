"""Bayesian Information Criterion speaker-change test (Eqs. 17-19).

Given the MFCC sequences of two shots, hypothesis H0 says one Gaussian
generated both; H1 says each shot has its own Gaussian.  The penalised
likelihood-ratio statistic is

    R(Lambda)  = N/2 log|S| - Ni/2 log|Si| - Nj/2 log|Sj|
    dBIC       = -R(Lambda) + lambda * P
    P          = 1/2 (p + p(p+1)/2) log N

and a **speaker change is declared when dBIC < 0** (the two-Gaussian
model wins even after paying the complexity penalty).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AudioError

#: Default penalty factor.  1.0 is the theoretical BIC value; like
#: DISTBIC [23] we tune it upward (calibrated on the synthetic voice
#: bank: lambda = 2 removes same-speaker false alarms while leaving a
#: ~1500-point margin on true changes).
DEFAULT_PENALTY = 2.0

#: Ridge added to covariance diagonals for numerical stability.
_REGULARISATION = 1e-6


def _log_det_covariance(x: np.ndarray) -> float:
    """log-determinant of the (regularised) covariance of row vectors."""
    if x.shape[0] < 2:
        raise AudioError("need at least 2 vectors to estimate a covariance")
    centred = x - x.mean(axis=0)
    cov = centred.T @ centred / x.shape[0]
    cov += _REGULARISATION * np.eye(cov.shape[0])
    sign, log_det = np.linalg.slogdet(cov)
    if sign <= 0:
        raise AudioError("covariance is not positive definite")
    return float(log_det)


@dataclass(frozen=True)
class BicResult:
    """Outcome of one BIC comparison.

    Attributes
    ----------
    delta_bic:
        The penalised statistic; negative means *speaker change*.
    ratio:
        The unpenalised likelihood-ratio term R(Lambda).
    penalty:
        The complexity penalty lambda * P.
    is_change:
        ``delta_bic < 0``.
    """

    delta_bic: float
    ratio: float
    penalty: float

    @property
    def is_change(self) -> bool:
        """True when the test declares a speaker change."""
        return self.delta_bic < 0.0


def bic_speaker_change(
    mfcc_i: np.ndarray,
    mfcc_j: np.ndarray,
    penalty_factor: float = DEFAULT_PENALTY,
) -> BicResult:
    """Run the Eq. 17-19 hypothesis test on two MFCC sequences.

    Parameters
    ----------
    mfcc_i, mfcc_j:
        ``(Ni, p)`` and ``(Nj, p)`` acoustic vector sequences.
    penalty_factor:
        The lambda in Eq. 19.

    Raises
    ------
    AudioError
        If either sequence is too short or dimensions disagree.
    """
    mfcc_i = np.atleast_2d(np.asarray(mfcc_i, dtype=np.float64))
    mfcc_j = np.atleast_2d(np.asarray(mfcc_j, dtype=np.float64))
    if mfcc_i.shape[1] != mfcc_j.shape[1]:
        raise AudioError(
            f"dimension mismatch: {mfcc_i.shape[1]} vs {mfcc_j.shape[1]}"
        )
    p = mfcc_i.shape[1]
    n_i, n_j = mfcc_i.shape[0], mfcc_j.shape[0]
    if n_i < p + 1 or n_j < p + 1:
        raise AudioError(
            f"need more than {p} vectors per side, got {n_i} and {n_j}"
        )
    n = n_i + n_j
    pooled = np.vstack([mfcc_i, mfcc_j])

    ratio = (
        0.5 * n * _log_det_covariance(pooled)
        - 0.5 * n_i * _log_det_covariance(mfcc_i)
        - 0.5 * n_j * _log_det_covariance(mfcc_j)
    )
    penalty = penalty_factor * 0.5 * (p + 0.5 * p * (p + 1)) * np.log(n)
    delta = -ratio + penalty
    return BicResult(delta_bic=float(delta), ratio=float(ratio), penalty=float(penalty))
