"""Clip segmentation (Sec. 4.2).

"For each video shot, we separate the audio stream into adjacent clips,
such that each is about 2 seconds long (a video shot with its length
less than 2 seconds is discarded)."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audio.waveform import Waveform
from repro.errors import AudioError

#: Paper clip length.
CLIP_SECONDS = 2.0


@dataclass(frozen=True)
class AudioClip:
    """One ~2-second clip cut from a shot's audio.

    Attributes
    ----------
    waveform:
        The clip samples.
    start / stop:
        Clip window in seconds, relative to the whole video.
    """

    waveform: Waveform
    start: float
    stop: float

    @property
    def duration(self) -> float:
        """Clip length in seconds."""
        return self.stop - self.start


def segment_clips(
    audio: Waveform,
    start: float,
    stop: float,
    clip_seconds: float = CLIP_SECONDS,
) -> list[AudioClip]:
    """Cut the audio window ``[start, stop)`` into adjacent ~2 s clips.

    Returns an empty list when the window is shorter than one clip —
    the paper discards shots under 2 seconds.  A trailing remainder
    shorter than ``clip_seconds`` is merged into the final clip so no
    audio is lost.
    """
    if clip_seconds <= 0:
        raise AudioError("clip_seconds must be positive")
    if stop <= start:
        raise AudioError(f"invalid window [{start}, {stop})")
    duration = stop - start
    if duration < clip_seconds:
        return []

    count = int(duration // clip_seconds)
    clips: list[AudioClip] = []
    for i in range(count):
        clip_start = start + i * clip_seconds
        clip_stop = clip_start + clip_seconds
        if i == count - 1:
            clip_stop = stop  # absorb the remainder into the last clip
        clips.append(
            AudioClip(
                waveform=audio.slice_seconds(clip_start, clip_stop),
                start=clip_start,
                stop=clip_stop,
            )
        )
    return clips
