"""Per-shot speaker analysis (Sec. 4.2).

Two steps, as in the paper:

1. **Representative clip selection** — each shot's audio is cut into
   ~2-second clips, each clip is classified *speech* vs *non-speech* by
   a GMM over the 14 clip features, and the clip most like clean speech
   becomes the shot's representative clip.
2. **Speaker-change testing** — 14-dim MFCC sequences of two shots'
   representative clips go through the Delta-BIC test (Eqs. 17-19).

:func:`default_speech_classifier` trains the speech/non-speech GMM on
synthesised material from the voice bank, mirroring how the original
system would have been trained on labelled broadcast audio.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.audio.bic import DEFAULT_PENALTY, BicResult, bic_speaker_change
from repro.audio.clips import CLIP_SECONDS, AudioClip, segment_clips
from repro.audio.features import clip_features
from repro.audio.gmm import GmmClassifier
from repro.audio.mfcc import mfcc
from repro.audio.synthesis import (
    VOICE_BANK,
    synthesize_ambient,
    synthesize_music,
    synthesize_speech,
)
from repro.audio.waveform import Waveform
from repro.errors import AudioError

SPEECH_LABEL = "speech"
NON_SPEECH_LABEL = "non_speech"


@dataclass
class ShotAudio:
    """Audio analysis result for one shot.

    Attributes
    ----------
    shot_id:
        Shot index within the video.
    representative_clip:
        The clip most like clean speech, or ``None`` when the shot is
        shorter than 2 s or contains no speech-like clip.
    has_speech:
        Whether any clip classified as clean speech.
    mfcc_vectors:
        MFCC sequence of the representative clip (``(N, 14)``), or an
        empty array when there is none.
    """

    shot_id: int
    representative_clip: AudioClip | None
    has_speech: bool
    mfcc_vectors: np.ndarray


@lru_cache(maxsize=1)
def default_speech_classifier() -> GmmClassifier:
    """Train the clean-speech vs non-speech GMM on synthesised audio.

    Training material: 2-second snippets of every bank voice (speech
    class) and of music, ambience and near-silence (non-speech class).
    The classifier is cached — training takes a moment and the result is
    deterministic.
    """
    samples: list[np.ndarray] = []
    labels: list[str] = []
    for seed in range(3):
        for voice in VOICE_BANK.values():
            clip = synthesize_speech(voice, CLIP_SECONDS, seed=seed)
            samples.append(clip_features(clip))
            labels.append(SPEECH_LABEL)
        samples.append(clip_features(synthesize_music(CLIP_SECONDS, seed=seed)))
        labels.append(NON_SPEECH_LABEL)
        samples.append(clip_features(synthesize_ambient(CLIP_SECONDS, seed=seed)))
        labels.append(NON_SPEECH_LABEL)
        rng = np.random.default_rng(seed)
        hiss = Waveform(samples=np.clip(rng.normal(0.0, 0.003, 16000), -1, 1))
        samples.append(clip_features(hiss))
        labels.append(NON_SPEECH_LABEL)
    return GmmClassifier.fit(np.array(samples), labels, num_components=2, seed=7)


class SpeakerAnalyzer:
    """Selects representative clips and tests shots for speaker changes."""

    def __init__(
        self,
        classifier: GmmClassifier | None = None,
        penalty_factor: float = DEFAULT_PENALTY,
        clip_seconds: float = CLIP_SECONDS,
    ) -> None:
        self._classifier = classifier if classifier is not None else default_speech_classifier()
        self._penalty = penalty_factor
        self._clip_seconds = clip_seconds

    def analyze_shot(
        self, audio: Waveform, shot_id: int, start: float, stop: float
    ) -> ShotAudio:
        """Analyse one shot's audio window ``[start, stop)`` seconds."""
        clips = segment_clips(audio, start, stop, clip_seconds=self._clip_seconds)
        if not clips:
            return ShotAudio(
                shot_id=shot_id,
                representative_clip=None,
                has_speech=False,
                mfcc_vectors=np.zeros((0, 14)),
            )
        features = np.array([clip_features(clip.waveform) for clip in clips])
        predictions = self._classifier.predict(features)
        margins = self._classifier.score_margin(features, SPEECH_LABEL)
        has_speech = SPEECH_LABEL in predictions

        best = int(np.argmax(margins))
        representative = clips[best]
        vectors = mfcc(representative.waveform)
        return ShotAudio(
            shot_id=shot_id,
            representative_clip=representative,
            has_speech=has_speech,
            mfcc_vectors=vectors,
        )

    def speaker_change(self, a: ShotAudio, b: ShotAudio) -> BicResult | None:
        """Delta-BIC test between two shots' representative clips.

        Returns ``None`` when either shot lacks usable speech — the
        paper's rules treat such pairs as "no observable change".
        """
        if a.mfcc_vectors.shape[0] < 20 or b.mfcc_vectors.shape[0] < 20:
            return None
        if not (a.has_speech and b.has_speech):
            return None
        return bic_speaker_change(
            a.mfcc_vectors, b.mfcc_vectors, penalty_factor=self._penalty
        )

    def is_speaker_change(self, a: ShotAudio, b: ShotAudio) -> bool:
        """Convenience wrapper: True only on a confident change verdict."""
        result = self.speaker_change(a, b)
        return result is not None and result.is_change


def analyze_shots(
    audio: Waveform,
    shot_windows: list[tuple[float, float]],
    analyzer: SpeakerAnalyzer | None = None,
) -> list[ShotAudio]:
    """Analyse every shot window of a video in one call."""
    if analyzer is None:
        analyzer = SpeakerAnalyzer()
    results = []
    for shot_id, (start, stop) in enumerate(shot_windows):
        if stop <= start:
            raise AudioError(f"shot {shot_id} has an empty window")
        results.append(analyzer.analyze_shot(audio, shot_id, start, stop))
    return results
