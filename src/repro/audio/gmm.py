"""Gaussian Mixture Model with EM training, from scratch (Sec. 4.2).

The paper classifies each 2-second clip into *clean speech* vs
*non-clean speech* with a GMM classifier.  :class:`GaussianMixture` is a
diagonal-covariance mixture trained by expectation–maximisation;
:class:`GmmClassifier` holds one mixture per class and assigns the
maximum-likelihood label.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AudioError

_LOG_2PI = np.log(2.0 * np.pi)


@dataclass
class GaussianMixture:
    """Diagonal-covariance Gaussian mixture.

    Attributes
    ----------
    weights:
        ``(K,)`` mixture weights, summing to 1.
    means:
        ``(K, D)`` component means.
    variances:
        ``(K, D)`` per-dimension variances (all positive).
    """

    weights: np.ndarray
    means: np.ndarray
    variances: np.ndarray

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.means = np.asarray(self.means, dtype=np.float64)
        self.variances = np.asarray(self.variances, dtype=np.float64)
        if self.means.ndim != 2:
            raise AudioError("means must be (K, D)")
        k, d = self.means.shape
        if self.weights.shape != (k,) or self.variances.shape != (k, d):
            raise AudioError("mixture parameter shapes disagree")
        if np.any(self.variances <= 0):
            raise AudioError("variances must be positive")
        if abs(self.weights.sum() - 1.0) > 1e-6:
            raise AudioError("weights must sum to 1")

    @property
    def num_components(self) -> int:
        """Number of mixture components K."""
        return self.means.shape[0]

    @property
    def dimension(self) -> int:
        """Feature dimensionality D."""
        return self.means.shape[1]

    def _component_log_densities(self, x: np.ndarray) -> np.ndarray:
        """``(N, K)`` log densities of each point under each component."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        diff = x[:, None, :] - self.means[None, :, :]  # (N, K, D)
        mahalanobis = (diff**2 / self.variances[None, :, :]).sum(axis=2)
        log_det = np.log(self.variances).sum(axis=1)  # (K,)
        return -0.5 * (self.dimension * _LOG_2PI + log_det[None, :] + mahalanobis)

    def log_likelihood(self, x: np.ndarray) -> np.ndarray:
        """Per-point log p(x) under the mixture; shape ``(N,)``."""
        log_densities = self._component_log_densities(x)
        weighted = log_densities + np.log(self.weights)[None, :]
        top = weighted.max(axis=1, keepdims=True)
        return (top[:, 0] + np.log(np.exp(weighted - top).sum(axis=1)))

    def responsibilities(self, x: np.ndarray) -> np.ndarray:
        """Posterior component memberships; shape ``(N, K)``."""
        weighted = self._component_log_densities(x) + np.log(self.weights)[None, :]
        top = weighted.max(axis=1, keepdims=True)
        unnormalised = np.exp(weighted - top)
        return unnormalised / unnormalised.sum(axis=1, keepdims=True)

    @classmethod
    def fit(
        cls,
        x: np.ndarray,
        num_components: int = 2,
        max_iterations: int = 100,
        tolerance: float = 1e-5,
        min_variance: float = 1e-6,
        seed: int = 0,
    ) -> "GaussianMixture":
        """Train by EM with k-means++-style seeding.

        Raises :class:`AudioError` when there are fewer samples than
        components.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        n, d = x.shape
        if n < num_components:
            raise AudioError(
                f"cannot fit {num_components} components to {n} samples"
            )
        rng = np.random.default_rng(seed)

        # k-means++-style seeding: spread initial means across the data.
        means = np.empty((num_components, d))
        means[0] = x[rng.integers(n)]
        for k in range(1, num_components):
            distances = np.min(
                ((x[:, None, :] - means[None, :k, :]) ** 2).sum(axis=2), axis=1
            )
            total = distances.sum()
            if total <= 0:
                means[k] = x[rng.integers(n)]
            else:
                means[k] = x[rng.choice(n, p=distances / total)]

        global_variance = np.maximum(x.var(axis=0), min_variance)
        mixture = cls(
            weights=np.full(num_components, 1.0 / num_components),
            means=means,
            variances=np.tile(global_variance, (num_components, 1)),
        )

        previous = -np.inf
        for _ in range(max_iterations):
            resp = mixture.responsibilities(x)  # E step
            counts = resp.sum(axis=0)  # (K,)
            counts = np.maximum(counts, 1e-12)
            new_means = (resp.T @ x) / counts[:, None]
            diff = x[:, None, :] - new_means[None, :, :]
            new_vars = (resp[:, :, None] * diff**2).sum(axis=0) / counts[:, None]
            new_vars = np.maximum(new_vars, min_variance)
            mixture = cls(
                weights=counts / n, means=new_means, variances=new_vars
            )
            current = float(mixture.log_likelihood(x).mean())
            if abs(current - previous) < tolerance:
                break
            previous = current
        return mixture


@dataclass
class GmmClassifier:
    """Maximum-likelihood classifier: one :class:`GaussianMixture` per class."""

    class_models: dict[str, GaussianMixture] = field(default_factory=dict)

    @classmethod
    def fit(
        cls,
        samples: np.ndarray,
        labels: list[str],
        num_components: int = 2,
        seed: int = 0,
    ) -> "GmmClassifier":
        """Train one mixture per distinct label."""
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        if samples.shape[0] != len(labels):
            raise AudioError("samples and labels disagree in length")
        models: dict[str, GaussianMixture] = {}
        for label in sorted(set(labels)):
            subset = samples[[i for i, l in enumerate(labels) if l == label]]
            components = min(num_components, subset.shape[0])
            models[label] = GaussianMixture.fit(
                subset, num_components=components, seed=seed
            )
        return cls(class_models=models)

    def log_likelihoods(self, x: np.ndarray) -> dict[str, np.ndarray]:
        """Per-class log-likelihood arrays for the given points."""
        if not self.class_models:
            raise AudioError("classifier has no trained classes")
        return {
            label: model.log_likelihood(x)
            for label, model in self.class_models.items()
        }

    def predict(self, x: np.ndarray) -> list[str]:
        """Maximum-likelihood class label per point."""
        likelihoods = self.log_likelihoods(x)
        labels = list(likelihoods)
        stacked = np.stack([likelihoods[label] for label in labels], axis=1)
        winners = stacked.argmax(axis=1)
        return [labels[w] for w in winners]

    def score_margin(self, x: np.ndarray, positive: str) -> np.ndarray:
        """Log-likelihood margin of ``positive`` over the best other class.

        Positive values mean the point looks more like ``positive`` than
        any alternative; used to rank clips by "most like speech".
        """
        likelihoods = self.log_likelihoods(x)
        if positive not in likelihoods:
            raise AudioError(f"unknown class {positive!r}")
        others = [v for label, v in likelihoods.items() if label != positive]
        if not others:
            return likelihoods[positive]
        return likelihoods[positive] - np.max(np.stack(others, axis=1), axis=1)
