"""Mel-frequency cepstral coefficients, implemented from scratch (Sec. 4.2).

The paper extracts 14-dimensional MFCC vectors from 30 ms sliding windows
with 20 ms overlap (i.e. a 10 ms hop).  The classic pipeline is used:
pre-emphasis -> Hamming window -> power spectrum -> mel filterbank ->
log -> DCT-II.
"""

from __future__ import annotations

import numpy as np

from repro.audio.waveform import Waveform
from repro.errors import AudioError

#: Paper parameters.
NUM_COEFFICIENTS = 14
WINDOW_SECONDS = 0.030
HOP_SECONDS = 0.010  # 30 ms window with 20 ms overlap
NUM_MEL_FILTERS = 24
PRE_EMPHASIS = 0.97


def hz_to_mel(hz: np.ndarray | float) -> np.ndarray | float:
    """Convert frequency in Hz to the mel scale."""
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=np.float64) / 700.0)


def mel_to_hz(mel: np.ndarray | float) -> np.ndarray | float:
    """Convert mel-scale values back to Hz."""
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=np.float64) / 2595.0) - 1.0)


def mel_filterbank(
    num_filters: int, fft_size: int, sample_rate: int, fmin: float = 80.0
) -> np.ndarray:
    """Triangular mel filterbank of shape ``(num_filters, fft_size // 2 + 1)``."""
    if num_filters < 1:
        raise AudioError("need at least one mel filter")
    fmax = sample_rate / 2.0
    if fmin >= fmax:
        raise AudioError(f"fmin {fmin} must be below Nyquist {fmax}")
    mel_points = np.linspace(hz_to_mel(fmin), hz_to_mel(fmax), num_filters + 2)
    hz_points = np.asarray(mel_to_hz(mel_points))
    bin_freqs = np.linspace(0.0, fmax, fft_size // 2 + 1)

    bank = np.zeros((num_filters, bin_freqs.size))
    for m in range(num_filters):
        left, centre, right = hz_points[m], hz_points[m + 1], hz_points[m + 2]
        rising = (bin_freqs - left) / max(centre - left, 1e-9)
        falling = (right - bin_freqs) / max(right - centre, 1e-9)
        bank[m] = np.clip(np.minimum(rising, falling), 0.0, None)
    return bank


def _dct_matrix(num_coefficients: int, num_filters: int) -> np.ndarray:
    """Orthonormal DCT-II matrix of shape ``(coefficients, filters)``."""
    n = np.arange(num_filters)
    k = np.arange(num_coefficients)[:, None]
    matrix = np.cos(np.pi * k * (2 * n + 1) / (2.0 * num_filters))
    matrix *= np.sqrt(2.0 / num_filters)
    matrix[0] /= np.sqrt(2.0)
    return matrix


def frame_signal(
    samples: np.ndarray, sample_rate: int, window_seconds: float, hop_seconds: float
) -> np.ndarray:
    """Slice a signal into overlapping frames ``(num_frames, frame_length)``."""
    frame_length = int(round(window_seconds * sample_rate))
    hop_length = int(round(hop_seconds * sample_rate))
    if frame_length < 2 or hop_length < 1:
        raise AudioError("window/hop too small for the sample rate")
    if samples.size < frame_length:
        return np.zeros((0, frame_length))
    num_frames = 1 + (samples.size - frame_length) // hop_length
    indices = (
        np.arange(frame_length)[None, :]
        + hop_length * np.arange(num_frames)[:, None]
    )
    return samples[indices]


def mfcc(
    waveform: Waveform,
    num_coefficients: int = NUM_COEFFICIENTS,
    window_seconds: float = WINDOW_SECONDS,
    hop_seconds: float = HOP_SECONDS,
    num_filters: int = NUM_MEL_FILTERS,
    pre_emphasis: float = PRE_EMPHASIS,
) -> np.ndarray:
    """Extract MFCC vectors: shape ``(num_frames, num_coefficients)``.

    Returns an empty ``(0, num_coefficients)`` array when the waveform is
    shorter than one analysis window.
    """
    if num_coefficients < 1 or num_coefficients > num_filters:
        raise AudioError(
            f"num_coefficients must be in [1, {num_filters}], got {num_coefficients}"
        )
    samples = waveform.samples
    if samples.size == 0:
        return np.zeros((0, num_coefficients))
    emphasised = np.empty_like(samples)
    emphasised[0] = samples[0]
    emphasised[1:] = samples[1:] - pre_emphasis * samples[:-1]

    frames = frame_signal(emphasised, waveform.sample_rate, window_seconds, hop_seconds)
    if frames.shape[0] == 0:
        return np.zeros((0, num_coefficients))

    window = np.hamming(frames.shape[1])
    spectra = np.fft.rfft(frames * window, axis=1)
    power = (np.abs(spectra) ** 2) / frames.shape[1]

    bank = mel_filterbank(num_filters, frames.shape[1], waveform.sample_rate)
    mel_energy = power @ bank.T
    log_energy = np.log(np.maximum(mel_energy, 1e-12))

    dct = _dct_matrix(num_coefficients, num_filters)
    return log_energy @ dct.T
