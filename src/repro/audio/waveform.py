"""Waveform model: a mono PCM audio track.

Samples are ``float64`` in ``[-1, 1]``.  The synthetic corpus uses a
modest sample rate (8 kHz) which is plenty for MFCC-based speaker
analysis while keeping feature extraction fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AudioError

#: Default sample rate of the synthetic corpus.
DEFAULT_SAMPLE_RATE = 8000


@dataclass
class Waveform:
    """Mono audio samples at a fixed sample rate.

    Attributes
    ----------
    samples:
        1-D float array in ``[-1, 1]``.
    sample_rate:
        Samples per second (> 0).
    """

    samples: np.ndarray = field(repr=False)
    sample_rate: int = DEFAULT_SAMPLE_RATE

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=np.float64)
        if self.samples.ndim != 1:
            raise AudioError(f"samples must be 1-D, got {self.samples.ndim}-D")
        if self.sample_rate <= 0:
            raise AudioError(f"sample_rate must be positive, got {self.sample_rate}")
        peak = np.abs(self.samples).max() if self.samples.size else 0.0
        if peak > 1.0 + 1e-9:
            raise AudioError(f"samples exceed [-1, 1] (peak {peak:.3f})")

    def __len__(self) -> int:
        return int(self.samples.size)

    @property
    def duration(self) -> float:
        """Length in seconds."""
        return self.samples.size / self.sample_rate

    def slice_seconds(self, start: float, stop: float) -> "Waveform":
        """Return samples in the time window ``[start, stop)`` seconds."""
        if start < 0 or stop <= start:
            raise AudioError(f"invalid window [{start}, {stop})")
        i0 = int(round(start * self.sample_rate))
        i1 = int(round(stop * self.sample_rate))
        i1 = min(i1, self.samples.size)
        if i0 >= self.samples.size:
            raise AudioError(
                f"window starts at {start:.2f}s but audio is {self.duration:.2f}s"
            )
        return Waveform(samples=self.samples[i0:i1].copy(), sample_rate=self.sample_rate)

    def rms(self) -> float:
        """Root-mean-square amplitude."""
        if self.samples.size == 0:
            return 0.0
        return float(np.sqrt((self.samples**2).mean()))

    @staticmethod
    def concatenate(parts: list["Waveform"]) -> "Waveform":
        """Join waveforms; all must share one sample rate."""
        if not parts:
            raise AudioError("cannot concatenate zero waveforms")
        rate = parts[0].sample_rate
        for part in parts[1:]:
            if part.sample_rate != rate:
                raise AudioError("sample rates differ across parts")
        return Waveform(
            samples=np.concatenate([part.samples for part in parts]),
            sample_rate=rate,
        )

    @staticmethod
    def silence(duration: float, sample_rate: int = DEFAULT_SAMPLE_RATE) -> "Waveform":
        """A silent waveform of ``duration`` seconds."""
        if duration < 0:
            raise AudioError("duration must be >= 0")
        count = int(round(duration * sample_rate))
        return Waveform(samples=np.zeros(count), sample_rate=sample_rate)
