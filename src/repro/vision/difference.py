"""Frame-difference signals used by the shot-boundary detector (Sec. 3.1).

The paper detects cuts from inter-frame differences with thresholds that
adapt to the *local* activity of the sequence.  This module supplies the
raw difference signal; :mod:`repro.core.shots` supplies the adaptive
thresholding on top of it.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import VisionError
from repro.video.frame import Frame
from repro.video.stream import VideoStream
from repro.vision.color import TOTAL_BINS, quantize_hsv, rgb_to_hsv


def pixel_difference(a: Frame, b: Frame) -> float:
    """Mean absolute intensity difference between two frames, in [0, 1]."""
    if a.shape != b.shape:
        raise VisionError(f"frame shapes differ: {a.shape} vs {b.shape}")
    return float(np.abs(a.as_float() - b.as_float()).mean())


def histogram_difference(a: Frame, b: Frame) -> float:
    """Half the L1 distance between HSV histograms, in [0, 1].

    0 means identical colour content; 1 means disjoint content.  This is
    the statistic the shot detector thresholds.
    """
    hist_a = _frame_histogram(a)
    hist_b = _frame_histogram(b)
    return 0.5 * float(np.abs(hist_a - hist_b).sum())


def _frame_histogram(frame: Frame) -> np.ndarray:
    hsv = rgb_to_hsv(frame.pixels)
    bins = quantize_hsv(hsv)
    counts = np.bincount(bins.ravel(), minlength=TOTAL_BINS).astype(np.float64)
    return counts / counts.sum()


def difference_signal(stream: VideoStream) -> np.ndarray:
    """Inter-frame histogram difference ``d[i] = diff(frame_i, frame_{i+1})``.

    Returns an array of length ``len(stream) - 1``; element ``i`` is the
    difference across the boundary between frames ``i`` and ``i + 1``.
    """
    if len(stream) < 2:
        return np.zeros(0, dtype=np.float64)
    histograms = [_frame_histogram(frame) for frame in stream]
    diffs = np.empty(len(histograms) - 1, dtype=np.float64)
    for i in range(len(histograms) - 1):
        diffs[i] = 0.5 * float(np.abs(histograms[i] - histograms[i + 1]).sum())
    return diffs


def signal_from_frames(frames: Sequence[Frame]) -> np.ndarray:
    """Same as :func:`difference_signal` but for a bare frame sequence."""
    if len(frames) < 2:
        return np.zeros(0, dtype=np.float64)
    histograms = [_frame_histogram(frame) for frame in frames]
    return np.array(
        [
            0.5 * float(np.abs(histograms[i] - histograms[i + 1]).sum())
            for i in range(len(histograms) - 1)
        ]
    )
