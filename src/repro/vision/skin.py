"""Skin-region detection (Sec. 4.1).

Pipeline per the paper: a Gaussian colour model segments candidate skin
pixels, a texture filter removes busy regions (real skin is smooth),
morphological opening/closing cleans the mask, and shape analysis keeps
regions of considerable width and height.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.frame import Frame
from repro.vision.colormodel import GaussianColorModel
from repro.vision.morphology import close_mask, open_mask
from repro.vision.regions import Region, filter_regions, label_regions

#: Chromaticity Gaussian covering the range of human (and synthetic-corpus)
#: skin tones; see DESIGN.md for calibration notes.
DEFAULT_SKIN_MODEL = GaussianColorModel(
    mean=np.array([0.46, 0.335]),
    covariance=np.array([[0.0045, 0.0], [0.0, 0.0006]]),
    threshold=2.5,
    min_brightness=0.2,
    max_brightness=0.92,
)

#: Local-variance ceiling for the texture filter: skin is smooth.
DEFAULT_TEXTURE_VARIANCE = 0.02

#: The paper's close-up rule: skin region larger than 20% of the frame.
SKIN_CLOSEUP_FRACTION = 0.20


@dataclass(frozen=True)
class SkinDetection:
    """Result of skin analysis on one frame.

    Attributes
    ----------
    regions:
        Accepted skin regions, largest first.
    mask_fraction:
        Fraction of frame pixels in the raw skin mask.
    largest_fraction:
        Area fraction of the largest accepted region (0 when none).
    has_skin / has_closeup:
        Whether any region was accepted / whether the paper's 20%
        close-up rule fired.
    """

    regions: tuple[Region, ...]
    mask_fraction: float
    largest_fraction: float
    has_skin: bool
    has_closeup: bool


def _local_variance(gray: np.ndarray, radius: int = 1) -> np.ndarray:
    """Variance of the ``(2r+1)`` square neighbourhood around each pixel."""
    from repro.vision.texture import _integral_image, _window_means

    integral = _integral_image(gray)
    integral_sq = _integral_image(gray**2)
    mean = _window_means(integral, radius + 1)
    mean_sq = _window_means(integral_sq, radius + 1)
    return np.maximum(mean_sq - mean**2, 0.0)


def skin_mask(
    frame: Frame,
    model: GaussianColorModel = DEFAULT_SKIN_MODEL,
    texture_variance: float = DEFAULT_TEXTURE_VARIANCE,
    morphology_radius: int = 1,
) -> np.ndarray:
    """Binary skin mask after colour, texture and morphology stages."""
    mask = model.segment(frame.pixels)
    smooth = _local_variance(frame.gray()) <= texture_variance
    mask &= smooth
    mask = open_mask(mask, morphology_radius)
    mask = close_mask(mask, morphology_radius)
    return mask


def detect_skin(
    frame: Frame,
    model: GaussianColorModel = DEFAULT_SKIN_MODEL,
    min_area_fraction: float = 0.01,
    closeup_fraction: float = SKIN_CLOSEUP_FRACTION,
) -> SkinDetection:
    """Detect skin regions and the paper's "skin close-up" condition.

    A close-up is a single skin region covering more than
    ``closeup_fraction`` of the frame (paper: 20%).
    """
    mask = skin_mask(frame, model=model)
    _, regions = label_regions(mask, connectivity=8)
    kept = filter_regions(
        regions,
        frame.shape,
        min_area_fraction=min_area_fraction,
        min_height=3,
        min_width=3,
    )
    largest = max((r.area_fraction(frame.shape) for r in kept), default=0.0)
    return SkinDetection(
        regions=tuple(kept),
        mask_fraction=float(mask.mean()),
        largest_fraction=largest,
        has_skin=bool(kept),
        has_closeup=largest >= closeup_fraction,
    )
