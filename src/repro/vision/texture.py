"""Tamura coarseness texture features (Sec. 3.1).

The paper attaches a 10-dimensional Tamura coarseness vector to each
representative frame.  We compute classic Tamura coarseness — for every
pixel, the neighbourhood size ``2^k`` that maximises the average
intensity difference between opposite flanking windows — and summarise it
as a 10-dimensional descriptor: coarseness averaged over a fixed 2 x 5
block grid, normalised to ``[0, 1]``.

Integral images keep the whole computation ``O(K * H * W)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VisionError
from repro.video.frame import Frame

#: Number of scales 2^0 .. 2^(K-1) examined per pixel.
NUM_SCALES = 5
#: Block grid producing the 10-dimensional descriptor.
GRID_ROWS = 2
GRID_COLS = 5
TEXTURE_DIM = GRID_ROWS * GRID_COLS


def _integral_image(gray: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top/left border row and column."""
    integral = np.zeros((gray.shape[0] + 1, gray.shape[1] + 1), dtype=np.float64)
    integral[1:, 1:] = gray.cumsum(axis=0).cumsum(axis=1)
    return integral


def _window_means(integral: np.ndarray, half: int) -> np.ndarray:
    """Mean intensity of the ``(2*half) x (2*half)`` window centred at each
    pixel, computed with edge clamping."""
    height, width = integral.shape[0] - 1, integral.shape[1] - 1
    ys = np.arange(height)
    xs = np.arange(width)
    y0 = np.clip(ys - half, 0, height)
    y1 = np.clip(ys + half, 0, height)
    x0 = np.clip(xs - half, 0, width)
    x1 = np.clip(xs + half, 0, width)
    area = np.maximum((y1 - y0)[:, None] * (x1 - x0)[None, :], 1)
    total = (
        integral[np.ix_(y1, x1)]
        - integral[np.ix_(y0, x1)]
        - integral[np.ix_(y1, x0)]
        + integral[np.ix_(y0, x0)]
    )
    return total / area


def coarseness_map(gray: np.ndarray, num_scales: int = NUM_SCALES) -> np.ndarray:
    """Per-pixel Tamura optimal neighbourhood size ``S_best in {1, 2, 4, ...}``.

    For each scale ``k`` the horizontal and vertical contrasts between
    opposite windows of size ``2^k`` are measured; the scale with the
    largest contrast wins and contributes ``2^k`` to the map.
    """
    if gray.ndim != 2:
        raise VisionError(f"expected a 2-D grayscale image, got {gray.ndim}-D")
    if num_scales < 1:
        raise VisionError("need at least one scale")
    gray = gray.astype(np.float64)
    height, width = gray.shape
    integral = _integral_image(gray)

    best_energy = np.full((height, width), -1.0)
    best_size = np.ones((height, width), dtype=np.float64)
    for k in range(num_scales):
        size = 2**k
        if 2 * size > min(height, width):
            break
        means = _window_means(integral, size)
        # Horizontal contrast: windows centred size pixels left/right.
        e_h = np.zeros_like(means)
        e_h[:, size:-size] = np.abs(
            means[:, 2 * size :] - means[:, : -2 * size]
        )[:, : e_h.shape[1] - 2 * size]
        # Vertical contrast: windows centred size pixels up/down.
        e_v = np.zeros_like(means)
        e_v[size:-size, :] = np.abs(
            means[2 * size :, :] - means[: -2 * size, :]
        )[: e_v.shape[0] - 2 * size, :]
        energy = np.maximum(e_h, e_v)
        better = energy > best_energy
        best_energy[better] = energy[better]
        best_size[better] = float(size)
    return best_size


def tamura_coarseness(frame: Frame | np.ndarray, num_scales: int = NUM_SCALES) -> np.ndarray:
    """The paper's 10-dimensional coarseness descriptor, in ``[0, 1]``.

    The per-pixel optimal-size map is averaged inside each cell of a
    ``2 x 5`` grid, then divided by the largest scale so every component
    lies in ``[0, 1]`` (1 = maximally coarse texture).
    """
    if isinstance(frame, Frame):
        gray = frame.gray()
    else:
        arr = np.asarray(frame)
        if arr.ndim == 3:
            gray = Frame(pixels=arr).gray()
        else:
            gray = arr.astype(np.float64)
    sizes = coarseness_map(gray, num_scales=num_scales)
    height, width = sizes.shape
    max_size = float(2 ** (num_scales - 1))
    descriptor = np.empty(TEXTURE_DIM, dtype=np.float64)
    row_edges = np.linspace(0, height, GRID_ROWS + 1).astype(int)
    col_edges = np.linspace(0, width, GRID_COLS + 1).astype(int)
    cell = 0
    for r in range(GRID_ROWS):
        for c in range(GRID_COLS):
            block = sizes[row_edges[r] : row_edges[r + 1], col_edges[c] : col_edges[c + 1]]
            descriptor[cell] = block.mean() / max_size if block.size else 0.0
            cell += 1
    return descriptor


def texture_distance_squared(t1: np.ndarray, t2: np.ndarray) -> float:
    """``sum_k (t1[k] - t2[k])^2`` — the texture term inside Eq. (1)."""
    t1 = np.asarray(t1, dtype=np.float64)
    t2 = np.asarray(t2, dtype=np.float64)
    if t1.shape != t2.shape:
        raise VisionError(f"texture shapes differ: {t1.shape} vs {t2.shape}")
    return float(((t1 - t2) ** 2).sum())
