"""Intra-shot motion analysis.

Sec. 4.1 observes that man-made frames (slides, clip art, black frames)
"contain less motion and color information when compared with other
natural frame images".  The cue detectors work per representative
frame; this module supplies the *motion* side for callers that hold the
full stream: the activity profile inside a shot, and a static/dynamic
classification of shots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VisionError
from repro.video.stream import VideoStream
from repro.vision.compressed import dc_image

#: Shots whose mean activity is below this are *static*.
STATIC_THRESHOLD = 0.004


@dataclass(frozen=True)
class MotionProfile:
    """Motion statistics of one frame span.

    Attributes
    ----------
    mean / peak:
        Mean and maximum inter-frame DC-image difference in the span.
    activity:
        Fraction of transitions above the static threshold.
    """

    mean: float
    peak: float
    activity: float

    @property
    def is_static(self) -> bool:
        """True for near-still footage (slides, stills, black)."""
        return self.mean < STATIC_THRESHOLD


def motion_profile(
    stream: VideoStream, start: int, stop: int, block: int = 8
) -> MotionProfile:
    """Motion profile of frames ``[start, stop)``.

    Uses DC-image differences, which are cheap and insensitive to the
    sensor noise the generator (and real cameras) add.
    """
    if not 0 <= start < stop <= len(stream):
        raise VisionError(f"invalid span [{start}, {stop}) for {len(stream)} frames")
    if stop - start < 2:
        return MotionProfile(mean=0.0, peak=0.0, activity=0.0)
    images = [dc_image(stream[i], block) for i in range(start, stop)]
    diffs = np.array(
        [float(np.abs(images[i] - images[i + 1]).mean()) for i in range(len(images) - 1)]
    )
    return MotionProfile(
        mean=float(diffs.mean()),
        peak=float(diffs.max()),
        activity=float((diffs >= STATIC_THRESHOLD).mean()),
    )


def shot_motion_profiles(
    stream: VideoStream, spans: list[tuple[int, int]], block: int = 8
) -> list[MotionProfile]:
    """Motion profiles for a list of shot spans."""
    return [motion_profile(stream, start, stop, block) for start, stop in spans]
