"""Face detection (Sec. 4.1).

The paper's face detector [18, 20] runs: Gaussian skin segmentation ->
shape analysis -> facial feature extraction -> template-curve-based
verification.  We implement each stage from scratch:

1. candidate regions come from the skin detector;
2. shape analysis keeps roughly head-shaped regions (aspect ratio and
   fill ratio of an ellipse);
3. facial features are dark blobs inside the upper part of the candidate
   (eyes) and the lower part (mouth);
4. template verification correlates the region's row-width profile with
   an elliptical template curve.

The paper's event rules use a *face close-up*: a face larger than 10% of
the frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.frame import Frame
from repro.vision.colormodel import GaussianColorModel
from repro.vision.morphology import close_mask, open_mask
from repro.vision.regions import Region, label_regions
from repro.vision.skin import DEFAULT_SKIN_MODEL

#: The paper's close-up rule: face larger than 10% of the frame.
FACE_CLOSEUP_FRACTION = 0.10

#: Acceptable head-shape geometry.
MIN_ASPECT = 0.6
MAX_ASPECT = 2.2
MIN_FILL = 0.5

#: Minimum correlation between the row-width profile and the ellipse
#: template for verification to pass.
TEMPLATE_CORRELATION = 0.7


@dataclass(frozen=True)
class FaceDetection:
    """Result of face analysis on one frame.

    Attributes
    ----------
    faces:
        Verified face regions, largest first.
    has_face:
        True when at least one face was verified.
    has_closeup:
        True when the largest face exceeds the 10% close-up rule.
    largest_fraction:
        Area fraction of the largest verified face (0 when none).
    """

    faces: tuple[Region, ...]
    has_face: bool
    has_closeup: bool
    largest_fraction: float


def _row_width_profile(mask: np.ndarray, region: Region) -> np.ndarray:
    """Width of the region at each bounding-box row, normalised to [0, 1]."""
    top, left, bottom, right = region.bbox
    window = mask[top:bottom, left:right]
    widths = window.sum(axis=1).astype(np.float64)
    peak = widths.max()
    return widths / peak if peak > 0 else widths


def _ellipse_template(rows: int) -> np.ndarray:
    """Row-width profile of an ideal ellipse with the same height."""
    ys = (np.arange(rows) + 0.5) / rows  # centre of each row in [0, 1]
    half_width = np.sqrt(np.maximum(1.0 - (2.0 * ys - 1.0) ** 2, 0.0))
    return half_width


def template_curve_score(mask: np.ndarray, region: Region) -> float:
    """Pearson correlation between the region profile and the ellipse.

    Returns a value in ``[-1, 1]``; faces (roughly elliptical blobs)
    score close to 1, rectangular or ragged blobs score much lower.
    """
    profile = _row_width_profile(mask, region)
    if profile.size < 4:
        return 0.0
    template = _ellipse_template(profile.size)
    p_std = profile.std()
    t_std = template.std()
    if p_std == 0 or t_std == 0:
        return 0.0
    return float(np.corrcoef(profile, template)[0, 1])


def _facial_feature_count(frame: Frame, region: Region) -> tuple[int, int]:
    """Count dark facial-feature blobs in the eye band and mouth band.

    Eyes live in the 15-55% vertical band of the face box, the mouth in
    the 60-95% band.  A feature blob is a connected dark (luma < 0.35)
    component of at least 1 pixel inside the band.
    """
    top, left, bottom, right = region.bbox
    gray = frame.gray()[top:bottom, left:right]
    dark = gray < 0.35
    height = dark.shape[0]
    eye_band = dark[int(0.15 * height) : int(0.55 * height), :]
    mouth_band = dark[int(0.60 * height) : int(0.95 * height), :]
    eye_count = 0
    mouth_count = 0
    if eye_band.size:
        _, eye_regions = label_regions(eye_band, connectivity=8)
        eye_count = len(eye_regions)
    if mouth_band.size:
        _, mouth_regions = label_regions(mouth_band, connectivity=8)
        mouth_count = len(mouth_regions)
    return eye_count, mouth_count


def verify_face(frame: Frame, mask: np.ndarray, region: Region) -> bool:
    """Full verification: shape, facial features, template curve."""
    if not MIN_ASPECT <= region.aspect_ratio <= MAX_ASPECT:
        return False
    if region.fill_ratio < MIN_FILL:
        return False
    eye_count, mouth_count = _facial_feature_count(frame, region)
    if eye_count < 1 or mouth_count < 1:
        return False
    return template_curve_score(mask, region) >= TEMPLATE_CORRELATION


def face_candidate_mask(
    frame: Frame, model: GaussianColorModel = DEFAULT_SKIN_MODEL
) -> np.ndarray:
    """Skin-colour mask prepared for face analysis.

    Unlike the general skin mask, eye/mouth holes are *closed* first so
    each face is one solid candidate region whose outline the template
    curve can be matched against; a light opening then removes speckle.
    """
    mask = model.segment(frame.pixels)
    mask = close_mask(mask, radius=2)
    mask = open_mask(mask, radius=1)
    return mask


def detect_faces(
    frame: Frame,
    model: GaussianColorModel = DEFAULT_SKIN_MODEL,
    min_area_fraction: float = 0.01,
    closeup_fraction: float = FACE_CLOSEUP_FRACTION,
) -> FaceDetection:
    """Detect and verify faces in a frame."""
    mask = face_candidate_mask(frame, model=model)
    _, regions = label_regions(mask, connectivity=8)
    faces = []
    for region in regions:
        if region.area_fraction(frame.shape) < min_area_fraction:
            continue
        if verify_face(frame, mask, region):
            faces.append(region)
    largest = max((r.area_fraction(frame.shape) for r in faces), default=0.0)
    return FaceDetection(
        faces=tuple(faces),
        has_face=bool(faces),
        has_closeup=largest >= closeup_fraction,
        largest_fraction=largest,
    )
