"""Compressed-domain analysis: DC-coefficient images (after ref. [10]).

The paper's original shot detector "has been developed to work on MPEG
compressed videos": instead of decoding full frames it reads each 8x8
block's DC coefficient, which is (up to scale) the block mean.  We
reproduce that data path — a DC image is the frame downsampled by block
averaging — so the adaptive-threshold detector can run on either full
frames or the 64x-smaller DC stream, exactly like the reference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VisionError
from repro.video.frame import Frame
from repro.video.stream import VideoStream

#: MPEG macro-block DCT size.
DEFAULT_BLOCK = 8


def dc_image(frame: Frame | np.ndarray, block: int = DEFAULT_BLOCK) -> np.ndarray:
    """The DC-coefficient image of a frame: per-block mean luma.

    Returns a float array of shape ``(ceil(H / block), ceil(W / block))``
    in ``[0, 1]``.  This is what an MPEG decoder recovers from the DC
    terms without inverse-transforming the blocks.
    """
    if block < 1:
        raise VisionError("block size must be >= 1")
    gray = frame.gray() if isinstance(frame, Frame) else np.asarray(frame, dtype=np.float64)
    if gray.ndim == 3:
        gray = Frame(pixels=np.asarray(frame)).gray()
    if gray.ndim != 2:
        raise VisionError(f"expected a frame or 2-D image, got {gray.ndim}-D")
    height, width = gray.shape
    out_h = -(-height // block)
    out_w = -(-width // block)
    padded = np.zeros((out_h * block, out_w * block))
    padded[:height, :width] = gray
    # Edge blocks replicate the border so padding does not bias means.
    if out_h * block > height:
        padded[height:, :width] = gray[-1:, :]
    if out_w * block > width:
        padded[:, width:] = padded[:, width - 1 : width]
    return padded.reshape(out_h, block, out_w, block).mean(axis=(1, 3))


def dc_difference(a: Frame, b: Frame, block: int = DEFAULT_BLOCK) -> float:
    """Mean absolute DC-image difference between two frames, in [0, 1]."""
    if a.shape != b.shape:
        raise VisionError(f"frame shapes differ: {a.shape} vs {b.shape}")
    return float(np.abs(dc_image(a, block) - dc_image(b, block)).mean())


def dc_difference_signal(
    stream: VideoStream, block: int = DEFAULT_BLOCK
) -> np.ndarray:
    """Inter-frame DC difference signal (compressed-domain Fig. 5 input).

    Computing this touches ``1 / block**2`` of the pixels the full-frame
    histogram signal needs, which is the whole point of compressed-
    domain detection.
    """
    if len(stream) < 2:
        return np.zeros(0)
    images = [dc_image(frame, block) for frame in stream]
    return np.array(
        [
            float(np.abs(images[i] - images[i + 1]).mean())
            for i in range(len(images) - 1)
        ]
    )
