"""Special-frame classification: black / slide / clip-art / sketch (Sec. 4.1).

The paper observes that man-made frames (slides, clip art, black frames)
carry less motion and colour information than natural footage and then
separates them using video text and gray-level information.  Our
classifier works per frame:

* **man-made test** — low colour diversity (histogram entropy) and a
  dominant flat background;
* **black** — nearly no luminance anywhere;
* **slide** — bright background with horizontal dark text bands;
* **sketch** — bright background with thin dark strokes but no text-band
  structure;
* **clip art** — flat saturated colour regions without text bands.

Anything else is *natural* footage.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.video.frame import Frame
from repro.vision.color import TOTAL_BINS, quantize_hsv, rgb_to_hsv


class SpecialFrameKind(str, Enum):
    """Category assigned to a representative frame."""

    NATURAL = "natural"
    BLACK = "black"
    SLIDE = "slide"
    CLIPART = "clipart"
    SKETCH = "sketch"

    @property
    def is_man_made(self) -> bool:
        """True for the paper's man-made frame types."""
        return self is not SpecialFrameKind.NATURAL

    @property
    def is_slide_like(self) -> bool:
        """Slide or clip-art — the evidence the Presentation rule needs."""
        return self in (SpecialFrameKind.SLIDE, SpecialFrameKind.CLIPART)


#: Thresholds, grouped for easy ablation.
BLACK_LUMA = 0.08
MANMADE_LUMA = 0.6
MANMADE_ENTROPY = 1.3
MANMADE_BACKGROUND = 0.65
TEXT_BAND_MIN = 2
CLIPART_SATURATION = 0.15
SLIDE_DARK_FRACTION = 0.06


def histogram_entropy(frame: Frame) -> float:
    """Shannon entropy (bits) of the 256-bin HSV histogram."""
    hsv = rgb_to_hsv(frame.pixels)
    bins = quantize_hsv(hsv)
    counts = np.bincount(bins.ravel(), minlength=TOTAL_BINS).astype(np.float64)
    probabilities = counts / counts.sum()
    nonzero = probabilities[probabilities > 0]
    return float(-(nonzero * np.log2(nonzero)).sum())


def dominant_color_fraction(frame: Frame) -> float:
    """Fraction of pixels in the single most common HSV bin."""
    hsv = rgb_to_hsv(frame.pixels)
    bins = quantize_hsv(hsv)
    counts = np.bincount(bins.ravel(), minlength=TOTAL_BINS)
    return float(counts.max() / counts.sum())


def text_band_count(frame: Frame, dark_threshold: float = 0.5) -> int:
    """Count horizontal dark text bands on a bright background.

    A text band is a maximal run of rows whose dark-pixel fraction
    exceeds 8%, separated from the next band by at least one clean row.
    """
    gray = frame.gray()
    dark_rows = (gray < dark_threshold).mean(axis=1) > 0.08
    bands = 0
    in_band = False
    for row_is_text in dark_rows:
        if row_is_text and not in_band:
            bands += 1
            in_band = True
        elif not row_is_text:
            in_band = False
    return bands


def classify_special_frame(frame: Frame) -> SpecialFrameKind:
    """Classify one representative frame.

    Man-made graphics are *bright* frames dominated by a single flat
    background colour (or with almost no colour diversity).  Among
    those, saturated shape content means clip art, substantial dark
    content with horizontal bands means a slide, and sparse thin
    strokes mean a sketch.
    """
    gray = frame.gray()
    mean_luma = float(gray.mean())

    if mean_luma < BLACK_LUMA and float(gray.std()) < 0.05:
        return SpecialFrameKind.BLACK

    entropy = histogram_entropy(frame)
    background = dominant_color_fraction(frame)
    man_made = mean_luma > MANMADE_LUMA and (
        background >= MANMADE_BACKGROUND or entropy <= MANMADE_ENTROPY
    )
    if not man_made:
        return SpecialFrameKind.NATURAL

    saturation = rgb_to_hsv(frame.pixels)[:, :, 1]
    saturated_fraction = float((saturation > 0.4).mean())
    if saturated_fraction > CLIPART_SATURATION:
        return SpecialFrameKind.CLIPART

    dark_fraction = float((gray < 0.5).mean())
    bands = text_band_count(frame)
    if dark_fraction >= SLIDE_DARK_FRACTION and bands >= TEXT_BAND_MIN:
        return SpecialFrameKind.SLIDE
    return SpecialFrameKind.SKETCH
