"""Gaussian colour models over chromaticity space.

The paper segments skin and blood-red regions with Gaussian colour
models (Sec. 4.1).  We model colours in normalised ``(r, g)``
chromaticity space — ``r = R / (R+G+B)``, ``g = G / (R+G+B)`` — which
factors out illumination intensity, and score pixels by Mahalanobis
distance under a 2-D Gaussian.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import VisionError


def chromaticity(rgb: np.ndarray) -> np.ndarray:
    """Map an RGB image to normalised ``(r, g)`` chromaticity.

    Returns an ``(H, W, 2)`` float array.  Pixels that are pure black get
    the neutral chromaticity ``(1/3, 1/3)``.
    """
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise VisionError(f"expected (H, W, 3) image, got {rgb.shape}")
    rgb = rgb.astype(np.float64)
    total = rgb.sum(axis=2)
    safe_total = np.where(total > 0, total, 3.0)
    r = np.where(total > 0, rgb[:, :, 0] / safe_total, 1.0 / 3.0)
    g = np.where(total > 0, rgb[:, :, 1] / safe_total, 1.0 / 3.0)
    return np.stack([r, g], axis=2)


@dataclass
class GaussianColorModel:
    """2-D Gaussian over ``(r, g)`` chromaticity with a brightness gate.

    Attributes
    ----------
    mean:
        ``(2,)`` mean chromaticity.
    covariance:
        ``(2, 2)`` covariance; must be positive definite.
    threshold:
        Maximum Mahalanobis distance (squared) for a pixel to match.
    min_brightness / max_brightness:
        Inclusive gate on mean RGB intensity in ``[0, 1]``; keeps very
        dark shadows and blown highlights out of the mask.
    """

    mean: np.ndarray
    covariance: np.ndarray
    threshold: float = 4.0
    min_brightness: float = 0.15
    max_brightness: float = 0.98
    _precision: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=np.float64).reshape(2)
        self.covariance = np.asarray(self.covariance, dtype=np.float64).reshape(2, 2)
        if self.threshold <= 0:
            raise VisionError("threshold must be positive")
        eigenvalues = np.linalg.eigvalsh(self.covariance)
        if eigenvalues.min() <= 0:
            raise VisionError("covariance must be positive definite")
        self._precision = np.linalg.inv(self.covariance)

    @classmethod
    def fit(
        cls,
        samples: np.ndarray,
        threshold: float = 4.0,
        min_brightness: float = 0.15,
        max_brightness: float = 0.98,
        regularisation: float = 1e-6,
    ) -> "GaussianColorModel":
        """Fit the Gaussian to ``(N, 2)`` chromaticity samples."""
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[1] != 2:
            raise VisionError(f"samples must be (N, 2), got {samples.shape}")
        if samples.shape[0] < 3:
            raise VisionError("need at least 3 samples to fit a covariance")
        mean = samples.mean(axis=0)
        centred = samples - mean
        cov = centred.T @ centred / (samples.shape[0] - 1)
        cov += regularisation * np.eye(2)
        return cls(
            mean=mean,
            covariance=cov,
            threshold=threshold,
            min_brightness=min_brightness,
            max_brightness=max_brightness,
        )

    def mahalanobis_squared(self, rgb: np.ndarray) -> np.ndarray:
        """Squared Mahalanobis distance of each pixel's chromaticity."""
        chroma = chromaticity(rgb)
        diff = chroma - self.mean
        return np.einsum("hwi,ij,hwj->hw", diff, self._precision, diff)

    def segment(self, rgb: np.ndarray) -> np.ndarray:
        """Boolean mask of pixels matching the colour model."""
        if rgb.dtype == np.uint8:
            brightness = rgb.astype(np.float64).mean(axis=2) / 255.0
        else:
            brightness = rgb.astype(np.float64).mean(axis=2)
        distances = self.mahalanobis_squared(rgb)
        mask = distances <= self.threshold
        mask &= brightness >= self.min_brightness
        mask &= brightness <= self.max_brightness
        return mask
