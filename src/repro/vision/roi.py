"""Region-of-interest extraction: the object-based access path.

The paper opens by noting the two accepted access approaches —
shot-based (its focus) and *object-based* — and its intro lists ROI
segmentation among the available parsing tools.  This module supplies
that substrate: salient foreground regions are segmented from each
representative frame by colour distinctness against the frame's
dominant background, and each region is summarised by a compact
descriptor (colour + shape + position) suitable for object-level
indexing and matching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VisionError
from repro.video.frame import Frame
from repro.vision.color import quantize_hsv, rgb_to_hsv
from repro.vision.morphology import close_mask, open_mask
from repro.vision.regions import Region, label_regions

#: Minimum fraction of the frame a region must cover to be an ROI.
MIN_ROI_FRACTION = 0.02
#: Maximum ROIs returned per frame, largest first.
MAX_ROIS = 4
#: Histogram bins treated as "background": the most populated bins up
#: to this cumulative mass.
BACKGROUND_MASS = 0.5


@dataclass(frozen=True)
class RegionOfInterest:
    """One salient region with its descriptor.

    Attributes
    ----------
    region:
        Geometry (bbox, area, centroid) from connected components.
    mean_color:
        Mean RGB of member pixels, in ``[0, 1]``.
    area_fraction:
        Region area over frame area.
    center:
        Centroid in fractional ``(y, x)`` coordinates.
    """

    region: Region
    mean_color: tuple[float, float, float]
    area_fraction: float
    center: tuple[float, float]

    def descriptor(self) -> np.ndarray:
        """8-dim descriptor: RGB, area, centre, aspect, fill."""
        return np.array(
            [
                *self.mean_color,
                self.area_fraction,
                self.center[0],
                self.center[1],
                min(self.region.aspect_ratio, 4.0) / 4.0,
                self.region.fill_ratio,
            ]
        )


def background_mask(frame: Frame, background_mass: float = BACKGROUND_MASS) -> np.ndarray:
    """Boolean mask of background pixels.

    Background = the most common HSV bins, accumulated until they cover
    ``background_mass`` of the frame.  Everything else is foreground
    candidate material.
    """
    if not 0.0 < background_mass < 1.0:
        raise VisionError("background_mass must be in (0, 1)")
    bins = quantize_hsv(rgb_to_hsv(frame.pixels))
    counts = np.bincount(bins.ravel(), minlength=256).astype(np.float64)
    order = np.argsort(counts)[::-1]
    total = counts.sum()
    background_bins = []
    mass = 0.0
    for bin_index in order:
        if mass >= background_mass * total:
            break
        if counts[bin_index] == 0:
            break
        background_bins.append(bin_index)
        mass += counts[bin_index]
    lookup = np.zeros(256, dtype=bool)
    lookup[background_bins] = True
    return lookup[bins]


def extract_rois(
    frame: Frame,
    min_fraction: float = MIN_ROI_FRACTION,
    max_rois: int = MAX_ROIS,
) -> list[RegionOfInterest]:
    """Extract up to ``max_rois`` salient regions, largest first."""
    if max_rois < 1:
        raise VisionError("max_rois must be >= 1")
    foreground = ~background_mask(frame)
    foreground = open_mask(foreground, 1)
    foreground = close_mask(foreground, 1)
    labelled, regions = label_regions(foreground, connectivity=8)

    height, width = frame.height, frame.width
    rgb = frame.as_float()
    labels_needed = [
        region for region in regions
        if region.area_fraction(frame.shape) >= min_fraction
    ][:max_rois]

    rois = []
    for region in labels_needed:
        member = labelled == region.label
        mean_color = tuple(float(c) for c in rgb[member].mean(axis=0))
        rois.append(
            RegionOfInterest(
                region=region,
                mean_color=mean_color,  # type: ignore[arg-type]
                area_fraction=region.area_fraction(frame.shape),
                center=(
                    region.centroid[0] / height,
                    region.centroid[1] / width,
                ),
            )
        )
    return rois


def roi_similarity(a: RegionOfInterest, b: RegionOfInterest) -> float:
    """Similarity of two ROIs in ``[0, 1]`` (1 = identical descriptor).

    A Gaussian kernel over descriptor distance, with colour weighted
    double — object identity is mostly a colour question at this scale.
    """
    da, db = a.descriptor(), b.descriptor()
    weights = np.array([2.0, 2.0, 2.0, 1.0, 0.5, 0.5, 0.5, 0.5])
    distance = float(np.sqrt((weights * (da - db) ** 2).sum()))
    return float(np.exp(-3.0 * distance))


def match_rois(
    query: RegionOfInterest,
    candidates: list[RegionOfInterest],
    threshold: float = 0.5,
) -> list[tuple[RegionOfInterest, float]]:
    """Rank candidate ROIs against a query, filtered by ``threshold``."""
    scored = [
        (candidate, roi_similarity(query, candidate)) for candidate in candidates
    ]
    scored = [(c, s) for c, s in scored if s >= threshold]
    scored.sort(key=lambda item: item[1], reverse=True)
    return scored
