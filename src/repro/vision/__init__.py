"""Vision substrate: colour, histograms, texture, regions, and cue detectors."""

from repro.vision.blood import BloodDetection, detect_blood
from repro.vision.color import hsv_to_rgb, quantize_hsv, rgb_to_hsv
from repro.vision.colormodel import GaussianColorModel, chromaticity
from repro.vision.cues import VisualCues, extract_cues
from repro.vision.difference import (
    difference_signal,
    histogram_difference,
    pixel_difference,
)
from repro.vision.face import FaceDetection, detect_faces
from repro.vision.frames import SpecialFrameKind, classify_special_frame
from repro.vision.histogram import (
    histogram_intersection,
    histogram_l1_distance,
    hsv_histogram,
)
from repro.vision.compressed import dc_difference, dc_difference_signal, dc_image
from repro.vision.morphology import close_mask, dilate, erode, open_mask
from repro.vision.motion import MotionProfile, motion_profile, shot_motion_profiles
from repro.vision.roi import (
    RegionOfInterest,
    extract_rois,
    match_rois,
    roi_similarity,
)
from repro.vision.text import TextLine, detect_text_lines, has_video_text, text_coverage
from repro.vision.regions import Region, filter_regions, label_regions
from repro.vision.skin import SkinDetection, detect_skin
from repro.vision.texture import tamura_coarseness, texture_distance_squared

__all__ = [
    "BloodDetection",
    "FaceDetection",
    "GaussianColorModel",
    "MotionProfile",
    "Region",
    "RegionOfInterest",
    "TextLine",
    "SkinDetection",
    "SpecialFrameKind",
    "VisualCues",
    "chromaticity",
    "classify_special_frame",
    "close_mask",
    "dc_difference",
    "dc_difference_signal",
    "dc_image",
    "detect_blood",
    "detect_faces",
    "detect_skin",
    "detect_text_lines",
    "difference_signal",
    "dilate",
    "erode",
    "extract_cues",
    "extract_rois",
    "filter_regions",
    "has_video_text",
    "histogram_difference",
    "histogram_intersection",
    "histogram_l1_distance",
    "hsv_histogram",
    "hsv_to_rgb",
    "label_regions",
    "match_rois",
    "motion_profile",
    "open_mask",
    "pixel_difference",
    "quantize_hsv",
    "rgb_to_hsv",
    "roi_similarity",
    "shot_motion_profiles",
    "tamura_coarseness",
    "text_coverage",
    "texture_distance_squared",
]
