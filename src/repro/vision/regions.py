"""Connected-component labelling and region shape analysis.

The paper's detectors segment colour-model masks and then run "a general
shape analysis ... to select those regions that have considerable width
and height" (Sec. 4.1).  :func:`label_regions` is a two-pass union-find
labeller; :class:`Region` carries the shape statistics the detectors
threshold on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VisionError


@dataclass(frozen=True)
class Region:
    """One connected component of a binary mask.

    Attributes
    ----------
    label:
        Integer label in the label image (>= 1).
    area:
        Number of member pixels.
    bbox:
        ``(top, left, bottom, right)`` — bottom/right exclusive.
    centroid:
        ``(row, col)`` mean of member pixels.
    """

    label: int
    area: int
    bbox: tuple[int, int, int, int]
    centroid: tuple[float, float]

    @property
    def height(self) -> int:
        """Bounding-box height in pixels."""
        return self.bbox[2] - self.bbox[0]

    @property
    def width(self) -> int:
        """Bounding-box width in pixels."""
        return self.bbox[3] - self.bbox[1]

    @property
    def bbox_area(self) -> int:
        """Bounding-box area in pixels."""
        return self.height * self.width

    @property
    def fill_ratio(self) -> float:
        """Fraction of the bounding box covered by the region."""
        return self.area / self.bbox_area if self.bbox_area else 0.0

    @property
    def aspect_ratio(self) -> float:
        """height / width (0 when width is 0)."""
        return self.height / self.width if self.width else 0.0

    def area_fraction(self, frame_shape: tuple[int, ...]) -> float:
        """Region area as a fraction of the whole frame."""
        total = frame_shape[0] * frame_shape[1]
        return self.area / total if total else 0.0


class _UnionFind:
    """Minimal union-find over integer labels."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def make(self, x: int) -> None:
        self._parent.setdefault(x, x)

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)


def label_regions(mask: np.ndarray, connectivity: int = 4) -> tuple[np.ndarray, list[Region]]:
    """Label the connected components of a boolean mask.

    Parameters
    ----------
    mask:
        2-D boolean array.
    connectivity:
        4 or 8.

    Returns
    -------
    ``(labels, regions)`` where ``labels`` is an int array (0 = background)
    and ``regions`` is sorted by decreasing area.
    """
    mask = np.asarray(mask)
    if mask.ndim != 2:
        raise VisionError(f"mask must be 2-D, got {mask.ndim}-D")
    if connectivity not in (4, 8):
        raise VisionError(f"connectivity must be 4 or 8, got {connectivity}")
    mask = mask.astype(bool)
    height, width = mask.shape
    labels = np.zeros((height, width), dtype=np.int32)
    uf = _UnionFind()
    next_label = 1

    # Run-based two-pass labelling: each row is decomposed into runs of
    # foreground pixels; a run links to previous-row runs it touches
    # (sharing columns, plus diagonal slack for 8-connectivity).  This
    # keeps the Python loop proportional to the number of runs, not the
    # number of pixels.
    slack = 0 if connectivity == 4 else 1
    previous_runs: list[tuple[int, int, int]] = []  # (start, stop, label)
    for y in range(height):
        row = mask[y]
        if not row.any():
            previous_runs = []
            continue
        padded = np.concatenate(([False], row, [False]))
        changes = np.flatnonzero(padded[1:] != padded[:-1])
        starts, stops = changes[0::2], changes[1::2]

        current_runs: list[tuple[int, int, int]] = []
        for start, stop in zip(starts, stops):
            touching = [
                run_label
                for run_start, run_stop, run_label in previous_runs
                if run_start < stop + slack and run_stop + slack > start
            ]
            if not touching:
                label = next_label
                uf.make(label)
                next_label += 1
            else:
                label = min(touching)
                for other in touching:
                    uf.union(label, other)
            labels[y, start:stop] = label
            current_runs.append((int(start), int(stop), label))
        previous_runs = current_runs

    # Second pass: resolve equivalences and compact label ids via a LUT.
    remap: dict[int, int] = {}
    lut = np.zeros(next_label, dtype=np.int32)
    for raw in range(1, next_label):
        root = uf.find(raw)
        final = remap.setdefault(root, len(remap) + 1)
        lut[raw] = final
    labels = lut[labels]

    regions = _measure_regions(labels, len(remap))
    regions.sort(key=lambda region: region.area, reverse=True)
    return labels, regions


def _measure_regions(labels: np.ndarray, count: int) -> list[Region]:
    regions: list[Region] = []
    for label in range(1, count + 1):
        ys, xs = np.nonzero(labels == label)
        if ys.size == 0:
            continue
        regions.append(
            Region(
                label=label,
                area=int(ys.size),
                bbox=(int(ys.min()), int(xs.min()), int(ys.max()) + 1, int(xs.max()) + 1),
                centroid=(float(ys.mean()), float(xs.mean())),
            )
        )
    return regions


def filter_regions(
    regions: list[Region],
    frame_shape: tuple[int, ...],
    min_area_fraction: float = 0.0,
    min_height: int = 0,
    min_width: int = 0,
    min_fill_ratio: float = 0.0,
) -> list[Region]:
    """Keep regions of "considerable width and height" (Sec. 4.1)."""
    kept = []
    for region in regions:
        if region.area_fraction(frame_shape) < min_area_fraction:
            continue
        if region.height < min_height or region.width < min_width:
            continue
        if region.fill_ratio < min_fill_ratio:
            continue
        kept.append(region)
    return kept
