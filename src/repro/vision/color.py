"""Colour-space conversions implemented from scratch on numpy arrays.

The paper's features are computed in HSV space (256-bin HSV histogram) and
its region detectors (skin, blood-red) use colour models.  Everything here
is vectorised over whole frames.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VisionError


def rgb_to_hsv(rgb: np.ndarray) -> np.ndarray:
    """Convert an RGB image to HSV.

    Parameters
    ----------
    rgb:
        ``(H, W, 3)`` array, ``uint8`` in ``[0, 255]`` or float in ``[0, 1]``.

    Returns
    -------
    ``(H, W, 3)`` float array with hue in ``[0, 1)``, saturation and value
    in ``[0, 1]``.
    """
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise VisionError(f"expected (H, W, 3) image, got {rgb.shape}")
    if rgb.dtype == np.uint8:
        rgb = rgb.astype(np.float64) / 255.0
    else:
        rgb = np.clip(rgb.astype(np.float64), 0.0, 1.0)

    r, g, b = rgb[:, :, 0], rgb[:, :, 1], rgb[:, :, 2]
    maxc = rgb.max(axis=2)
    minc = rgb.min(axis=2)
    value = maxc
    delta = maxc - minc

    saturation = np.zeros_like(maxc)
    nonzero = maxc > 0
    saturation[nonzero] = delta[nonzero] / maxc[nonzero]

    hue = np.zeros_like(maxc)
    has_delta = delta > 0
    # Avoid divide-by-zero; only has_delta pixels are kept.
    safe_delta = np.where(has_delta, delta, 1.0)
    r_max = has_delta & (maxc == r)
    g_max = has_delta & (maxc == g) & ~r_max
    b_max = has_delta & ~r_max & ~g_max
    hue[r_max] = ((g - b)[r_max] / safe_delta[r_max]) % 6.0
    hue[g_max] = (b - r)[g_max] / safe_delta[g_max] + 2.0
    hue[b_max] = (r - g)[b_max] / safe_delta[b_max] + 4.0
    hue = hue / 6.0

    return np.stack([hue, saturation, value], axis=2)


def hsv_to_rgb(hsv: np.ndarray) -> np.ndarray:
    """Convert an HSV image (all channels in ``[0, 1]``) back to float RGB."""
    if hsv.ndim != 3 or hsv.shape[2] != 3:
        raise VisionError(f"expected (H, W, 3) image, got {hsv.shape}")
    h = (hsv[:, :, 0] % 1.0) * 6.0
    s = np.clip(hsv[:, :, 1], 0.0, 1.0)
    v = np.clip(hsv[:, :, 2], 0.0, 1.0)

    i = np.floor(h).astype(int)
    f = h - i
    p = v * (1.0 - s)
    q = v * (1.0 - s * f)
    t = v * (1.0 - s * (1.0 - f))

    rgb = np.zeros_like(hsv)
    conditions = [i % 6 == k for k in range(6)]
    channels = [
        (v, t, p),
        (q, v, p),
        (p, v, t),
        (p, q, v),
        (t, p, v),
        (v, p, q),
    ]
    for cond, (rr, gg, bb) in zip(conditions, channels):
        rgb[:, :, 0] = np.where(cond, rr, rgb[:, :, 0])
        rgb[:, :, 1] = np.where(cond, gg, rgb[:, :, 1])
        rgb[:, :, 2] = np.where(cond, bb, rgb[:, :, 2])
    return rgb


# Quantisation layout for the 256-bin HSV histogram: 16 hue x 4 sat x 4 val.
HUE_BINS = 16
SAT_BINS = 4
VAL_BINS = 4
TOTAL_BINS = HUE_BINS * SAT_BINS * VAL_BINS


#: Below this saturation hue is numerically meaningless (sensor noise
#: flips it arbitrarily), so such pixels share a canonical hue bin.
ACHROMATIC_SATURATION = 0.08


def quantize_hsv(hsv: np.ndarray) -> np.ndarray:
    """Map each HSV pixel to one of 256 bins (16H x 4S x 4V).

    Near-achromatic pixels (S < 0.08) are forced into hue bin 0 so that
    grays and whites land in stable bins regardless of the random hue
    their noise happens to produce.

    Returns an integer array of shape ``(H, W)`` with values in
    ``[0, 255]``.
    """
    if hsv.ndim != 3 or hsv.shape[2] != 3:
        raise VisionError(f"expected (H, W, 3) image, got {hsv.shape}")
    saturation = np.clip(hsv[:, :, 1], 0, 1)
    h_idx = np.minimum((hsv[:, :, 0] % 1.0 * HUE_BINS).astype(int), HUE_BINS - 1)
    h_idx = np.where(saturation < ACHROMATIC_SATURATION, 0, h_idx)
    s_idx = np.minimum((saturation * SAT_BINS).astype(int), SAT_BINS - 1)
    v_idx = np.minimum((np.clip(hsv[:, :, 2], 0, 1) * VAL_BINS).astype(int), VAL_BINS - 1)
    return (h_idx * SAT_BINS + s_idx) * VAL_BINS + v_idx
