"""Aggregated visual cues for one representative frame (Sec. 4.1).

Event mining consumes five kinds of evidence per shot: special-frame
class (slide / clip art / black / sketch), faces, face close-ups, skin
close-ups and blood-red regions.  :func:`extract_cues` runs every
detector once and bundles the results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.video.frame import Frame
from repro.vision.blood import BloodDetection, detect_blood
from repro.vision.face import FaceDetection, detect_faces
from repro.vision.frames import SpecialFrameKind, classify_special_frame
from repro.vision.skin import SkinDetection, detect_skin


@dataclass(frozen=True)
class VisualCues:
    """All visual evidence extracted from one representative frame."""

    special: SpecialFrameKind
    face: FaceDetection
    skin: SkinDetection
    blood: BloodDetection

    @property
    def is_slide_like(self) -> bool:
        """Slide or clip-art frame (Presentation evidence)."""
        return self.special.is_slide_like

    @property
    def has_face(self) -> bool:
        """At least one verified face."""
        return self.face.has_face

    @property
    def has_face_closeup(self) -> bool:
        """Verified face covering more than 10% of the frame."""
        return self.face.has_closeup

    @property
    def has_skin(self) -> bool:
        """At least one accepted skin region."""
        return self.skin.has_skin

    @property
    def has_skin_closeup(self) -> bool:
        """Skin region covering more than 20% of the frame."""
        return self.skin.has_closeup

    @property
    def has_blood(self) -> bool:
        """At least one accepted blood-red region."""
        return self.blood.has_blood


def extract_cues(frame: Frame) -> VisualCues:
    """Run all visual detectors on one representative frame.

    Man-made frames (slides, clip art, black) skip the region detectors:
    they cannot contain faces, skin or blood, and the colour models would
    only produce noise on them.
    """
    special = classify_special_frame(frame)
    if special.is_man_made:
        empty_face = FaceDetection(
            faces=(), has_face=False, has_closeup=False, largest_fraction=0.0
        )
        empty_skin = SkinDetection(
            regions=(),
            mask_fraction=0.0,
            largest_fraction=0.0,
            has_skin=False,
            has_closeup=False,
        )
        empty_blood = BloodDetection(
            regions=(), mask_fraction=0.0, largest_fraction=0.0, has_blood=False
        )
        return VisualCues(
            special=special, face=empty_face, skin=empty_skin, blood=empty_blood
        )
    return VisualCues(
        special=special,
        face=detect_faces(frame),
        skin=detect_skin(frame),
        blood=detect_blood(frame),
    )
