"""Blood-red region detection (Sec. 4.1).

Blood and exposed tissue in surgical footage are saturated reds with very
low green content; the chromaticity Gaussian below is well separated from
the skin model.  As with skin, shape analysis keeps only regions of
considerable extent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.frame import Frame
from repro.vision.colormodel import GaussianColorModel
from repro.vision.morphology import close_mask, open_mask
from repro.vision.regions import Region, filter_regions, label_regions

#: Chromaticity Gaussian for blood-red / exposed tissue.
DEFAULT_BLOOD_MODEL = GaussianColorModel(
    mean=np.array([0.72, 0.13]),
    covariance=np.array([[0.006, 0.0], [0.0, 0.0025]]),
    threshold=4.0,
    min_brightness=0.08,
    max_brightness=0.95,
)

#: Minimum area fraction for a blood-red region to count as evidence.
BLOOD_MIN_FRACTION = 0.01


@dataclass(frozen=True)
class BloodDetection:
    """Result of blood-red analysis on one frame.

    Attributes
    ----------
    regions:
        Accepted blood-red regions, largest first.
    mask_fraction:
        Fraction of frame pixels matching the colour model.
    largest_fraction:
        Area fraction of the largest accepted region (0 when none).
    has_blood:
        True when at least one region passed shape analysis.
    """

    regions: tuple[Region, ...]
    mask_fraction: float
    largest_fraction: float
    has_blood: bool


def blood_mask(
    frame: Frame,
    model: GaussianColorModel = DEFAULT_BLOOD_MODEL,
    morphology_radius: int = 1,
) -> np.ndarray:
    """Binary blood-red mask after colour and morphology stages."""
    mask = model.segment(frame.pixels)
    mask = open_mask(mask, morphology_radius)
    mask = close_mask(mask, morphology_radius)
    return mask


def detect_blood(
    frame: Frame,
    model: GaussianColorModel = DEFAULT_BLOOD_MODEL,
    min_area_fraction: float = BLOOD_MIN_FRACTION,
) -> BloodDetection:
    """Detect blood-red regions of considerable width and height."""
    mask = blood_mask(frame, model=model)
    _, regions = label_regions(mask, connectivity=8)
    kept = filter_regions(
        regions,
        frame.shape,
        min_area_fraction=min_area_fraction,
        min_height=2,
        min_width=2,
    )
    largest = max((r.area_fraction(frame.shape) for r in kept), default=0.0)
    return BloodDetection(
        regions=tuple(kept),
        mask_fraction=float(mask.mean()),
        largest_fraction=largest,
        has_blood=bool(kept),
    )
