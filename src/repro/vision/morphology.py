"""Binary morphology primitives (erosion, dilation, opening, closing).

The paper's skin-region pipeline applies "texture filter and
morphological operations" to candidate masks (Sec. 4.1).  These are
implemented from scratch on boolean numpy arrays with square structuring
elements.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VisionError


def _check_mask(mask: np.ndarray) -> np.ndarray:
    mask = np.asarray(mask)
    if mask.ndim != 2:
        raise VisionError(f"mask must be 2-D, got {mask.ndim}-D")
    return mask.astype(bool)


def _shifted_stack(mask: np.ndarray, radius: int, fill: bool) -> np.ndarray:
    """All translations of ``mask`` within a ``(2r+1)`` square, stacked."""
    height, width = mask.shape
    padded = np.full((height + 2 * radius, width + 2 * radius), fill, dtype=bool)
    padded[radius : radius + height, radius : radius + width] = mask
    views = []
    for dy in range(2 * radius + 1):
        for dx in range(2 * radius + 1):
            views.append(padded[dy : dy + height, dx : dx + width])
    return np.stack(views)


def dilate(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """Binary dilation with a ``(2*radius+1)`` square structuring element."""
    mask = _check_mask(mask)
    if radius < 0:
        raise VisionError("radius must be >= 0")
    if radius == 0:
        return mask.copy()
    return _shifted_stack(mask, radius, fill=False).any(axis=0)


def erode(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """Binary erosion with a ``(2*radius+1)`` square structuring element."""
    mask = _check_mask(mask)
    if radius < 0:
        raise VisionError("radius must be >= 0")
    if radius == 0:
        return mask.copy()
    return _shifted_stack(mask, radius, fill=True).all(axis=0)


def open_mask(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """Opening = erosion then dilation; removes speckle noise."""
    return dilate(erode(mask, radius), radius)


def close_mask(mask: np.ndarray, radius: int = 1) -> np.ndarray:
    """Closing = dilation then erosion; fills small holes."""
    return erode(dilate(mask, radius), radius)
