"""The paper's 256-dimensional HSV colour histogram (Sec. 3.1).

After shot segmentation the 10th frame of each shot becomes the
representative frame and a normalised 256-bin HSV histogram is extracted
from it.  Shot similarity (Eq. 1) uses histogram intersection, which is
provided here as :func:`histogram_intersection`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VisionError
from repro.video.frame import Frame
from repro.vision.color import TOTAL_BINS, quantize_hsv, rgb_to_hsv


def hsv_histogram(frame: Frame | np.ndarray) -> np.ndarray:
    """Compute the normalised 256-bin HSV histogram of a frame.

    The histogram sums to 1 (L1-normalised), matching the ``min``-based
    intersection term of Eq. (1).
    """
    pixels = frame.pixels if isinstance(frame, Frame) else frame
    hsv = rgb_to_hsv(pixels)
    bins = quantize_hsv(hsv)
    counts = np.bincount(bins.ravel(), minlength=TOTAL_BINS).astype(np.float64)
    total = counts.sum()
    if total == 0:
        raise VisionError("cannot build a histogram from an empty frame")
    return counts / total


def histogram_intersection(h1: np.ndarray, h2: np.ndarray) -> float:
    """Histogram intersection: ``sum_k min(h1[k], h2[k])``.

    Both inputs must be L1-normalised histograms of equal length; the
    result lies in ``[0, 1]`` with 1 meaning identical histograms.
    """
    h1 = np.asarray(h1, dtype=np.float64)
    h2 = np.asarray(h2, dtype=np.float64)
    if h1.shape != h2.shape:
        raise VisionError(f"histogram shapes differ: {h1.shape} vs {h2.shape}")
    if h1.ndim != 1:
        raise VisionError(f"histograms must be 1-D, got {h1.ndim}-D")
    return float(np.minimum(h1, h2).sum())


def histogram_l1_distance(h1: np.ndarray, h2: np.ndarray) -> float:
    """L1 distance between two histograms (used by frame differencing)."""
    h1 = np.asarray(h1, dtype=np.float64)
    h2 = np.asarray(h2, dtype=np.float64)
    if h1.shape != h2.shape:
        raise VisionError(f"histogram shapes differ: {h1.shape} vs {h2.shape}")
    return float(np.abs(h1 - h2).sum())
