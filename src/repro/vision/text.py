"""Video-text detection (Sec. 4.1).

"The video text and gray information are used to distinguish the
slides, clip art and black frames from each other."  This module
detects text *lines*: horizontal runs of dark glyph material on a
bright background, grouped into per-line bounding boxes with simple
typographic statistics.  The special-frame classifier uses coarse text
bands; this richer API serves callers that need the actual line
geometry (e.g. slide-content summarisation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VisionError
from repro.video.frame import Frame

#: Luma below which a pixel counts as glyph material.
DARK_LUMA = 0.5
#: Minimum fraction of dark pixels for a row to join a text line.
ROW_DENSITY = 0.05
#: Minimum geometry for an accepted line.
MIN_LINE_HEIGHT = 1
MIN_LINE_WIDTH_FRACTION = 0.08


@dataclass(frozen=True)
class TextLine:
    """One detected text line.

    Attributes
    ----------
    top / bottom:
        Row span (bottom exclusive).
    left / right:
        Column extent of the dark material (right exclusive).
    density:
        Fraction of dark pixels inside the box — text is sparse
        (glyphs + gaps), solid bars are dense.
    """

    top: int
    bottom: int
    left: int
    right: int
    density: float

    @property
    def height(self) -> int:
        """Line height in pixels."""
        return self.bottom - self.top

    @property
    def width(self) -> int:
        """Line width in pixels."""
        return self.right - self.left

    @property
    def is_texty(self) -> bool:
        """Heuristic: sparse, wide, short boxes read as text."""
        return (
            self.width >= 4 * self.height
            and 0.05 <= self.density <= 0.98
        )


def detect_text_lines(
    frame: Frame,
    dark_luma: float = DARK_LUMA,
    row_density: float = ROW_DENSITY,
) -> list[TextLine]:
    """Detect horizontal text lines on a bright background.

    Returns an empty list for dark frames (text-on-bright is the slide
    case the paper cares about).
    """
    if not 0.0 < dark_luma < 1.0:
        raise VisionError("dark_luma must be in (0, 1)")
    gray = frame.gray()
    if float(gray.mean()) < 0.45:
        return []  # not a bright man-made frame
    dark = gray < dark_luma

    row_fraction = dark.mean(axis=1)
    lines: list[TextLine] = []
    start = None
    for row_index, dense in enumerate(row_fraction >= row_density):
        if dense and start is None:
            start = row_index
        elif not dense and start is not None:
            line = _measure_line(dark, start, row_index, frame.width)
            if line is not None:
                lines.append(line)
            start = None
    if start is not None:
        line = _measure_line(dark, start, dark.shape[0], frame.width)
        if line is not None:
            lines.append(line)
    return lines


def _measure_line(
    dark: np.ndarray, top: int, bottom: int, frame_width: int
) -> TextLine | None:
    band = dark[top:bottom]
    columns = np.flatnonzero(band.any(axis=0))
    if columns.size == 0:
        return None
    left, right = int(columns[0]), int(columns[-1]) + 1
    if bottom - top < MIN_LINE_HEIGHT:
        return None
    if right - left < MIN_LINE_WIDTH_FRACTION * frame_width:
        return None
    density = float(band[:, left:right].mean())
    return TextLine(top=top, bottom=bottom, left=left, right=right, density=density)


def has_video_text(frame: Frame, min_lines: int = 2) -> bool:
    """True when the frame carries at least ``min_lines`` texty lines."""
    texty = [line for line in detect_text_lines(frame) if line.is_texty]
    return len(texty) >= min_lines


def text_coverage(frame: Frame) -> float:
    """Fraction of the frame covered by detected text-line boxes."""
    lines = detect_text_lines(frame)
    if not lines:
        return 0.0
    area = sum(line.height * line.width for line in lines)
    return area / (frame.height * frame.width)
