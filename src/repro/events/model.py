"""Event vocabulary shared across the system.

The paper mines three event categories from detected scenes (Sec. 4):
*presentation*, *dialog* and *clinical operation*.  Scenes whose event
cannot be determined are labelled :attr:`EventKind.UNKNOWN`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import EventKind

__all__ = ["EventKind", "SceneEvent"]


@dataclass(frozen=True)
class SceneEvent:
    """The mined event for one scene.

    Attributes
    ----------
    scene_index:
        Index of the scene within the mined content structure.
    kind:
        Assigned category (or :attr:`EventKind.UNKNOWN`).
    evidence:
        Human-readable notes on which rules fired; useful for debugging
        and for the skimming tool's event indicator.
    """

    scene_index: int
    kind: EventKind
    evidence: tuple[str, ...] = ()

    def is_known(self) -> bool:
        """True when the miner assigned one of the three paper categories."""
        return self.kind is not EventKind.UNKNOWN
