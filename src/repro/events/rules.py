"""The Sec. 4.3 decision rules for scene event classification.

Evidence per scene:

* visual cues of every member shot's representative frame;
* the temporal/spatial classification of its member groups;
* the Delta-BIC speaker-change verdicts between adjacent shots.

The decision procedure tests *Presentation*, then *Dialog*, then
*Clinical operation*, in that order, exactly as the paper lists it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.audio.speaker import ShotAudio, SpeakerAnalyzer
from repro.core.scenes import Scene
from repro.errors import EventMiningError
from repro.events.model import EventKind, SceneEvent
from repro.vision.cues import VisualCues


@dataclass
class SceneEvidence:
    """All per-shot evidence the rules consume for one scene.

    Attributes
    ----------
    scene:
        The mined scene.
    cues:
        Visual cues keyed by shot id (every member shot must appear).
    audio:
        Audio analyses keyed by shot id.
    adjacent_changes:
        ``adjacent_changes[i]`` is the speaker-change verdict between
        member shots at positions ``i`` and ``i+1`` (None = untestable).
    same_speaker_pairs:
        Member-position pairs ``(i, j)`` confidently judged to be the
        same speaker (Delta-BIC >= 0 on both shots' clips).
    """

    scene: Scene
    cues: dict[int, VisualCues]
    audio: dict[int, ShotAudio]
    adjacent_changes: list[bool | None] = field(default_factory=list)
    same_speaker_pairs: set[tuple[int, int]] = field(default_factory=set)

    def __post_init__(self) -> None:
        for shot_id in self.scene.shot_ids:
            if shot_id not in self.cues:
                raise EventMiningError(f"missing visual cues for shot {shot_id}")

    def cue_at(self, position: int) -> VisualCues:
        """Visual cues of the member shot at ``position``."""
        return self.cues[self.scene.shot_ids[position]]

    @property
    def member_count(self) -> int:
        """Number of member shots."""
        return len(self.scene.shot_ids)


def gather_evidence(
    scene: Scene,
    cues: dict[int, VisualCues],
    audio: dict[int, ShotAudio],
    analyzer: SpeakerAnalyzer,
) -> SceneEvidence:
    """Run the speaker-change tests a scene's rules will need."""
    shot_ids = scene.shot_ids
    changes: list[bool | None] = []
    for i in range(len(shot_ids) - 1):
        a = audio.get(shot_ids[i])
        b = audio.get(shot_ids[i + 1])
        if a is None or b is None:
            changes.append(None)
            continue
        result = analyzer.speaker_change(a, b)
        changes.append(None if result is None else result.is_change)

    same_pairs: set[tuple[int, int]] = set()
    for i in range(len(shot_ids)):
        for j in range(i + 1, len(shot_ids)):
            a = audio.get(shot_ids[i])
            b = audio.get(shot_ids[j])
            if a is None or b is None:
                continue
            result = analyzer.speaker_change(a, b)
            if result is not None and not result.is_change:
                same_pairs.add((i, j))
    return SceneEvidence(
        scene=scene,
        cues=cues,
        audio=audio,
        adjacent_changes=changes,
        same_speaker_pairs=same_pairs,
    )


def _any_adjacent_change(evidence: SceneEvidence) -> bool:
    return any(change is True for change in evidence.adjacent_changes)


def test_presentation(evidence: SceneEvidence) -> tuple[bool, list[str]]:
    """Sec. 4.3 step 2: the Presentation rule.

    Needs slides/clip art, a face close-up, at least one temporally
    related group, and no speaker change between adjacent shots.
    """
    notes: list[str] = []
    has_slide = any(
        evidence.cue_at(i).is_slide_like for i in range(evidence.member_count)
    )
    if not has_slide:
        return False, ["no slide or clip-art frame"]
    notes.append("slide/clip-art present")

    has_closeup = any(
        evidence.cue_at(i).has_face_closeup for i in range(evidence.member_count)
    )
    if not has_closeup:
        return False, notes + ["no face close-up"]
    notes.append("face close-up present")

    if not evidence.scene.has_temporal_group():
        return False, notes + ["all groups spatially related"]
    notes.append("temporally related group present")

    if _any_adjacent_change(evidence):
        return False, notes + ["speaker change between adjacent shots"]
    notes.append("no adjacent speaker change")
    return True, notes


def test_dialog(evidence: SceneEvidence) -> tuple[bool, list[str]]:
    """Sec. 4.3 step 3: the Dialog rule.

    Needs adjacent face-bearing shots, a temporally related group, a
    speaker change between adjacent face shots, and a speaker who
    appears more than once.
    """
    notes: list[str] = []
    face_positions = [
        i for i in range(evidence.member_count) if evidence.cue_at(i).has_face
    ]
    adjacent_face_pairs = [
        i
        for i in range(evidence.member_count - 1)
        if evidence.cue_at(i).has_face and evidence.cue_at(i + 1).has_face
    ]
    if not face_positions or not adjacent_face_pairs:
        return False, ["no adjacent face-bearing shots"]
    notes.append(f"{len(adjacent_face_pairs)} adjacent face pairs")

    if not evidence.scene.has_temporal_group():
        return False, notes + ["all groups spatially related"]
    notes.append("temporally related group present")

    changing_pairs = [
        i for i in adjacent_face_pairs if evidence.adjacent_changes[i] is True
    ]
    if not changing_pairs:
        return False, notes + ["no speaker change between adjacent face shots"]
    notes.append(f"{len(changing_pairs)} adjacent face pairs with speaker change")

    # A duplicated speaker: two face shots judged to be the same voice.
    face_set = set(face_positions)
    duplicated = any(
        i in face_set and j in face_set
        for (i, j) in evidence.same_speaker_pairs
    )
    if not duplicated:
        return False, notes + ["no duplicated speaker"]
    notes.append("duplicated speaker found")
    return True, notes


def test_clinical_operation(evidence: SceneEvidence) -> tuple[bool, list[str]]:
    """Sec. 4.3 step 4: the Clinical-operation rule.

    Needs no adjacent speaker change, plus either a skin close-up or
    blood-red region, or skin regions in more than half of the shots.
    """
    notes: list[str] = []
    if _any_adjacent_change(evidence):
        return False, ["speaker change between adjacent shots"]
    notes.append("no adjacent speaker change")

    has_strong_cue = any(
        evidence.cue_at(i).has_skin_closeup or evidence.cue_at(i).has_blood
        for i in range(evidence.member_count)
    )
    if has_strong_cue:
        return True, notes + ["skin close-up or blood-red region present"]

    skin_shots = sum(
        1 for i in range(evidence.member_count) if evidence.cue_at(i).has_skin
    )
    if skin_shots * 2 > evidence.member_count:
        return True, notes + [
            f"skin regions in {skin_shots}/{evidence.member_count} shots"
        ]
    return False, notes + ["insufficient skin/blood evidence"]


def classify_scene(evidence: SceneEvidence) -> SceneEvent:
    """Run the full Sec. 4.3 decision procedure on one scene."""
    ok, notes = test_presentation(evidence)
    if ok:
        return SceneEvent(
            scene_index=evidence.scene.scene_id,
            kind=EventKind.PRESENTATION,
            evidence=tuple(notes),
        )
    ok, notes = test_dialog(evidence)
    if ok:
        return SceneEvent(
            scene_index=evidence.scene.scene_id,
            kind=EventKind.DIALOG,
            evidence=tuple(notes),
        )
    ok, notes = test_clinical_operation(evidence)
    if ok:
        return SceneEvent(
            scene_index=evidence.scene.scene_id,
            kind=EventKind.CLINICAL_OPERATION,
            evidence=tuple(notes),
        )
    return SceneEvent(
        scene_index=evidence.scene.scene_id,
        kind=EventKind.UNKNOWN,
        evidence=("no rule matched",),
    )
