"""Event mining: presentation / dialog / clinical-operation detection."""

from repro.events.miner import EventMiner, EventMiningResult
from repro.events.model import EventKind, SceneEvent
from repro.events.rules import (
    SceneEvidence,
    classify_scene,
    gather_evidence,
    test_clinical_operation,
    test_dialog,
    test_presentation,
)

__all__ = [
    "EventKind",
    "EventMiner",
    "EventMiningResult",
    "SceneEvent",
    "SceneEvidence",
    "classify_scene",
    "gather_evidence",
    "test_clinical_operation",
    "test_dialog",
    "test_presentation",
]
