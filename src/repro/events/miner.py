"""Event miner: orchestrates cue extraction and rule evaluation (Sec. 4).

:class:`EventMiner` owns the expensive per-shot work — visual cue
extraction on representative frames and audio speaker analysis — and
caches it so several scenes (or repeated calls) reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.audio.speaker import ShotAudio, SpeakerAnalyzer
from repro.audio.waveform import Waveform
from repro.core.features import Shot
from repro.core.scenes import Scene
from repro.errors import EventMiningError
from repro.events.model import SceneEvent
from repro.events.rules import SceneEvidence, classify_scene, gather_evidence
from repro.vision.cues import VisualCues, extract_cues


@dataclass
class EventMiningResult:
    """Per-scene events plus the evidence that produced them."""

    events: list[SceneEvent]
    evidence: list[SceneEvidence] = field(repr=False)

    def event_of_scene(self, scene_id: int) -> SceneEvent:
        """The event assigned to ``scene_id``."""
        for event in self.events:
            if event.scene_index == scene_id:
                return event
        raise EventMiningError(f"no event recorded for scene {scene_id}")


class EventMiner:
    """Mines presentation / dialog / clinical-operation events."""

    def __init__(self, analyzer: SpeakerAnalyzer | None = None) -> None:
        self._analyzer = analyzer if analyzer is not None else SpeakerAnalyzer()
        self._cue_cache: dict[int, VisualCues] = {}
        self._audio_cache: dict[int, ShotAudio] = {}

    @property
    def analyzer(self) -> SpeakerAnalyzer:
        """The speaker analyzer in use."""
        return self._analyzer

    def visual_cues(self, shots: list[Shot]) -> dict[int, VisualCues]:
        """Extract (and cache) visual cues for each shot's rep frame."""
        for shot in shots:
            if shot.shot_id not in self._cue_cache:
                self._cue_cache[shot.shot_id] = extract_cues(shot.representative_frame)
        return {shot.shot_id: self._cue_cache[shot.shot_id] for shot in shots}

    def shot_audio(
        self, shots: list[Shot], audio: Waveform | None
    ) -> dict[int, ShotAudio]:
        """Analyse (and cache) each shot's audio window.

        With no audio track every shot gets an empty analysis, which the
        rules treat as "no observable speaker activity".
        """
        import numpy as np

        results: dict[int, ShotAudio] = {}
        for shot in shots:
            if shot.shot_id not in self._audio_cache:
                if audio is None:
                    self._audio_cache[shot.shot_id] = ShotAudio(
                        shot_id=shot.shot_id,
                        representative_clip=None,
                        has_speech=False,
                        mfcc_vectors=np.zeros((0, 14)),
                    )
                else:
                    start, stop = shot.time_window
                    self._audio_cache[shot.shot_id] = self._analyzer.analyze_shot(
                        audio, shot.shot_id, start, stop
                    )
            results[shot.shot_id] = self._audio_cache[shot.shot_id]
        return results

    def mine(
        self,
        scenes: list[Scene],
        audio: Waveform | None = None,
    ) -> EventMiningResult:
        """Classify every scene's event.

        Parameters
        ----------
        scenes:
            Mined scenes (from :mod:`repro.core.scenes`).
        audio:
            The video's audio track; ``None`` disables speaker tests.
        """
        events: list[SceneEvent] = []
        evidences: list[SceneEvidence] = []
        for scene in scenes:
            cues = self.visual_cues(scene.shots)
            shot_audio = self.shot_audio(scene.shots, audio)
            evidence = gather_evidence(scene, cues, shot_audio, self._analyzer)
            events.append(classify_scene(evidence))
            evidences.append(evidence)
        return EventMiningResult(events=events, evidence=evidences)
