"""ClassMiner: medical video mining for database indexing, management
and access — a full reproduction of Zhu et al., ICDE 2003.

Public API tour
---------------

* :mod:`repro.video` — frames, streams, ground truth, and the synthetic
  medical corpus (``repro.video.synthesis``).
* :mod:`repro.vision` / :mod:`repro.audio` — the from-scratch feature
  substrates (HSV histograms, Tamura texture, skin/face/blood
  detectors; MFCC, GMM, Delta-BIC speaker analysis).
* :mod:`repro.core` — the paper's contribution: content-structure
  mining (shots -> groups -> scenes -> clustered scenes) and the
  :class:`~repro.core.pipeline.ClassMiner` facade.
* :mod:`repro.events` — presentation / dialog / clinical-operation
  event mining.
* :mod:`repro.database` — the hierarchical, access-controlled video
  database with hash-table leaves and multi-centre internal nodes.
* :mod:`repro.skimming` — the four-level scalable skim, colour bar and
  quality panel.
* :mod:`repro.baselines` / :mod:`repro.evaluation` — comparison methods
  and the paper's metrics.

Quickstart::

    from repro.video.synthesis import load_video
    from repro.core import ClassMiner

    video = load_video("face_repair")
    result = ClassMiner().mine(video.stream)
    print(result.structure.level_sizes())
"""

from repro.core.pipeline import ClassMiner, ClassMinerResult
from repro.core.structure import ContentStructure, MiningConfig
from repro.database.catalog import VideoDatabase
from repro.errors import ReproError
from repro.skimming.skim import ScalableSkim, build_skim
from repro.types import EventKind

__version__ = "1.0.0"

__all__ = [
    "ClassMiner",
    "ClassMinerResult",
    "ContentStructure",
    "EventKind",
    "MiningConfig",
    "ReproError",
    "ScalableSkim",
    "VideoDatabase",
    "build_skim",
    "__version__",
]
