"""Network serving: HTTP front-end + multi-process sharded scatter-gather.

This package puts a wire in front of the serving stack (ROADMAP open
item 2) using nothing but the standard library:

* :mod:`repro.net.protocol` — length-prefixed JSON frames over local
  TCP sockets, with a bit-exact base64 codec for float64 feature
  vectors and a small pooled RPC client;
* :mod:`repro.net.shard` — partitions a catalog into N shared-nothing
  shard directories under a ``ShardSpec`` manifest that also replicates
  the full-corpus routing metadata, so every shard's index tree routes
  exactly like the unsharded one;
* :mod:`repro.net.worker` — one process (or thread, in tests) per
  shard, serving leaf probes, scans, flat scans and scene searches over
  its own out-of-core :class:`~repro.storage.lazy.SQLVideoDatabase`;
* :mod:`repro.net.cluster` — spawns/respawns worker subprocesses and
  watches them;
* :mod:`repro.net.coordinator` — the scatter-gather front: it runs the
  hierarchical descent itself, fans leaf probes out to every shard,
  and merges top-k **bit-identically** to the single-process
  :class:`~repro.serving.server.QueryServer`, degrading per-shard via
  circuit breakers instead of failing;
* :mod:`repro.net.gateway` — the asyncio HTTP/1.1 JSON API
  (``/query``, ``/scene_search``, ``/skim/{id}``, ``/health``,
  ``/metrics``) with deadline propagation, bounded admission mapped to
  503 + ``Retry-After``, and token auth resolved before the cache;
* :mod:`repro.net.httpload` — a closed-loop load generator for the
  HTTP path reporting latency percentiles and error classes.

See ``docs/SHARDING.md`` for the wire protocol, the manifest format
and the exactness argument behind the merge.
"""

from repro.net.cluster import RestartReport, ShardCluster
from repro.net.coordinator import CoordinatorConfig, ShardedQueryService
from repro.net.gateway import (
    GatewayConfig,
    HttpGateway,
    probe_health,
    request_restart,
)
from repro.net.httpload import HttpLoadConfig, HttpLoadReport, run_http_load
from repro.net.protocol import ShardEndpoint, pack_array, unpack_array
from repro.net.shard import ShardSpec, build_shards, load_manifest
from repro.net.worker import ShardWorker

__all__ = [
    "CoordinatorConfig",
    "GatewayConfig",
    "HttpGateway",
    "HttpLoadConfig",
    "HttpLoadReport",
    "RestartReport",
    "ShardCluster",
    "ShardEndpoint",
    "ShardSpec",
    "ShardWorker",
    "ShardedQueryService",
    "build_shards",
    "load_manifest",
    "pack_array",
    "probe_health",
    "request_restart",
    "run_http_load",
    "unpack_array",
]
