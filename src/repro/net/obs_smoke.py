"""Observability smoke: tracing + metrics over a live 2-shard cluster.

``make obs-net-smoke`` exercises the distributed-observability surface
end to end with real subprocess workers and real sockets:

1. a 2-shard cluster is built and served behind the HTTP gateway;
2. a query sent with an ``X-Trace-Id`` header must come back with the
   same id echoed, and the process tracer must hold ONE stitched flame
   tree: ``gateway.request`` over ``net.query`` over the coordinator
   phases, with both shards' ``rpc.probe`` round-trips and the remote
   ``worker.probe`` spans (shipped back in the response frames) grafted
   beneath them — every span carrying the same trace id;
3. ``GET /metrics`` merges both worker registries: per-shard
   ``net_worker_*`` families labelled ``shard="0"``/``shard="1"``,
   ``net_shard_up`` gauges, the Prometheus 0.0.4 content type;
4. ``{"explain": true}`` returns per-shard evidence with hits identical
   to the plain answer and never touches the result cache;
5. ``GET /debug/slow`` serves the bounded slow-query ring.

Everything is seeded and deterministic; any check failure exits 1.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.net.cluster import ShardCluster
from repro.net.coordinator import CoordinatorConfig, ShardedQueryService
from repro.net.gateway import GatewayConfig, HttpGateway
from repro.net.shard import build_shards
from repro.obs import (
    Tracer,
    get_slow_log,
    install_tracer,
    render_spans,
    validate_prometheus_text,
)
from repro.storage.synthetic import build_synthetic_database

TRACE_ID = "0b5e9ab1e0b5e9ab"


def _report(name: str, ok: bool, detail: str) -> bool:
    print(f"obs-net-smoke: [{'ok ' if ok else 'FAIL'}] {name} — {detail}")
    return ok


def _http(url: str, method: str = "GET", body: bytes | None = None, headers=None):
    request = urllib.request.Request(
        url, data=body, headers=headers or {}, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=15.0) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


def _post_query(base: str, payload: dict, headers=None):
    body = json.dumps(payload).encode("utf-8")
    merged = {"Content-Type": "application/json"}
    merged.update(headers or {})
    return _http(f"{base}/query", "POST", body, merged)


def run_smoke(videos: int = 60, shots: int = 6, seed: int = 3) -> int:
    """Run the observability network smoke; returns a process exit code."""
    started = time.perf_counter()
    tmp = Path(tempfile.mkdtemp(prefix="obs_net_smoke_"))
    ok = True
    service = gateway = cluster = None
    tracer = Tracer()
    previous = install_tracer(tracer)
    get_slow_log().clear()
    try:
        database = build_synthetic_database(
            videos=videos, shots_per_video=shots, scenes_per_video=3, seed=seed
        )
        spec = build_shards(database, tmp / "shards", 2)
        cluster = ShardCluster(tmp / "shards", spec=spec).start()
        service = ShardedQueryService(
            spec, cluster.endpoints, config=CoordinatorConfig()
        )
        gateway = HttpGateway(service, GatewayConfig(tokens={})).start()
        base = gateway.url

        rng = np.random.default_rng(seed + 1)
        entries = database.flat_index.entries
        probe = entries[int(rng.integers(0, len(entries)))].features + rng.normal(
            0.0, 0.01, entries[0].features.shape
        )
        features = [float(x) for x in probe]

        # -- one traced query: a single stitched flame tree ------------
        tracer.clear()  # drop startup spans; trace just this request
        status, body, headers = _post_query(
            base,
            {"kind": "shot", "features": features, "k": 5},
            {"X-Trace-Id": TRACE_ID},
        )
        parsed = json.loads(body)
        echoed = headers.get("X-Trace-Id")
        spans = tracer.spans()
        grouped: dict[str, list] = {}
        for span in spans:
            grouped.setdefault(span.name, []).append(span)
        by_id = {span.span_id: span for span in spans}

        def _rooted_in_gateway(span) -> bool:
            while span.parent_id is not None and span.parent_id in by_id:
                span = by_id[span.parent_id]
            return span.name == "gateway.request"

        tree_ok = status == 200 and bool(parsed.get("hits"))
        tree_ok &= echoed == TRACE_ID
        tree_ok &= len(grouped.get("gateway.request", [])) == 1
        tree_ok &= len(grouped.get("net.query", [])) == 1
        tree_ok &= {
            sp.attributes.get("shard") for sp in grouped.get("rpc.probe", [])
        } == {0, 1}
        workers = grouped.get("worker.probe", [])
        tree_ok &= {sp.attributes.get("shard") for sp in workers} == {0, 1}
        tree_ok &= all(
            sp.attributes.get("trace_id") == TRACE_ID for sp in workers
        )
        tree_ok &= all(_rooted_in_gateway(sp) for sp in spans)
        rendered = render_spans(spans)
        tree_ok &= all(
            name in rendered
            for name in (
                "gateway.request",
                "net.query",
                "rpc.probe",
                "worker.probe",
            )
        )
        ok &= _report(
            "stitched flame tree",
            tree_ok,
            f"{len(spans)} spans, every one rooted in gateway.request, "
            f"trace id {TRACE_ID} echoed and stamped on both worker spans",
        )

        # -- cluster-wide /metrics -------------------------------------
        status, body, headers = _http(f"{base}/metrics")
        text = body.decode("utf-8")
        metrics_ok = status == 200
        metrics_ok &= validate_prometheus_text(text) == []
        for shard_id in (0, 1):
            metrics_ok &= (
                f'net_worker_requests_total{{shard="{shard_id}",op="probe"}}'
                in text
            )
            metrics_ok &= f'net_shard_up{{shard="{shard_id}"}} 1.0' in text
        content_type = headers.get("Content-Type", "")
        metrics_ok &= content_type.startswith("text/plain; version=0.0.4")
        ok &= _report(
            "merged cluster metrics",
            metrics_ok,
            f"per-shard worker families + net_shard_up, {content_type!r}",
        )

        # -- explain: same answer, evidence attached, never cached -----
        payload = {"kind": "shot", "features": features, "k": 5}
        status, body, _ = _post_query(base, payload)
        plain = json.loads(body)
        status2, body2, _ = _post_query(base, dict(payload, explain=True))
        explained = json.loads(body2)
        evidence = explained.get("explain") or {}
        explain_ok = status == 200 and status2 == 200
        explain_ok &= "explain" not in plain
        explain_ok &= explained["hits"] == plain["hits"]
        explain_ok &= evidence.get("backend") == "sharded"
        explain_ok &= {
            op.get("shard") for op in evidence.get("shards", [])
        } == {0, 1}
        explain_ok &= not explained.get("cache_hit", False)
        explain_ok &= (
            evidence.get("cache", {}).get("disposition") == "bypassed (explain)"
        )
        ok &= _report(
            "explain surface",
            explain_ok,
            "hits identical to plain answer, per-shard evidence, "
            "cache bypassed",
        )

        # -- slow-query ring over HTTP ---------------------------------
        status, body, _ = _http(f"{base}/debug/slow")
        slow = json.loads(body)
        slow_ok = status == 200 and slow.get("recorded", 0) >= 1
        slow_ok &= all(
            entry["backend"] == "sharded" for entry in slow.get("slow", [])
        )
        ok &= _report(
            "slow-query log",
            slow_ok,
            f"{slow.get('recorded', 0)} queries recorded, "
            f"{len(slow.get('slow', []))} retained",
        )
    except Exception as exc:  # smoke must fail loudly, not crash silently
        ok = _report("unexpected error", False, f"{type(exc).__name__}: {exc}")
    finally:
        install_tracer(previous)
        if gateway is not None:
            gateway.stop()
        if service is not None:
            service.close()
        if cluster is not None:
            cluster.stop()
        shutil.rmtree(tmp, ignore_errors=True)
    print(
        f"obs-net-smoke: {'PASS' if ok else 'FAIL'} "
        f"in {time.perf_counter() - started:.1f}s"
    )
    return 0 if ok else 1


def main() -> int:
    """Entry point of ``python -m repro.net.obs_smoke``."""
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())
