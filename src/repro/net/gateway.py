"""Asyncio HTTP/1.1 JSON gateway over a query backend.

Pure standard library: one daemon thread runs an asyncio event loop
with :func:`asyncio.start_server`; blocking backend calls are pushed to
a bounded thread pool so the loop itself never stalls.  The gateway can
front either the in-process :class:`~repro.serving.server.QueryServer`
or the sharded :class:`~repro.net.coordinator.ShardedQueryService` —
both are wrapped in a tiny backend adapter.

Endpoints (all JSON):

=============================  =======================================
``POST /query``                full query surface (``kind``,
                               ``features``, ``k``, ``event``,
                               ``video_title``, ANN knobs ``nprobe``
                               and ``rerank_k``, ``explain``)
``POST /scene_search``         shorthand for ``kind: scene``
``GET  /skim/{video_id}``      a video's scene/event outline
``GET  /health``               200 ok / 207 degraded / 503 down
``GET  /metrics``              Prometheus text; a sharded backend
                               merges every worker's registry with a
                               ``shard`` label per family
``GET  /debug/slow``           the slow-query log, slowest first
``GET  /workload?n=N``         corpus feature vectors for loadgen
``POST /admin/restart``        drain-based worker restart (``shard``
                               or ``rolling``); needs an attached
                               :class:`~repro.net.cluster.ShardCluster`
=============================  =======================================

Contract details the tests pin down:

* ``X-Deadline-Ms`` propagates a per-request deadline; a request whose
  deadline is already spent on arrival gets 504 without executing.
* Admission is bounded (``max_inflight``); beyond it the gateway sheds
  load with 503 + ``Retry-After`` instead of queueing unboundedly.
  Backend :class:`~repro.errors.OverloadedError` maps to the same 503.
* ``X-Auth-Token`` resolves to a :class:`~repro.database.access.User`
  *before* any cache interaction (the scope is part of the backend's
  cache key, so cached results can never cross tokens).  Unknown
  tokens get 401; no token means anonymous.
* Bodies above ``max_body`` get 413; malformed JSON gets 400; unknown
  paths get 404.
* Every response carries ``X-Trace-Id`` — the value of the request's
  ``X-Trace-Id`` header if one came in, a fresh id otherwise.  When
  tracing is enabled the id rides the RPC frames to the shard workers
  and the stitched flame tree carries it end to end.
* ``--access-log`` turns on one structured JSON line per request
  (trace id, method, path, status, shard fan-out, latency).
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.database.access import User
from repro.errors import (
    DatabaseError,
    OverloadedError,
    ReproError,
    ServingError,
)
from repro.obs.export import render_prometheus, render_prometheus_dumps
from repro.obs.slowlog import get_slow_log
from repro.obs.trace import active_tracer, new_trace_id
from repro.resilience.health import HealthCheck, HealthReport, server_health
from repro.serving.server import QueryRequest, QueryServer, ServingResult
from repro.types import EventKind

_REASONS = {
    200: "OK",
    207: "Multi-Status",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Validation-failure message prefixes the backend raises as
#: :class:`ServingError`; the gateway maps these to 400, everything
#: else to 500/504.
_CLIENT_ERRORS = (
    "unknown query kind",
    "event queries need",
    "shot queries need",
    "shot_flat queries need",
    "scene queries need",
    "the flat baseline does not support",
    "k must be",
    "nprobe must be",
    "rerank_k must be",
    "nprobe/rerank_k only apply",
)


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs of one :class:`HttpGateway`.

    ``tokens`` maps ``X-Auth-Token`` values to users; an empty map
    means the gateway only serves anonymous traffic.  ``access_log``
    turns on one structured JSON line per request on stderr (or the
    sink passed to :class:`HttpGateway`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    tokens: dict[str, User] = field(default_factory=dict)
    max_body: int = 1024 * 1024
    max_inflight: int = 64
    default_timeout: float | None = 5.0
    access_log: bool = False

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ServingError("max_inflight must be >= 1")
        if self.max_body < 1:
            raise ServingError("max_body must be >= 1")


class _HttpError(Exception):
    """Internal: carries an HTTP status + JSON error payload."""

    def __init__(
        self, status: int, message: str, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


class _RequestContext:
    """Per-request trace/accounting state threaded through routing."""

    __slots__ = ("trace_id", "span_id", "start_rel", "fanout")

    def __init__(
        self, trace_id: str, span_id: int | None, start_rel: float
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id  # reserved gateway span (None: tracing off)
        self.start_rel = start_rel
        self.fanout = 0  # shards the request fanned out to (access log)


class _Backend:
    """Adapter surface the gateway needs from a query backend."""

    def query(self, request: QueryRequest) -> ServingResult:
        """Execute one blocking query."""
        raise NotImplementedError

    def records(self) -> dict:
        """Registration records by title (skim endpoint)."""
        raise NotImplementedError

    def health(self) -> HealthReport:
        """Current health verdict."""
        raise NotImplementedError

    def sample_features(self, n: int) -> list[np.ndarray]:
        """Corpus feature vectors (workload endpoint)."""
        raise NotImplementedError

    def metrics_registry(self):
        """The metrics registry to expose on ``/metrics``."""
        raise NotImplementedError

    def metrics_text(self) -> str:
        """Prometheus text for ``GET /metrics``."""
        return render_prometheus(self.metrics_registry())

    def shard_count(self) -> int:
        """Shards a query fans out to (1 for the in-process server)."""
        return 1


class _LocalBackend(_Backend):
    """Adapter over the in-process :class:`QueryServer`."""

    def __init__(self, server: QueryServer) -> None:
        self._server = server

    def query(self, request: QueryRequest) -> ServingResult:
        """Delegate to :meth:`QueryServer.query`."""
        return self._server.query(request)

    def records(self) -> dict:
        """Records of the current snapshot."""
        return dict(self._server.manager.current().records)

    def health(self) -> HealthReport:
        """Standard single-server health probe."""
        return server_health(self._server)

    def sample_features(self, n: int) -> list[np.ndarray]:
        """Evenly spaced entries of the snapshot's flat index."""
        entries = self._server.manager.current().flat.entries
        if not entries:
            return []
        picks = sorted(
            {int(i) for i in np.linspace(0, len(entries) - 1, min(n, len(entries)))}
        )
        return [entries[i].features for i in picks]

    def metrics_registry(self):
        """The server's metrics registry."""
        return self._server.metrics.registry


class _ShardedBackend(_Backend):
    """Adapter over the scatter-gather coordinator."""

    def __init__(self, service) -> None:
        self._service = service

    def query(self, request: QueryRequest) -> ServingResult:
        """Delegate to :meth:`ShardedQueryService.query`."""
        return self._service.query(request)

    def records(self) -> dict:
        """Merged shard records."""
        return self._service.records()

    def health(self) -> HealthReport:
        """Fleet health verdict."""
        return self._service.health_report()

    def sample_features(self, n: int) -> list[np.ndarray]:
        """Cross-shard feature sample."""
        return self._service.sample_features(n)

    def metrics_registry(self):
        """The coordinator's metrics registry."""
        return self._service.metrics.registry

    def metrics_text(self) -> str:
        """Coordinator registry merged with every worker's scrape.

        Each worker family arrives with a ``shard`` label; a shard
        whose scrape failed contributes ``net_shard_up 0`` instead of
        taking the endpoint down.
        """
        return render_prometheus_dumps(self._service.metrics_dumps())

    def shard_count(self) -> int:
        """The fleet width queries scatter across."""
        return self._service.spec.num_shards


def _wrap_backend(backend) -> _Backend:
    if isinstance(backend, _Backend):
        return backend
    if isinstance(backend, QueryServer):
        return _LocalBackend(backend)
    return _ShardedBackend(backend)


def _serialize_hit(kind: str, hit) -> dict:
    if kind in ("shot", "shot_flat"):
        return {
            "video_title": hit.entry.video_title,
            "shot_id": hit.entry.shot_id,
            "scene_id": hit.entry.scene_id,
            "score": hit.score,
        }
    if kind == "scene":
        return {
            "video_title": hit.entry.video_title,
            "scene_id": hit.entry.scene_id,
            "event": hit.entry.event.value,
            "shot_count": hit.entry.shot_count,
            "score": hit.score,
        }
    return {
        "video_title": hit.video_title,
        "scene_id": hit.scene_id,
        "event": hit.event.value,
        "concept": hit.concept,
    }


def _serialize_result(result: ServingResult) -> dict:
    payload = {
        "kind": result.kind,
        "hits": [_serialize_hit(result.kind, hit) for hit in result.hits],
        "generation": result.generation,
        "cache_hit": result.cache_hit,
        "elapsed_ms": result.elapsed_seconds * 1000.0,
        "comparisons": result.comparisons,
        "degraded": result.degraded,
        "shards_missing": list(result.shards_missing),
        "approx_comparisons": result.approx_comparisons,
        "reranked": result.reranked,
    }
    if result.explain is not None:
        payload["explain"] = result.explain
    return payload


class HttpGateway:
    """HTTP/1.1 JSON front-end on a dedicated asyncio thread."""

    def __init__(
        self,
        backend,
        config: GatewayConfig | None = None,
        access_sink=None,
        cluster=None,
    ) -> None:
        self._backend = _wrap_backend(backend)
        # The owning ShardCluster, when the caller runs one: enables
        # POST /admin/restart and per-shard respawn counts in /health.
        self._cluster = cluster
        self.config = config if config is not None else GatewayConfig()
        # One JSON dict per request when config.access_log is on; the
        # default sink writes one line to stderr, tests inject a list
        # appender.
        self._access_sink = (
            access_sink if access_sink is not None else self._stderr_access_line
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._port: int | None = None
        self._inflight = threading.BoundedSemaphore(self.config.max_inflight)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="gateway",
        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "HttpGateway":
        """Bind the socket and start serving (returns once listening)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="http-gateway", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise ServingError(
                f"gateway failed to start: {self._startup_error}"
            )
        if self._port is None:
            raise ServingError("gateway did not come up within 10s")
        return self

    def stop(self) -> None:
        """Stop serving and join the loop thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "HttpGateway":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    @property
    def port(self) -> int:
        """The bound TCP port."""
        if self._port is None:
            raise ServingError("gateway is not running")
        return self._port

    @property
    def url(self) -> str:
        """Base URL of the gateway."""
        return f"http://{self.config.host}:{self.port}"

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_connection,
                    host=self.config.host,
                    port=self.config.port,
                )
            )
            self._server = server
            self._port = server.sockets[0].getsockname()[1]
            self._started.set()
            loop.run_forever()
        except BaseException as exc:  # surfaced to start()
            self._startup_error = exc
            self._started.set()
        finally:
            if self._server is not None:
                self._server.close()
                try:
                    loop.run_until_complete(self._server.wait_closed())
                except Exception:
                    pass
            # Idle keep-alive connections hold parked _handle_connection
            # tasks; cancel them or loop.close() warns about pending tasks.
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                try:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                except Exception:
                    pass
            loop.close()

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionError):
            return False
        if not request_line or request_line.strip() == b"":
            return False
        try:
            method, target, version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await self._respond(
                writer, 400, {"error": "malformed request line"}, close=True
            )
            return False

        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if b":" in line:
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()

        keep_alive = version.upper() != "HTTP/1.0" and (
            headers.get("connection", "").lower() != "close"
        )

        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            await self._respond(
                writer, 400, {"error": "invalid Content-Length"}, close=True
            )
            return False
        if length > self.config.max_body:
            await self._respond(
                writer,
                413,
                {
                    "error": (
                        f"body of {length} bytes exceeds limit of "
                        f"{self.config.max_body}"
                    )
                },
                close=True,
            )
            # Drain what the client already committed to sending, so it
            # can finish writing and read the 413 instead of an EPIPE;
            # then close (unbounded keep-alive after a refused body
            # would let a client stream forever).
            drained = 0
            while drained < length:
                chunk = await reader.read(min(65536, length - drained))
                if not chunk:
                    break
                drained += len(chunk)
            return False
        body = await reader.readexactly(length) if length else b""

        start = time.perf_counter()
        tracer = active_tracer()
        trace_id = headers.get("x-trace-id", "").strip() or new_trace_id()
        ctx = _RequestContext(
            trace_id=trace_id,
            # The gateway span's id is reserved up front so backend work
            # offloaded mid-request can nest under it; the span itself
            # is recorded once the response is ready (add_span_at).
            span_id=tracer.new_span_id() if tracer.enabled else None,
            start_rel=tracer.now(),
        )
        status, payload, extra = await self._route(
            method, target, headers, body, ctx
        )
        extra = dict(extra)
        extra.setdefault("X-Trace-Id", trace_id)
        path = target.partition("?")[0]
        if ctx.span_id is not None:
            tracer.add_span_at(
                "gateway.request",
                ctx.start_rel,
                tracer.now() - ctx.start_rel,
                span_id=ctx.span_id,
                method=method,
                path=path,
                status=status,
                trace_id=trace_id,
            )
        if self.config.access_log:
            self._access_log(
                {
                    "ts": round(time.time(), 6),
                    "trace_id": trace_id,
                    "method": method,
                    "path": path,
                    "status": status,
                    "fanout": ctx.fanout,
                    "latency_ms": round((time.perf_counter() - start) * 1e3, 3),
                }
            )
        text = payload if isinstance(payload, str) else None
        await self._respond(
            writer,
            status,
            payload if text is None else None,
            text=text,
            extra=extra,
            close=not keep_alive,
        )
        return keep_alive

    @staticmethod
    def _stderr_access_line(record: dict) -> None:
        print(json.dumps(record, separators=(",", ":")), file=sys.stderr, flush=True)

    def _access_log(self, record: dict) -> None:
        try:
            self._access_sink(record)
        except Exception:  # a broken sink must never fail the request
            pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | None,
        text: str | None = None,
        extra: dict | None = None,
        close: bool = False,
    ) -> None:
        if text is not None:
            body = text.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload if payload is not None else {}).encode(
                "utf-8"
            )
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        # Extra headers override the defaults (matched case-insensitively)
        # instead of duplicating them — e.g. the /metrics route pins its
        # own Content-Type.
        header_map: dict[str, str] = {
            "Content-Type": content_type,
            "Content-Length": str(len(body)),
            "Connection": "close" if close else "keep-alive",
        }
        for name, value in (extra or {}).items():
            for existing in list(header_map):
                if existing.lower() == name.lower():
                    del header_map[existing]
            header_map[name] = str(value)
        lines = [f"HTTP/1.1 {status} {reason}"]
        for name, value in header_map.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
        ctx: _RequestContext,
    ) -> tuple[int, dict | str, dict]:
        path, _, query_string = target.partition("?")
        try:
            if path == "/health":
                self._require_method(method, "GET")
                return await self._ep_health(ctx)
            if path == "/metrics":
                self._require_method(method, "GET")
                text = await self._offload(self._backend.metrics_text, ctx=ctx)
                return (
                    200,
                    text,
                    {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                )
            if path == "/debug/slow":
                self._require_method(method, "GET")
                return self._ep_slow()
            if path == "/workload":
                self._require_method(method, "GET")
                return await self._ep_workload(query_string, ctx)
            if path.startswith("/skim/"):
                self._require_method(method, "GET")
                return await self._ep_skim(path[len("/skim/") :], headers, ctx)
            if path in ("/query", "/scene_search"):
                self._require_method(method, "POST")
                return await self._ep_query(path, headers, body, ctx)
            if path == "/admin/restart":
                self._require_method(method, "POST")
                return await self._ep_admin_restart(headers, body, ctx)
            raise _HttpError(404, f"no such endpoint: {path}")
        except _HttpError as exc:
            extra = {}
            if exc.retry_after is not None:
                extra["Retry-After"] = f"{exc.retry_after:g}"
            return exc.status, {"error": exc.message}, extra

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method.upper() != expected:
            raise _HttpError(405, f"use {expected}")

    def _resolve_user(self, headers: dict[str, str]) -> User | None:
        token = headers.get("x-auth-token")
        if token is None:
            return None
        user = self.config.tokens.get(token)
        if user is None:
            raise _HttpError(401, "unknown auth token")
        return user

    def _resolve_timeout(self, headers: dict[str, str]) -> float | None:
        raw = headers.get("x-deadline-ms")
        if raw is None:
            return self.config.default_timeout
        try:
            deadline_ms = float(raw)
        except ValueError:
            raise _HttpError(400, f"invalid X-Deadline-Ms: {raw!r}") from None
        if deadline_ms <= 0:
            raise _HttpError(504, "deadline expired on arrival")
        return deadline_ms / 1000.0

    async def _offload(self, fn, *args, ctx: _RequestContext | None = None):
        """Run a blocking backend call on the bounded gateway pool.

        With ``ctx`` the executor thread adopts the request's gateway
        span and trace id for the duration of the call, so backend
        spans nest under the gateway span despite the thread hop.
        """
        if not self._inflight.acquire(blocking=False):
            raise _HttpError(
                503,
                f"gateway at capacity ({self.config.max_inflight} in flight)",
                retry_after=1.0,
            )
        loop = asyncio.get_running_loop()
        if ctx is not None:
            tracer = active_tracer()
            span_id, trace_id = ctx.span_id, ctx.trace_id

            def work():
                with tracer.adopt(span_id, trace_id):
                    return fn(*args)

        else:

            def work():
                return fn(*args)

        try:
            return await loop.run_in_executor(self._executor, work)
        finally:
            self._inflight.release()

    # -- endpoints -----------------------------------------------------

    async def _ep_query(
        self,
        path: str,
        headers: dict[str, str],
        body: bytes,
        ctx: _RequestContext,
    ) -> tuple[int, dict, dict]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        user = self._resolve_user(headers)
        timeout = self._resolve_timeout(headers)

        kind = payload.get("kind", "shot")
        if path == "/scene_search":
            kind = "scene"
        features = None
        if payload.get("features") is not None:
            try:
                features = np.asarray(payload["features"], dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise _HttpError(400, f"invalid features: {exc}") from None
            if features.ndim != 1:
                raise _HttpError(400, "features must be a flat number list")
        event = None
        if payload.get("event") is not None:
            try:
                event = EventKind(payload["event"])
            except ValueError:
                raise _HttpError(
                    400, f"unknown event kind: {payload['event']!r}"
                ) from None
        try:
            k = int(payload.get("k", 10))
        except (TypeError, ValueError):
            raise _HttpError(400, "k must be an integer") from None

        def _int_knob(name: str) -> int | None:
            value = payload.get(name)
            if value is None:
                return None
            try:
                return int(value)
            except (TypeError, ValueError):
                raise _HttpError(400, f"{name} must be an integer") from None

        request = QueryRequest(
            kind=str(kind),
            features=features,
            k=k,
            user=user,
            event=event,
            video_title=payload.get("video_title"),
            timeout=timeout,
            nprobe=_int_knob("nprobe"),
            rerank_k=_int_knob("rerank_k"),
            explain=bool(payload.get("explain", False)),
        )
        ctx.fanout = self._backend.shard_count()
        try:
            result = await self._offload(self._backend.query, request, ctx=ctx)
        except OverloadedError as exc:
            raise _HttpError(503, str(exc), retry_after=1.0) from None
        except ServingError as exc:
            message = str(exc)
            if message.startswith(_CLIENT_ERRORS):
                raise _HttpError(400, message) from None
            if "deadline" in message:
                raise _HttpError(504, message) from None
            raise _HttpError(500, message) from None
        except DatabaseError as exc:
            message = str(exc)
            if "not registered" in message:
                raise _HttpError(404, message) from None
            raise _HttpError(500, message) from None
        except ReproError as exc:
            raise _HttpError(500, str(exc)) from None
        return 200, _serialize_result(result), {}

    async def _ep_skim(
        self, video_id: str, headers: dict[str, str], ctx: _RequestContext
    ) -> tuple[int, dict, dict]:
        self._resolve_user(headers)  # auth applies, scope does not: skims
        # expose only registration metadata, never feature content.
        if not video_id:
            raise _HttpError(404, "missing video id")
        records = await self._offload(self._backend.records, ctx=ctx)
        record = records.get(video_id)
        if record is None:
            raise _HttpError(404, f"video {video_id!r} is not registered")
        scenes = [
            {"scene_id": scene_id, "event": value}
            for scene_id, value in sorted(record.events.items())
        ]
        return (
            200,
            {
                "video_id": video_id,
                "shot_count": record.shot_count,
                "scene_count": record.scene_count,
                "scenes": scenes,
                "degraded_stages": list(record.degraded_stages),
            },
            {},
        )

    def _ep_slow(self) -> tuple[int, dict, dict]:
        log = get_slow_log()
        return (
            200,
            {
                "slow": [entry.to_json() for entry in log.entries()],
                "recorded": log.recorded,
                "capacity": log.capacity,
            },
            {},
        )

    async def _ep_admin_restart(
        self, headers: dict[str, str], body: bytes, ctx: _RequestContext
    ) -> tuple[int, dict, dict]:
        if self._cluster is None:
            raise _HttpError(404, "no shard cluster attached to this gateway")
        self._resolve_user(headers)  # admin rides the same token auth
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        rolling = bool(payload.get("rolling", False))
        shard = payload.get("shard")
        graceful = bool(payload.get("graceful", True))
        if not rolling and shard is None:
            raise _HttpError(400, "pass \"rolling\": true or a \"shard\" id")
        if rolling and shard is not None:
            raise _HttpError(400, "rolling and shard are mutually exclusive")

        def work():
            if rolling:
                return self._cluster.restart_rolling(graceful=graceful)
            return [self._cluster.restart(int(shard), graceful=graceful)]

        try:
            reports = await self._offload(work, ctx=ctx)
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid shard id: {exc}") from None
        except ServingError as exc:
            raise _HttpError(500, str(exc)) from None
        return (
            200,
            {
                "restarted": [report.to_json() for report in reports],
                "rolling": rolling,
            },
            {},
        )

    def _augment_cluster_health(self, report: HealthReport) -> HealthReport:
        """Append a worker-fleet check (alive count, per-shard respawns)."""
        alive = set(self._cluster.alive())
        total = self._cluster.spec.num_shards
        counts = self._cluster.respawn_counts()
        respawn_bits = [
            f"shard {sid}: {counts.get(sid, 0)} respawns"
            for sid in sorted(ep.shard_id for ep in self._cluster.endpoints)
        ]
        ok = len(alive) == total
        report.checks.append(
            HealthCheck(
                name="cluster",
                ok=ok,
                detail=(
                    f"{len(alive)}/{total} workers alive, "
                    f"{self._cluster.restarts} restarts; "
                    + ", ".join(respawn_bits)
                ),
            )
        )
        if not ok:
            report.degraded = True
        return report

    async def _ep_health(self, ctx: _RequestContext) -> tuple[int, dict, dict]:
        report = await self._offload(self._backend.health, ctx=ctx)
        if self._cluster is not None:
            report = self._augment_cluster_health(report)
        status_code = {"ok": 200, "degraded": 207, "down": 503}[report.status]
        return (
            status_code,
            {
                "status": report.status,
                "live": report.live,
                "ready": report.ready,
                "degraded": report.degraded,
                "exit_code": report.exit_code,
                "checks": [
                    {"name": c.name, "ok": c.ok, "detail": c.detail}
                    for c in report.checks
                ],
            },
            {},
        )

    async def _ep_workload(
        self, query_string: str, ctx: _RequestContext
    ) -> tuple[int, dict, dict]:
        n = 16
        for part in query_string.split("&"):
            if part.startswith("n="):
                try:
                    n = max(1, min(int(part[2:]), 512))
                except ValueError:
                    raise _HttpError(400, "n must be an integer") from None
        pool = await self._offload(self._backend.sample_features, n, ctx=ctx)
        return (
            200,
            {"features": [[float(x) for x in vector] for vector in pool]},
            {},
        )


def probe_health(url: str, timeout: float = 5.0) -> HealthReport:
    """Probe a running gateway's ``/health`` (``classminer health --url``).

    Maps transport failures to a ``down`` report rather than raising,
    so the CLI's 0/1/2 exit-code contract holds for dead servers too.
    """
    target = url.rstrip("/") + "/health"
    try:
        with urllib.request.urlopen(target, timeout=timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        # 503 carries the JSON verdict too; other codes mean "down".
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except Exception:
            return HealthReport(
                live=False,
                ready=False,
                degraded=True,
                checks=[
                    HealthCheck("http", False, f"HTTP {exc.code} from {target}")
                ],
            )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        return HealthReport(
            live=False,
            ready=False,
            degraded=True,
            checks=[HealthCheck("http", False, f"unreachable: {exc}")],
        )
    try:
        return HealthReport(
            live=bool(payload["live"]),
            ready=bool(payload["ready"]),
            degraded=bool(payload["degraded"]),
            checks=[
                HealthCheck(
                    name=str(check["name"]),
                    ok=bool(check["ok"]),
                    detail=str(check.get("detail", "")),
                )
                for check in payload.get("checks", [])
            ],
        )
    except (KeyError, TypeError) as exc:
        return HealthReport(
            live=False,
            ready=False,
            degraded=True,
            checks=[HealthCheck("http", False, f"malformed health body: {exc}")],
        )


def request_restart(
    url: str,
    *,
    rolling: bool = False,
    shard: int | None = None,
    graceful: bool = True,
    token: str | None = None,
    timeout: float = 120.0,
) -> dict:
    """POST ``/admin/restart`` on a running gateway.

    Backs ``classminer shard restart --url``.  A rolling restart waits
    for each worker to answer pings before the next is cycled, so the
    default timeout is generous.  Raises
    :class:`~repro.errors.ServingError` on transport failure or a
    non-2xx response (with the server's error detail when it sent one).
    """
    body: dict = {"graceful": graceful}
    if rolling:
        body["rolling"] = True
    if shard is not None:
        body["shard"] = int(shard)
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["X-Auth-Token"] = token
    request = urllib.request.Request(
        url.rstrip("/") + "/admin/restart",
        data=json.dumps(body).encode("utf-8"),
        headers=headers,
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:
            detail = ""
        suffix = f": {detail}" if detail else ""
        raise ServingError(
            f"restart request failed with HTTP {exc.code}{suffix}"
        ) from exc
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise ServingError(f"restart request failed: {exc}") from exc
