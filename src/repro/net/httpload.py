"""Closed-loop HTTP load generator for the gateway.

``classminer loadtest --http URL`` drives a *running* gateway over real
sockets — unlike :mod:`repro.serving.loadgen`, which exercises the
in-process server.  Query vectors come from the gateway's own
``GET /workload`` endpoint, so the client needs no local database.

Error classes are counted separately, because they mean different
things under saturation: ``503`` is the admission control working
(shed load, honour ``Retry-After``), ``timeout`` (socket timeouts and
504) is the latency budget failing, and other ``5xx`` is the server
actually breaking.
"""

from __future__ import annotations

import http.client
import json
import math
import random
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass, field

from repro.errors import ServingError

#: Query-kind mix, matching the in-process loadgen's default.
DEFAULT_HTTP_MIX = {"shot": 0.55, "shot_flat": 0.15, "scene": 0.2, "event": 0.1}

_EVENT_VALUES = ("presentation", "dialog", "clinical_operation")


@dataclass(frozen=True)
class HttpLoadConfig:
    """One HTTP load run.

    ``deadline_ms`` is sent as ``X-Deadline-Ms`` on every request;
    ``None`` leaves the server's default in place.
    """

    url: str
    duration_seconds: float = 5.0
    concurrency: int = 8
    k: int = 10
    mix: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_HTTP_MIX)
    )
    deadline_ms: float | None = None
    pool_size: int = 64
    seed: int = 0
    token: str | None = None

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ServingError("duration must be > 0")
        if self.concurrency < 1:
            raise ServingError("concurrency must be >= 1")
        if not self.mix or not math.isclose(
            sum(self.mix.values()), 1.0, abs_tol=1e-6
        ):
            raise ServingError("mix weights must sum to 1")


@dataclass
class HttpLoadReport:
    """What one HTTP load run measured."""

    duration_seconds: float
    total: int = 0
    ok: int = 0
    rejected_503: int = 0
    timeouts: int = 0
    server_errors_5xx: int = 0
    other_errors: int = 0
    degraded: int = 0
    cache_hits: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0

    @property
    def qps(self) -> float:
        """Completed (2xx) requests per second."""
        return self.ok / self.duration_seconds if self.duration_seconds else 0.0

    @property
    def error_rate(self) -> float:
        """Non-2xx fraction of all attempts."""
        failures = self.total - self.ok
        return failures / self.total if self.total else 0.0

    def to_json(self) -> dict:
        """Plain-JSON form (benchmarks, CI artifacts)."""
        return {
            "duration_seconds": self.duration_seconds,
            "total": self.total,
            "ok": self.ok,
            "qps": self.qps,
            "rejected_503": self.rejected_503,
            "timeouts": self.timeouts,
            "server_errors_5xx": self.server_errors_5xx,
            "other_errors": self.other_errors,
            "degraded": self.degraded,
            "cache_hits": self.cache_hits,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
        }

    def render(self) -> str:
        """Human-readable summary (the CLI output)."""
        return "\n".join(
            [
                f"http load: {self.ok}/{self.total} ok in "
                f"{self.duration_seconds:.1f}s ({self.qps:.1f} qps, "
                f"{self.error_rate * 100:.1f}% errors)",
                f"  latency: p50 {self.p50_ms:.2f}ms, "
                f"p95 {self.p95_ms:.2f}ms, p99 {self.p99_ms:.2f}ms",
                f"  errors: {self.rejected_503} x 503 (shed), "
                f"{self.timeouts} timeouts, "
                f"{self.server_errors_5xx} x 5xx, "
                f"{self.other_errors} other",
                f"  degraded responses: {self.degraded}, "
                f"cache hits: {self.cache_hits}",
            ]
        )


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[min(rank, len(sorted_values) - 1)]


def _split_url(url: str) -> tuple[str, int, str]:
    parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
    if parsed.scheme not in ("http", ""):
        raise ServingError(f"only http:// urls are supported, got {url!r}")
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    return host, port, parsed.path.rstrip("/")


def _fetch_pool(
    host: str, port: int, base: str, n: int, timeout: float
) -> list[list[float]]:
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", f"{base}/workload?n={n}")
        response = connection.getresponse()
        body = response.read()
        if response.status != 200:
            raise ServingError(
                f"workload fetch failed: HTTP {response.status} "
                f"{body[:200]!r}"
            )
        payload = json.loads(body.decode("utf-8"))
        pool = payload.get("features", [])
    finally:
        connection.close()
    if not pool:
        raise ServingError("gateway returned an empty workload pool")
    return pool


class _Counters:
    """Mutable tallies shared by the client threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.total = 0
        self.ok = 0
        self.rejected = 0
        self.timeouts = 0
        self.fivexx = 0
        self.other = 0
        self.degraded = 0
        self.cache_hits = 0
        self.latencies: list[float] = []


def _client_loop(
    config: HttpLoadConfig,
    host: str,
    port: int,
    base: str,
    pool: list[list[float]],
    stop_at: float,
    counters: _Counters,
    worker_id: int,
) -> None:
    rng = random.Random(config.seed * 10_007 + worker_id)
    kinds = list(config.mix)
    weights = [config.mix[kind] for kind in kinds]
    timeout = (
        config.deadline_ms / 1000.0 + 1.0
        if config.deadline_ms is not None
        else 10.0
    )
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    headers = {"Content-Type": "application/json"}
    if config.token is not None:
        headers["X-Auth-Token"] = config.token
    if config.deadline_ms is not None:
        headers["X-Deadline-Ms"] = f"{config.deadline_ms:g}"
    try:
        while time.perf_counter() < stop_at:
            kind = rng.choices(kinds, weights=weights)[0]
            body: dict = {"kind": kind, "k": config.k}
            if kind == "event":
                body["event"] = rng.choice(_EVENT_VALUES)
            else:
                body["features"] = rng.choice(pool)
            started = time.perf_counter()
            try:
                connection.request(
                    "POST", f"{base}/query", json.dumps(body), headers
                )
                response = connection.getresponse()
                payload = response.read()
                status = response.status
            except (TimeoutError, socket.timeout):
                connection.close()
                with counters.lock:
                    counters.total += 1
                    counters.timeouts += 1
                continue
            except (http.client.HTTPException, OSError):
                connection.close()
                with counters.lock:
                    counters.total += 1
                    counters.other += 1
                continue
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            degraded = cache_hit = False
            if status == 200:
                try:
                    parsed = json.loads(payload.decode("utf-8"))
                    degraded = bool(parsed.get("degraded"))
                    cache_hit = bool(parsed.get("cache_hit"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    pass
            with counters.lock:
                counters.total += 1
                if status == 200:
                    counters.ok += 1
                    counters.latencies.append(elapsed_ms)
                    counters.degraded += int(degraded)
                    counters.cache_hits += int(cache_hit)
                elif status == 503:
                    counters.rejected += 1
                elif status == 504:
                    counters.timeouts += 1
                elif 500 <= status < 600:
                    counters.fivexx += 1
                else:
                    counters.other += 1
            if status == 503:
                # Honour the shed signal briefly instead of hammering.
                time.sleep(min(0.01, max(stop_at - time.perf_counter(), 0)))
    finally:
        connection.close()


def run_http_load(config: HttpLoadConfig) -> HttpLoadReport:
    """Drive a running gateway and measure latency + error classes."""
    host, port, base = _split_url(config.url)
    pool = _fetch_pool(host, port, base, config.pool_size, timeout=10.0)
    counters = _Counters()
    stop_at = time.perf_counter() + config.duration_seconds
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(config, host, port, base, pool, stop_at, counters, i),
            name=f"http-load-{i}",
            daemon=True,
        )
        for i in range(config.concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    latencies = sorted(counters.latencies)
    return HttpLoadReport(
        duration_seconds=wall,
        total=counters.total,
        ok=counters.ok,
        rejected_503=counters.rejected,
        timeouts=counters.timeouts,
        server_errors_5xx=counters.fivexx,
        other_errors=counters.other,
        degraded=counters.degraded,
        cache_hits=counters.cache_hits,
        p50_ms=_percentile(latencies, 0.50),
        p95_ms=_percentile(latencies, 0.95),
        p99_ms=_percentile(latencies, 0.99),
    )
