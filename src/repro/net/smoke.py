"""Network smoke: HTTP gateway over a live 2-shard cluster.

``make net-smoke`` exercises the whole serving wire end to end with
real subprocess workers and real sockets:

1. a synthetic corpus is saved unsharded *and* partitioned into two
   shard directories; a worker subprocess serves each shard;
2. scripted queries through the scatter-gather coordinator must match
   the single-process :class:`~repro.serving.server.QueryServer`
   bit for bit (ids, scores, tie-break order, comparison counts);
3. the same queries via HTTP return 200 with identical ranked ids;
4. protocol edges behave: malformed JSON 400, unknown endpoint 404,
   expired deadline 504, oversized body 413, unknown token 401,
   ``/metrics`` parses as Prometheus text;
5. one worker is hard-killed mid-traffic: answers keep flowing with
   ``degraded: true`` and the dead shard listed in ``shards_missing``
   (never an error), and after the cluster watchdog respawns it the
   service returns full-strength, bit-identical answers again without
   a coordinator or gateway restart.

Everything is seeded and deterministic; any check failure exits 1.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.net.cluster import ShardCluster
from repro.net.coordinator import CoordinatorConfig, ShardedQueryService
from repro.net.gateway import GatewayConfig, HttpGateway
from repro.net.shard import build_shards
from repro.obs.export import validate_prometheus_text
from repro.serving.server import QueryRequest, QueryServer, ServerConfig
from repro.storage.lazy import SQLVideoDatabase
from repro.storage.sqlcatalog import save_database
from repro.storage.synthetic import build_synthetic_database
from repro.types import EventKind


def _report(name: str, ok: bool, detail: str) -> bool:
    print(f"net-smoke: [{'ok ' if ok else 'FAIL'}] {name} — {detail}")
    return ok


def _keys(result) -> list[tuple]:
    out = []
    for hit in result.hits:
        entry = getattr(hit, "entry", hit)
        out.append(
            (
                entry.video_title,
                getattr(entry, "shot_id", getattr(entry, "scene_id", None)),
                getattr(hit, "score", None),
            )
        )
    return out


def _http(url: str, method: str = "GET", body: bytes | None = None, headers=None):
    request = urllib.request.Request(
        url, data=body, headers=headers or {}, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=15.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _post_query(base: str, payload: dict, headers=None):
    body = json.dumps(payload).encode("utf-8")
    merged = {"Content-Type": "application/json"}
    merged.update(headers or {})
    return _http(f"{base}/query", "POST", body, merged)


def run_smoke(videos: int = 120, shots: int = 8, seed: int = 0) -> int:
    """Run the network smoke; returns a process exit code."""
    started = time.perf_counter()
    tmp = Path(tempfile.mkdtemp(prefix="net_smoke_"))
    ok = True
    server = service = gateway = cluster = single = None
    try:
        database = build_synthetic_database(
            videos=videos, shots_per_video=shots, scenes_per_video=3, seed=seed
        )
        save_database(database, tmp / "single")
        spec = build_shards(database, tmp / "shards", 2)
        ok &= _report(
            "shard build",
            spec.num_shards == 2
            and sum(info.entry_count for info in spec.shards)
            == spec.entry_count,
            spec.describe().splitlines()[0],
        )

        single = SQLVideoDatabase.open(tmp / "single")
        server = QueryServer(
            database=single, config=ServerConfig(workers=2)
        ).start()
        cluster = ShardCluster(tmp / "shards", spec=spec).start()
        service = ShardedQueryService(
            spec, cluster.endpoints, config=CoordinatorConfig(breaker_reset=0.5)
        )
        gateway = HttpGateway(service, GatewayConfig(tokens={})).start()
        base = gateway.url

        # -- scripted equivalence: sharded vs single-process ----------
        rng = np.random.default_rng(seed + 1)
        entries = single.flat_index.entries
        probes = [
            entries[int(rng.integers(0, len(entries)))].features
            + rng.normal(0.0, 0.01, entries[0].features.shape)
            for _ in range(8)
        ] + [rng.random(entries[0].features.shape)]
        mismatches = []
        for p, probe in enumerate(probes):
            for kind in ("shot", "shot_flat", "scene"):
                a = server.query(QueryRequest(kind=kind, features=probe, k=10))
                b = service.query(QueryRequest(kind=kind, features=probe, k=10))
                if _keys(a) != _keys(b) or a.comparisons != b.comparisons:
                    mismatches.append((p, kind))
        for event in EventKind.known_kinds():
            a = server.query(QueryRequest(kind="event", event=event))
            b = service.query(QueryRequest(kind="event", event=event))
            if _keys(a) != _keys(b):
                mismatches.append(("event", event.value))
        ok &= _report(
            "scatter-gather equivalence",
            not mismatches,
            f"{len(probes)} probes x shot/flat/scene + events, "
            + ("bit-identical" if not mismatches else f"diverged: {mismatches}"),
        )

        # -- the same answers over HTTP --------------------------------
        http_ok = True
        probe = probes[0]
        direct = service.query(QueryRequest(kind="shot", features=probe, k=5))
        status, body = _post_query(
            base, {"kind": "shot", "features": [float(x) for x in probe], "k": 5}
        )
        parsed = json.loads(body)
        http_ok &= status == 200 and not parsed["degraded"]
        http_ok &= [
            (hit["video_title"], hit["shot_id"]) for hit in parsed["hits"]
        ] == [(h.entry.video_title, h.entry.shot_id) for h in direct.hits]
        title = next(iter(single.videos))
        status, body = _http(f"{base}/skim/{title}")
        skim = json.loads(body)
        http_ok &= status == 200 and skim["scene_count"] == 3
        ok &= _report(
            "http query + skim",
            http_ok,
            f"/query matches coordinator, /skim/{title} has "
            f"{len(skim.get('scenes', []))} scenes",
        )

        # -- protocol edges --------------------------------------------
        edges = []
        status, _ = _http(f"{base}/health")
        edges.append(("health-200", status == 200))
        status, body = _http(f"{base}/metrics")
        try:
            validate_prometheus_text(body.decode("utf-8"))
            edges.append(("metrics-valid", status == 200))
        except Exception as exc:
            edges.append((f"metrics-invalid:{exc}", False))
        status, _ = _http(f"{base}/query", "POST", b"{not json",
                          {"Content-Type": "application/json"})
        edges.append(("malformed-json-400", status == 400))
        status, _ = _http(f"{base}/nope")
        edges.append(("unknown-endpoint-404", status == 404))
        status, _ = _post_query(
            base,
            {"kind": "shot", "features": [0.0]},
            {"X-Deadline-Ms": "0"},
        )
        edges.append(("expired-deadline-504", status == 504))
        status, _ = _post_query(
            base, {"kind": "shot", "features": [0.0] * 300_000}
        )
        edges.append(("oversized-body-413", status == 413))
        status, _ = _post_query(
            base,
            {"kind": "shot", "features": [float(x) for x in probe]},
            {"X-Auth-Token": "who-is-this"},
        )
        edges.append(("unknown-token-401", status == 401))
        failed = [name for name, good in edges if not good]
        ok &= _report(
            "protocol edges",
            not failed,
            "all behaved" if not failed else f"failed: {failed}",
        )

        # -- kill one shard: degraded answers, then full recovery ------
        victim = cluster.endpoints[0].shard_id
        cluster.kill(victim)
        degraded_seen = False
        deadline = time.perf_counter() + 30.0
        while time.perf_counter() < deadline:
            # Fresh probes every time: a cached answer would not scatter.
            fresh = rng.normal(0.0, 1.0, entries[0].features.shape)
            result = service.query(
                QueryRequest(kind="shot", features=np.abs(fresh), k=10)
            )
            if result.shards_missing:
                degraded_seen = (
                    degraded_seen or victim in result.shards_missing
                )
            time.sleep(0.05)
            if degraded_seen:
                break
        ok &= _report(
            "degraded under shard loss",
            degraded_seen,
            f"shard {victim} reported in shards_missing, answers kept flowing",
        )

        recovered = False
        recovery_probe = np.abs(rng.normal(0.0, 1.0, entries[0].features.shape))
        expect = _keys(
            server.query(QueryRequest(kind="shot", features=recovery_probe, k=10))
        )
        deadline = time.perf_counter() + 30.0
        while time.perf_counter() < deadline:
            result = service.query(
                QueryRequest(kind="shot", features=recovery_probe, k=10)
            )
            if not result.shards_missing and _keys(result) == expect:
                recovered = True
                break
            time.sleep(0.1)
        ok &= _report(
            "watchdog recovery",
            recovered,
            f"{cluster.respawns} respawn(s); full bit-identical answers "
            "restored without restarting coordinator or gateway",
        )

        status, body = _http(f"{base}/health")
        verdict = json.loads(body)
        ok &= _report(
            "health after recovery",
            status == 200 and verdict["status"] == "ok",
            f"HTTP {status}, status={verdict.get('status')}",
        )
    except Exception as exc:  # smoke must fail loudly, not crash silently
        ok = _report("unexpected error", False, f"{type(exc).__name__}: {exc}")
    finally:
        for closable in (gateway, server):
            if closable is not None:
                closable.stop()
        if service is not None:
            service.close()
        if cluster is not None:
            cluster.stop()
        if single is not None:
            single.close()
        shutil.rmtree(tmp, ignore_errors=True)
    print(
        f"net-smoke: {'PASS' if ok else 'FAIL'} "
        f"in {time.perf_counter() - started:.1f}s"
    )
    return 0 if ok else 1


def main() -> int:
    """Entry point of ``python -m repro.net.smoke``."""
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())
