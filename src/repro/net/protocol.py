"""Wire protocol: checksummed length-prefixed JSON frames + array codec.

Every message between the coordinator and a shard worker is one frame:
an 8-byte header — 4-byte big-endian unsigned length, then the 4-byte
CRC32 of the payload — followed by that many bytes of UTF-8 JSON.  The
checksum means corruption on the wire is *detected* at the framing
layer (:class:`~repro.errors.FrameCorruptError`), never silently
JSON-decoded into a wrong answer.  Feature vectors ride inside the JSON
as base64 of their raw float64 bytes — JSON numbers would round-trip
through ``repr`` and are slower to parse, and the merge-exactness
guarantee needs the exact bits either way.

Transport failures raise typed errors: a reset/refused/truncated
connection is :class:`~repro.errors.RpcTransportError` (transient —
every shard op is idempotent, so the coordinator retries within the
query deadline), an exhausted deadline is
:class:`~repro.errors.DeadlineExpiredError` (terminal).  Four seeded
fault points (``net.connect_refused``, ``net.frame_corrupt``,
``net.frame_truncated``, ``net.conn_reset``) let chaos plans inject
each failure on demand; all are free when no plan is armed.

The :class:`RpcClient` keeps one persistent connection and serialises
calls on it; :class:`ShardEndpoint` pools several clients per shard so
concurrent queries fan out without queueing behind each other, and can
be re-pointed at a new address when the cluster respawns a dead worker.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
import threading
import time
import zlib

import numpy as np

from repro.errors import (
    DeadlineExpiredError,
    FaultInjectedError,
    FrameCorruptError,
    RpcTransportError,
    ServingError,
    WorkerDrainingError,
)
from repro.resilience.faults import corrupt_payload, fault_point

#: Frames larger than this are refused on both ends (corrupt length
#: prefixes must not trigger gigabyte allocations).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Frame header: payload length, then CRC32 of the payload bytes.
FRAME_HEADER = struct.Struct("!II")


def pack_array(array: np.ndarray) -> dict:
    """Encode an array as base64 of its contiguous float64 bytes.

    The decoded array is bit-identical to the input — the property the
    sharded merge relies on for exact scores and cache digests.
    """
    array = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
    return {
        "shape": list(array.shape),
        "b64": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def unpack_array(payload: dict) -> np.ndarray:
    """Decode an array packed by :func:`pack_array`."""
    try:
        raw = base64.b64decode(payload["b64"], validate=True)
        shape = tuple(int(n) for n in payload["shape"])
        array = np.frombuffer(raw, dtype=np.float64)
        return array.reshape(shape).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise ServingError(f"malformed packed array: {exc}") from exc


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialise ``message`` and write one checksummed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ServingError(f"frame of {len(payload)} bytes exceeds protocol limit")
    checksum = zlib.crc32(payload)
    # Corruption is injected *after* the checksum is computed — the
    # receiver's CRC verification is what must catch it.
    payload = corrupt_payload("net.frame_corrupt", payload)
    frame = FRAME_HEADER.pack(len(payload), checksum) + payload
    try:
        fault_point("net.frame_truncated")
    except FaultInjectedError as exc:
        # A frame that claims the full length but carries half the
        # payload, then a severed connection: the receiver observes
        # EOF mid-frame, exactly like a peer that died mid-write.
        sock.sendall(frame[: FRAME_HEADER.size + len(payload) // 2])
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        raise RpcTransportError(f"injected truncation: {exc}") from exc
    sock.sendall(frame)


def recv_frame(sock: socket.socket) -> dict:
    """Read one frame; raises typed errors on EOF, corruption, garbage."""
    header = _recv_exact(sock, FRAME_HEADER.size)
    length, checksum = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServingError(f"frame of {length} bytes exceeds protocol limit")
    payload = _recv_exact(sock, length)
    if zlib.crc32(payload) != checksum:
        raise FrameCorruptError(
            f"frame checksum mismatch over {length} bytes "
            "(corruption detected; dropping connection)"
        )
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServingError(f"malformed frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ServingError("frame payload must be a JSON object")
    return message


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise RpcTransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class RpcClient:
    """One persistent connection to a shard worker.

    ``call`` sends a request frame and waits for the response frame,
    bounding the wait by the query's remaining deadline (propagated as
    a socket timeout *and* inside the request as ``deadline_ms``).  Any
    transport error tears the connection down so the next call starts
    clean; the caller's circuit breaker decides whether to keep trying.
    """

    def __init__(
        self, host: str, port: int, default_timeout: float = 5.0
    ) -> None:
        self._host = host
        self._port = port
        self._default_timeout = default_timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        try:
            fault_point("net.connect_refused")
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._default_timeout
            )
        except (OSError, FaultInjectedError) as exc:
            raise RpcTransportError(
                f"connect to {self._host}:{self._port} failed: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def close(self) -> None:
        """Drop the connection (reconnects lazily on the next call)."""
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
                self._sock = None

    def call(
        self,
        request: dict,
        deadline: float | None = None,
        trace_id: str | None = None,
        parent_span: int | None = None,
    ) -> dict:
        """One request/response round-trip.

        ``deadline`` is absolute ``time.perf_counter()`` time; ``None``
        falls back to the client's default timeout.  ``trace_id`` /
        ``parent_span`` stamp distributed-trace context onto the frame:
        a worker that sees them records spans under that parent and
        ships them back as ``spans`` in the response.  Raises
        :class:`~repro.errors.DeadlineExpiredError` on expiry,
        :class:`~repro.errors.RpcTransportError` on transient transport
        failure (reset, refused, truncated/corrupt frame — retry-safe),
        and plain :class:`ServingError` on a worker-side error response
        (``ok: false``) or a timed-out in-flight call.
        """
        fault_point("net.rpc")
        if trace_id is not None:
            request = dict(request, trace_id=trace_id)
            if parent_span is not None:
                request["parent_span"] = parent_span
        if deadline is None:
            timeout = self._default_timeout
        else:
            timeout = deadline - time.perf_counter()
            if timeout <= 0:
                raise DeadlineExpiredError("deadline expired before shard call")
            request = dict(request, deadline_ms=timeout * 1000.0)
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = self._connect()
                self._sock.settimeout(timeout)
                send_frame(self._sock, request)
                try:
                    fault_point("net.conn_reset")
                except FaultInjectedError as exc:
                    raise RpcTransportError(
                        f"connection reset by peer: {exc}"
                    ) from exc
                response = recv_frame(self._sock)
            except ServingError:
                self._drop_locked()
                raise
            except TimeoutError as exc:
                # Not transient: the in-flight call already consumed its
                # socket budget — hedging, not retrying, covers slowness.
                self._drop_locked()
                raise ServingError(f"shard rpc timed out: {exc}") from exc
            except OSError as exc:
                self._drop_locked()
                raise RpcTransportError(f"shard rpc failed: {exc}") from exc
        if not response.get("ok", False):
            detail = response.get("error", "unknown failure")
            if response.get("draining"):
                raise WorkerDrainingError(f"shard draining: {detail}")
            raise ServingError(f"shard error: {detail}")
        return response

    def _drop_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None


class ShardEndpoint:
    """Address + bounded connection pool for one shard.

    Connections are created lazily up to ``pool_size`` and reused LIFO;
    when every connection is busy a caller waits (bounded by its
    deadline) rather than opening more.  :meth:`reset` re-points the
    endpoint after the cluster respawns a worker on a new port, closing
    every pooled connection so nothing keeps talking to the corpse.
    """

    def __init__(
        self,
        shard_id: int,
        host: str,
        port: int,
        pool_size: int = 4,
        default_timeout: float = 5.0,
    ) -> None:
        if pool_size < 1:
            raise ServingError("endpoint pool size must be >= 1")
        self.shard_id = shard_id
        self._host = host
        self._port = port
        self._pool_size = pool_size
        self._default_timeout = default_timeout
        self._lock = threading.Lock()
        self._idle: list[RpcClient] = []
        self._created = 0
        self._available = threading.Semaphore(pool_size)
        self._epoch = 0

    @property
    def address(self) -> tuple[str, int]:
        """Current ``(host, port)`` of the worker."""
        with self._lock:
            return (self._host, self._port)

    def reset(self, host: str, port: int) -> None:
        """Re-point at a respawned worker, discarding pooled connections."""
        with self._lock:
            self._host = host
            self._port = port
            self._epoch += 1
            stale, self._idle = self._idle, []
            self._created = 0
        for client in stale:
            client.close()

    def _acquire(self, deadline: float | None) -> tuple[RpcClient, int]:
        timeout = (
            self._default_timeout
            if deadline is None
            else max(deadline - time.perf_counter(), 0.0)
        )
        if not self._available.acquire(timeout=timeout):
            if deadline is not None:
                raise DeadlineExpiredError(
                    "no shard connection available before deadline"
                )
            raise ServingError(
                "shard connection pool exhausted "
                f"({self._pool_size} connections busy)"
            )
        with self._lock:
            if self._idle:
                return self._idle.pop(), self._epoch
            self._created += 1
            return (
                RpcClient(self._host, self._port, self._default_timeout),
                self._epoch,
            )

    def _release(self, client: RpcClient, epoch: int) -> None:
        with self._lock:
            if epoch == self._epoch:
                self._idle.append(client)
                client = None  # type: ignore[assignment]
        if client is not None:  # endpoint was reset while we held it
            client.close()
        self._available.release()

    def call(
        self,
        request: dict,
        deadline: float | None = None,
        trace_id: str | None = None,
        parent_span: int | None = None,
    ) -> dict:
        """Round-trip through a pooled connection (trace context rides
        the frame — see :meth:`RpcClient.call`).

        An already-expired deadline raises
        :class:`~repro.errors.DeadlineExpiredError` up front instead of
        passing a non-positive timeout into the pool/socket layers.
        """
        if deadline is not None and deadline - time.perf_counter() <= 0:
            raise DeadlineExpiredError("deadline expired before shard call")
        client, epoch = self._acquire(deadline)
        try:
            return client.call(
                request,
                deadline=deadline,
                trace_id=trace_id,
                parent_span=parent_span,
            )
        except BaseException:
            client.close()
            raise
        finally:
            self._release(client, epoch)

    def close(self) -> None:
        """Close every pooled connection."""
        with self._lock:
            stale, self._idle = self._idle, []
            self._created = 0
            self._epoch += 1
        for client in stale:
            client.close()
