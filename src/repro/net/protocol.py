"""Wire protocol: length-prefixed JSON frames + bit-exact array codec.

Every message between the coordinator and a shard worker is one frame:
a 4-byte big-endian unsigned length followed by that many bytes of
UTF-8 JSON.  Feature vectors ride inside the JSON as base64 of their
raw float64 bytes — JSON numbers would round-trip through ``repr`` and
are slower to parse, and the merge-exactness guarantee needs the exact
bits either way.

The :class:`RpcClient` keeps one persistent connection and serialises
calls on it; :class:`ShardEndpoint` pools several clients per shard so
concurrent queries fan out without queueing behind each other, and can
be re-pointed at a new address when the cluster respawns a dead worker.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
import threading
import time

import numpy as np

from repro.errors import ServingError
from repro.resilience.faults import fault_point

#: Frames larger than this are refused on both ends (corrupt length
#: prefixes must not trigger gigabyte allocations).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct("!I")


def pack_array(array: np.ndarray) -> dict:
    """Encode an array as base64 of its contiguous float64 bytes.

    The decoded array is bit-identical to the input — the property the
    sharded merge relies on for exact scores and cache digests.
    """
    array = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
    return {
        "shape": list(array.shape),
        "b64": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def unpack_array(payload: dict) -> np.ndarray:
    """Decode an array packed by :func:`pack_array`."""
    try:
        raw = base64.b64decode(payload["b64"], validate=True)
        shape = tuple(int(n) for n in payload["shape"])
        array = np.frombuffer(raw, dtype=np.float64)
        return array.reshape(shape).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise ServingError(f"malformed packed array: {exc}") from exc


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialise ``message`` and write one length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ServingError(f"frame of {len(payload)} bytes exceeds protocol limit")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> dict:
    """Read one frame; raises :class:`ServingError` on EOF or garbage."""
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServingError(f"frame of {length} bytes exceeds protocol limit")
    payload = _recv_exact(sock, length)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServingError(f"malformed frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ServingError("frame payload must be a JSON object")
    return message


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ServingError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class RpcClient:
    """One persistent connection to a shard worker.

    ``call`` sends a request frame and waits for the response frame,
    bounding the wait by the query's remaining deadline (propagated as
    a socket timeout *and* inside the request as ``deadline_ms``).  Any
    transport error tears the connection down so the next call starts
    clean; the caller's circuit breaker decides whether to keep trying.
    """

    def __init__(
        self, host: str, port: int, default_timeout: float = 5.0
    ) -> None:
        self._host = host
        self._port = port
        self._default_timeout = default_timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._default_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def close(self) -> None:
        """Drop the connection (reconnects lazily on the next call)."""
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
                self._sock = None

    def call(
        self,
        request: dict,
        deadline: float | None = None,
        trace_id: str | None = None,
        parent_span: int | None = None,
    ) -> dict:
        """One request/response round-trip.

        ``deadline`` is absolute ``time.perf_counter()`` time; ``None``
        falls back to the client's default timeout.  ``trace_id`` /
        ``parent_span`` stamp distributed-trace context onto the frame:
        a worker that sees them records spans under that parent and
        ships them back as ``spans`` in the response.  Raises
        :class:`ServingError` on expiry, transport failure, or a
        worker-side error response (``ok: false``).
        """
        fault_point("net.rpc")
        if trace_id is not None:
            request = dict(request, trace_id=trace_id)
            if parent_span is not None:
                request["parent_span"] = parent_span
        if deadline is None:
            timeout = self._default_timeout
        else:
            timeout = deadline - time.perf_counter()
            if timeout <= 0:
                raise ServingError("deadline expired before shard call")
            request = dict(request, deadline_ms=timeout * 1000.0)
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = self._connect()
                self._sock.settimeout(timeout)
                send_frame(self._sock, request)
                response = recv_frame(self._sock)
            except ServingError:
                self._drop_locked()
                raise
            except OSError as exc:
                self._drop_locked()
                raise ServingError(f"shard rpc failed: {exc}") from exc
        if not response.get("ok", False):
            raise ServingError(
                f"shard error: {response.get('error', 'unknown failure')}"
            )
        return response

    def _drop_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None


class ShardEndpoint:
    """Address + bounded connection pool for one shard.

    Connections are created lazily up to ``pool_size`` and reused LIFO;
    when every connection is busy a caller waits (bounded by its
    deadline) rather than opening more.  :meth:`reset` re-points the
    endpoint after the cluster respawns a worker on a new port, closing
    every pooled connection so nothing keeps talking to the corpse.
    """

    def __init__(
        self,
        shard_id: int,
        host: str,
        port: int,
        pool_size: int = 4,
        default_timeout: float = 5.0,
    ) -> None:
        if pool_size < 1:
            raise ServingError("endpoint pool size must be >= 1")
        self.shard_id = shard_id
        self._host = host
        self._port = port
        self._pool_size = pool_size
        self._default_timeout = default_timeout
        self._lock = threading.Lock()
        self._idle: list[RpcClient] = []
        self._created = 0
        self._available = threading.Semaphore(pool_size)
        self._epoch = 0

    @property
    def address(self) -> tuple[str, int]:
        """Current ``(host, port)`` of the worker."""
        with self._lock:
            return (self._host, self._port)

    def reset(self, host: str, port: int) -> None:
        """Re-point at a respawned worker, discarding pooled connections."""
        with self._lock:
            self._host = host
            self._port = port
            self._epoch += 1
            stale, self._idle = self._idle, []
            self._created = 0
        for client in stale:
            client.close()

    def _acquire(self, deadline: float | None) -> tuple[RpcClient, int]:
        timeout = (
            self._default_timeout
            if deadline is None
            else max(deadline - time.perf_counter(), 0.0)
        )
        if not self._available.acquire(timeout=timeout):
            raise ServingError("no shard connection available before deadline")
        with self._lock:
            if self._idle:
                return self._idle.pop(), self._epoch
            self._created += 1
            return (
                RpcClient(self._host, self._port, self._default_timeout),
                self._epoch,
            )

    def _release(self, client: RpcClient, epoch: int) -> None:
        with self._lock:
            if epoch == self._epoch:
                self._idle.append(client)
                client = None  # type: ignore[assignment]
        if client is not None:  # endpoint was reset while we held it
            client.close()
        self._available.release()

    def call(
        self,
        request: dict,
        deadline: float | None = None,
        trace_id: str | None = None,
        parent_span: int | None = None,
    ) -> dict:
        """Round-trip through a pooled connection (trace context rides
        the frame — see :meth:`RpcClient.call`)."""
        client, epoch = self._acquire(deadline)
        try:
            return client.call(
                request,
                deadline=deadline,
                trace_id=trace_id,
                parent_span=parent_span,
            )
        except BaseException:
            client.close()
            raise
        finally:
            self._release(client, epoch)

    def close(self) -> None:
        """Close every pooled connection."""
        with self._lock:
            stale, self._idle = self._idle, []
            self._created = 0
            self._epoch += 1
        for client in stale:
            client.close()
