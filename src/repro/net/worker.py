"""Shard worker: serves one shard's database over local TCP.

A worker owns one out-of-core
:class:`~repro.storage.lazy.SQLVideoDatabase` (plus the shard's
``global_ords.npy`` sidecar) and answers framed JSON requests:

========== =========================================================
op          semantics
========== =========================================================
``ping``    liveness probe
``health``  entry/video counts + generation
``records`` the shard's registration records (coordinator metadata)
``probe``   per-leaf *bucket-only* candidates for a query vector
``scan``    per-leaf *all-entries* candidates (global bucket fallback)
``flat``    local Eq. (24) top-k under global ordinals
``scene``   local scene-centroid top-k
``sample``  evenly spaced feature vectors (loadgen pools)
``metrics`` the worker registry's wire dump (cluster-metrics scrape)
``reload``  reopen the shard database (new generation on disk)
``drain``   finish in-flight requests, refuse new ones, exit cleanly
``stop``    shut the worker down
``die``     ``os._exit`` hard-kill (fault injection only)
========== =========================================================

``drain`` is the graceful half of a rolling restart: the worker stops
accepting connections, keeps answering introspection ops (``ping``,
``health``, ``metrics``) on existing connections, rejects query work
with a typed ``draining`` error response (the coordinator retries it
as transient), waits for in-flight requests to finish, then severs
connections and — in subprocess mode — exits 0.

A request frame carrying ``trace_id`` gets a private per-request
:class:`~repro.obs.trace.Tracer` (epoch = request arrival): the worker
opens ``worker.<op>`` under the frame's ``parent_span``, records
per-leaf spans including ANN prune / exact re-rank splits, and ships
the finished spans back as ``spans`` in the response frame for the
coordinator to stitch.  Dispatch also counts every op into the worker
registry (``net_worker_requests_total`` / ``net_worker_op_seconds``),
which the ``metrics`` op exposes for cluster-wide scraping.

Candidates always carry **global** identities (flat ordinal, title,
shot/scene ids) and kernel-exact scores; feature payloads ship only for
the shard-local top-k, which provably covers every global winner the
shard can contribute (see ``docs/SHARDING.md``).

The worker runs threaded (one thread per coordinator connection) and
can be embedded in-process for tests or launched as
``python -m repro.net.worker SHARD_DIR`` — the subprocess prints
``READY <port>`` on stdout once it accepts connections.
"""

from __future__ import annotations

import argparse
import os
import re
import socketserver
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.ann.index import resolve_ann
from repro.database.index import (
    IndexNode,
    feature_similarity_batch,
    leaf_signature,
)
from repro.errors import DatabaseError, ReproError
from repro.resilience.faults import fault_point
from repro.net.protocol import (
    pack_array,
    recv_frame,
    send_frame,
    unpack_array,
)
from repro.net.shard import GLOBAL_ORDS_NAME
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.storage.lazy import SQLVideoDatabase
from repro.types import EventKind


class _ShardState:
    """One opened generation of the shard database (immutable once built)."""

    def __init__(self, shard_dir: Path) -> None:
        self.database = SQLVideoDatabase.open(shard_dir)
        ords_path = shard_dir / GLOBAL_ORDS_NAME
        if ords_path.exists():
            self.global_ords = np.load(ords_path)
        else:  # an unsharded dir served as a single "shard"
            self.global_ords = np.arange(
                self.database.catalog.entry_count(), dtype=np.int64
            )
        catalog = self.database.catalog
        self.global_ord_of: dict[tuple[str, int], int] = {}
        for info in catalog.leaf_infos():
            for row in catalog.leaf_rows(info.name):
                self.global_ord_of[(row.video_title, row.shot_id)] = int(
                    self.global_ords[row.ord]
                )
        self.leaves: dict[str, IndexNode] = {}
        if self.database.videos:
            self._collect(self.database.index_root)

    def _collect(self, node: IndexNode) -> None:
        if node.is_leaf:
            self.leaves[node.name] = node
            return
        for child in node.children:
            self._collect(child)


class ShardWorker:
    """Threaded TCP server answering shard RPCs for one shard directory."""

    def __init__(
        self,
        shard_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_id: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._shard_dir = Path(shard_dir)
        if shard_id is None:
            match = re.fullmatch(r"shard-(\d+)", self._shard_dir.name)
            shard_id = int(match.group(1)) if match else 0
        self.shard_id = shard_id
        # Subprocess workers report into their process-global registry
        # (so storage/kernel metrics ride along in the scrape); embedded
        # test workers pass a private registry to stay distinguishable.
        self._registry = registry if registry is not None else get_registry()
        self._op_requests = self._registry.counter(
            "net_worker_requests_total",
            "Shard worker RPC requests served, by op.",
            labelnames=("op",),
        )
        self._op_latency = self._registry.histogram(
            "net_worker_op_seconds",
            "Shard worker RPC handler latency, by op.",
            labelnames=("op",),
        )
        self._state = _ShardState(self._shard_dir)
        self._generation = 1
        self._state_lock = threading.Lock()
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        self._draining = False
        self._drained = threading.Event()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._inflight_idle = threading.Condition(self._inflight_lock)
        self._db_closed = False
        worker = self

        class _Handler(socketserver.BaseRequestHandler):
            """One coordinator connection: a loop of request frames."""

            def setup(self) -> None:  # noqa: D102 - socketserver hook
                with worker._connections_lock:
                    worker._connections.add(self.request)

            def finish(self) -> None:  # noqa: D102 - socketserver hook
                with worker._connections_lock:
                    worker._connections.discard(self.request)

            def handle(self) -> None:  # noqa: D102 - socketserver hook
                while True:
                    try:
                        request = recv_frame(self.request)
                    except (ReproError, OSError):
                        return  # connection closed or garbage: drop it
                    with worker._inflight_lock:
                        worker._inflight += 1
                    try:
                        response = worker._dispatch(request)
                    except ReproError as exc:
                        response = {"ok": False, "error": str(exc)}
                    except Exception as exc:  # never kill the connection
                        response = {
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    finally:
                        with worker._inflight_lock:
                            worker._inflight -= 1
                            worker._inflight_idle.notify_all()
                    try:
                        send_frame(self.request, response)
                    except (ReproError, OSError):
                        return

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return (str(host), int(port))

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self.address[1]

    @property
    def generation(self) -> int:
        """Reload counter (1 for a freshly opened shard)."""
        return self._generation

    def start(self) -> "ShardWorker":
        """Serve in a daemon thread (the in-process/test mode)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"shard-worker-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the subprocess mode)."""
        self._server.serve_forever()

    def stop(self) -> None:
        """Stop accepting connections and close the database."""
        self._server.shutdown()
        self._server.server_close()
        self._sever_connections()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._close_database()

    def _sever_connections(self) -> None:
        # Sever live coordinator connections too: a SIGKILLed subprocess
        # drops them implicitly, and the in-process mode must look the
        # same to pooled clients (handler threads would otherwise keep
        # answering a "stopped" worker).
        with self._connections_lock:
            live = list(self._connections)
        for conn in live:
            try:
                conn.shutdown(2)  # socket.SHUT_RDWR
            except OSError:
                pass

    def _close_database(self) -> None:
        with self._state_lock:
            if self._db_closed:
                return
            self._db_closed = True
        self._state.database.close()

    # -- graceful drain ------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once a ``drain`` op was accepted."""
        return self._draining

    def join_drained(self, timeout: float | None = None) -> bool:
        """Wait for a started drain to complete (in-process mode)."""
        return self._drained.wait(timeout)

    def _finish_drain(self, grace: float) -> None:
        """Background half of ``drain``: quiesce, then tear down."""
        self._server.shutdown()  # no new connections
        deadline = time.perf_counter() + grace
        with self._inflight_lock:
            while self._inflight > 0:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break  # grace exhausted: sever what is left
                self._inflight_idle.wait(timeout=min(remaining, 0.1))
        self._server.server_close()
        self._sever_connections()
        self._close_database()
        self._drained.set()

    # -- dispatch ------------------------------------------------------

    #: Ops still answered on live connections while draining — pure
    #: introspection plus the (idempotent) drain itself.
    _DRAIN_SAFE_OPS = frozenset({"ping", "health", "metrics", "drain", "stop"})

    def _dispatch(self, request: dict) -> dict:
        fault_point("net.slow_shard")  # latency faults: a slow worker
        op = request.get("op")
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None and float(deadline_ms) <= 0:
            return {"ok": False, "error": "deadline expired on arrival"}
        if self._draining and op not in self._DRAIN_SAFE_OPS:
            # Typed refusal: the coordinator maps it to a transient
            # WorkerDrainingError and retries toward the replacement.
            return {
                "ok": False,
                "draining": True,
                "error": f"worker draining; refusing op {op!r}",
            }
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        trace_id = request.get("trace_id")
        # Each traced request gets its own tracer (epoch = arrival) so
        # concurrent handler threads never interleave span trees; the
        # finished spans ship back in the response frame.  The frame's
        # parent_span is kept as an attribute — remote ids must not mix
        # with local ones; the coordinator re-parents on attach.
        tracer: Tracer | NullTracer
        attrs: dict = {}
        if trace_id is not None:
            tracer = Tracer()
            attrs = {"shard": self.shard_id, "trace_id": trace_id}
            if request.get("parent_span") is not None:
                attrs["parent_span"] = request["parent_span"]
        else:
            tracer = NULL_TRACER
        started = time.perf_counter()
        try:
            with tracer.span(f"worker.{op}", **attrs):
                response = handler(request, tracer)
        finally:
            elapsed = time.perf_counter() - started
            self._op_requests.labels(op=str(op)).inc()
            self._op_latency.labels(op=str(op)).record(elapsed)
        if trace_id is not None and response.get("ok"):
            response["spans"] = [span.to_json() for span in tracer.spans()]
        return response

    def _op_ping(self, request: dict, tracer=NULL_TRACER) -> dict:
        return {"ok": True, "generation": self._generation}

    def _op_metrics(self, request: dict, tracer=NULL_TRACER) -> dict:
        return {
            "ok": True,
            "generation": self._generation,
            "shard": self.shard_id,
            "metrics": self._registry.dump(),
        }

    def _op_health(self, request: dict, tracer=NULL_TRACER) -> dict:
        state = self._state
        return {
            "ok": True,
            "generation": self._generation,
            "videos": len(state.database.videos),
            "entries": int(state.global_ords.shape[0]),
            "scenes": len(state.database.scene_index),
        }

    def _op_records(self, request: dict, tracer=NULL_TRACER) -> dict:
        records = {
            title: {
                "shot_count": record.shot_count,
                "scene_count": record.scene_count,
                "events": {str(k): v for k, v in record.events.items()},
                "degraded_stages": list(record.degraded_stages),
            }
            for title, record in self._state.database.videos.items()
        }
        return {"ok": True, "generation": self._generation, "records": records}

    def _op_probe(self, request: dict, tracer=NULL_TRACER) -> dict:
        return self._leaf_candidates(request, fallback=False, tracer=tracer)

    def _op_scan(self, request: dict, tracer=NULL_TRACER) -> dict:
        return self._leaf_candidates(request, fallback=True, tracer=tracer)

    def _leaf_candidates(
        self, request: dict, fallback: bool, tracer=NULL_TRACER
    ) -> dict:
        """Per-leaf candidates, plus features for the shard-local top-k.

        Leaves are processed in the coordinator's visit order and each
        leaf's candidates in ascending global ordinal (the natural
        local order), so the shard-local ranking used to pick which
        feature payloads to ship is the exact restriction of the global
        ranking to this shard.

        When the request carries ``nprobe``, the per-shard ANN tier
        prunes the candidate set before exact scoring.  The reported
        ``bucket`` stays the *true* bucket size (not the survivor
        count) so the coordinator's global empty-bucket fallback
        decision is unchanged, and survivors keep their kernel-exact
        scores — with ``nprobe`` covering every cell and no re-rank
        cap, the response is byte-identical to the exact one.  A leaf
        whose ANN state cannot load answers exactly with
        ``ann_degraded`` set.
        """
        state = self._state
        features = unpack_array(request["features"])
        k = int(request.get("k", 10))
        nprobe = request.get("nprobe")
        rerank_k = request.get("rerank_k")
        approx_comparisons = 0
        ann_degraded = False
        per_leaf: dict[str, dict] = {}
        combined: list[tuple[int, object, float]] = []
        for name in request.get("leaves", []):
            node = state.leaves.get(name)
            if node is None:
                per_leaf[name] = {"bucket": 0, "candidates": []}
                continue
            with tracer.span("worker.leaf", leaf=name) as leaf_span:
                leaf = node.leaf
                assert leaf is not None
                entries = matrix = None
                bucket_size = None
                if nprobe is not None:
                    ann, degraded = resolve_ann(node)
                    ann_degraded = ann_degraded or degraded
                    if ann is not None:
                        with tracer.span("ann.prune") as prune_span:
                            rows, evals = ann.search_rows(
                                features,
                                nprobe=int(nprobe),
                                rerank_k=(
                                    None if rerank_k is None else int(rerank_k)
                                ),
                                mode="all" if fallback else "bucket",
                            )
                            prune_span.set(evals=evals, survivors=len(rows))
                        approx_comparisons += evals
                        if fallback:
                            bucket_size = ann.n_rows
                        else:
                            bucket_size = int(
                                ann.bucket_rows(leaf_signature(features)).size
                            )
                        all_entries, block = leaf.fallback_block()
                        picked = [int(row) for row in rows]
                        entries = [all_entries[row] for row in picked]
                        matrix = block[picked]
                if bucket_size is None:
                    if fallback:
                        entries, matrix = leaf.fallback_block()
                    else:
                        entries, matrix = leaf.bucket_block(features)
                    bucket_size = len(entries)
                leaf_span.set(bucket=int(bucket_size))
                if not entries:
                    per_leaf[name] = {
                        "bucket": int(bucket_size),
                        "candidates": [],
                    }
                    continue
                with tracer.span("score.exact", rows=len(entries)):
                    scores = feature_similarity_batch(
                        features, matrix, dims=node.dims
                    )
                candidates = []
                for entry, score in zip(entries, scores):
                    global_ord = state.global_ord_of[entry.key]
                    candidates.append(
                        [
                            global_ord,
                            entry.video_title,
                            entry.shot_id,
                            entry.scene_id,
                            float(score),
                        ]
                    )
                    combined.append((global_ord, entry, float(score)))
                per_leaf[name] = {
                    "bucket": int(bucket_size),
                    "candidates": candidates,
                }
        top = sorted(combined, key=lambda item: item[2], reverse=True)[:k]
        payload = {
            str(global_ord): pack_array(entry.features)
            for global_ord, entry, _score in top
        }
        return {
            "ok": True,
            "generation": self._generation,
            "leaves": per_leaf,
            "features": payload,
            "approx_comparisons": approx_comparisons,
            "ann_degraded": ann_degraded,
        }

    def _op_flat(self, request: dict, tracer=NULL_TRACER) -> dict:
        state = self._state
        features = unpack_array(request["features"])
        k = int(request.get("k", 10))
        total = len(state.database.flat_index)
        with tracer.span("score.exact", rows=total):
            result = state.database.search_flat(features, k=k)
        candidates = []
        payload = {}
        for hit in result.hits:
            entry = hit.entry
            global_ord = state.global_ord_of[entry.key]
            candidates.append(
                [
                    global_ord,
                    entry.video_title,
                    entry.shot_id,
                    entry.scene_id,
                    float(hit.score),
                ]
            )
            payload[str(global_ord)] = pack_array(entry.features)
        return {
            "ok": True,
            "generation": self._generation,
            "total": total,
            "candidates": candidates,
            "features": payload,
        }

    def _op_scene(self, request: dict, tracer=NULL_TRACER) -> dict:
        state = self._state
        features = unpack_array(request["features"])
        k = int(request.get("k", 5))
        event = request.get("event")
        kind = EventKind(event) if event is not None else None
        index = state.database.scene_index
        count = len(index)
        try:
            with tracer.span("scene.search", scenes=count):
                hits = index.search(features, k=k, event=kind)
        except DatabaseError:
            hits = []  # an empty local index is not an error under sharding
        candidates = []
        centroids = {}
        for hit in hits:
            entry = hit.entry
            candidates.append(
                [
                    entry.video_title,
                    entry.scene_id,
                    entry.event.value,
                    entry.shot_count,
                    float(hit.score),
                ]
            )
            centroids[f"{entry.video_title}\x00{entry.scene_id}"] = pack_array(
                entry.centroid
            )
        return {
            "ok": True,
            "generation": self._generation,
            "count": count,
            "candidates": candidates,
            "centroids": centroids,
        }

    def _op_sample(self, request: dict, tracer=NULL_TRACER) -> dict:
        state = self._state
        n = max(1, int(request.get("n", 16)))
        total = int(state.global_ords.shape[0])
        if not total:
            return {"ok": True, "features": []}
        catalog = state.database.catalog
        infos = {info.name: info for info in catalog.leaf_infos()}
        ords = sorted(
            {int(i) for i in np.linspace(0, total - 1, min(n, total))}
        )
        rows = catalog.entries_by_ord(ords)
        payload = []
        for ordinal in ords:
            row = rows[ordinal]
            block = catalog.features.open(infos[row.leaf].block.sha)
            payload.append(pack_array(block[row.row]))
        return {"ok": True, "features": payload}

    def _op_reload(self, request: dict, tracer=NULL_TRACER) -> dict:
        fresh = _ShardState(self._shard_dir)
        with self._state_lock:
            previous = self._state
            self._state = fresh
            self._generation += 1
        # In-flight requests on other threads may still read the old
        # state object; its handles are released when they finish and
        # the reference drops.  Closing eagerly would race them.
        del previous
        return {"ok": True, "generation": self._generation}

    def _op_drain(self, request: dict, tracer=NULL_TRACER) -> dict:
        grace = float(request.get("grace", 10.0))
        already = self._draining
        self._draining = True
        if not already:
            threading.Thread(
                target=self._finish_drain,
                args=(grace,),
                name=f"shard-drain-{self.shard_id}",
                daemon=True,
            ).start()
        return {"ok": True, "draining": True, "generation": self._generation}

    def _op_stop(self, request: dict, tracer=NULL_TRACER) -> dict:
        threading.Thread(target=self._server.shutdown, daemon=True).start()
        return {"ok": True}

    def _op_die(self, request: dict, tracer=NULL_TRACER) -> dict:
        # Fault injection: simulate a crashed worker process.  Flushing
        # nothing is the point — the coordinator must cope.
        os._exit(17)


class _PrefixWriter:
    """Wraps a text stream, prefixing every line with a shard tag.

    Installed over the worker subprocess's stderr so interleaved
    cluster logs stay attributable (``[shard 2] …``).
    """

    def __init__(self, stream, prefix: str) -> None:
        self._stream = stream
        self._prefix = prefix
        self._midline = False

    def write(self, text: str) -> int:
        out = []
        for chunk in text.splitlines(keepends=True):
            if not self._midline:
                out.append(self._prefix)
            out.append(chunk)
            self._midline = not chunk.endswith("\n")
        self._stream.write("".join(out))
        return len(text)

    def flush(self) -> None:
        """Pass flushes through to the wrapped stream."""
        self._stream.flush()

    def __getattr__(self, name):
        return getattr(self._stream, name)


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.net.worker``."""
    parser = argparse.ArgumentParser(description="classminer shard worker")
    parser.add_argument("shard_dir", help="shard directory (SQL catalog)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--shard-id",
        type=int,
        default=None,
        help="shard id for log prefixes and span attributes "
        "(default: parsed from the directory name)",
    )
    args = parser.parse_args(argv)
    started = time.perf_counter()
    worker = ShardWorker(
        args.shard_dir, host=args.host, port=args.port, shard_id=args.shard_id
    )
    sys.stderr = _PrefixWriter(sys.stderr, f"[shard {worker.shard_id}] ")
    print(f"READY {worker.port}", flush=True)
    print(
        f"shard worker serving {args.shard_dir} on {args.host}:{worker.port} "
        f"(opened in {time.perf_counter() - started:.2f}s)",
        file=sys.stderr,
        flush=True,
    )
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    # serve_forever returns when a ``drain`` (or ``stop``) op shut the
    # server down; let any drain finish quiescing, then exit cleanly.
    if worker.draining:
        worker.join_drained(timeout=15.0)
    worker._close_database()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
