"""Scatter-gather coordinator over shard workers.

:class:`ShardedQueryService` is the sharded counterpart of the
in-process :class:`~repro.serving.server.QueryServer`: same request
type, same result type, same cache/scope/deadline semantics — but the
corpus lives in N shard worker processes and every feature query is a
scatter-gather.

**Exactness.**  With all shards healthy, results are bit-identical to
the single-process path (ids, scores, tie-break order):

* The coordinator itself runs the Eq. (25) beam descent over a routing
  tree rebuilt from the manifest's full-corpus leaf metadata
  (:func:`~repro.net.shard.build_routing_tree`), so the visited node
  sequence and descent comparisons match the unsharded server.
* Shards only execute leaf-level work.  A probe first returns each
  leaf's *signature bucket* candidates; only when a leaf's bucket is
  empty on **every** responding shard does the coordinator ask for that
  leaf's all-entries scan — reproducing
  :meth:`~repro.database.index.LeafHashIndex.probe_block`'s per-leaf
  fallback decision at global scope.
* Candidates carry global flat ordinals; within each leaf the shards'
  sub-lists are merged by ascending ordinal, which reconstructs the
  unsharded bucket/insertion order because hash-by-title sharding makes
  every within-shard order an order-preserving subset of the global
  one.  The final stable sort by descending score then ties off exactly
  like the single-process ranking.
* Workers ship feature payloads only for their *local* top-k: the
  global comparator restricted to one shard's candidates equals that
  shard's local order, so every global winner is inside its shard's
  local top-k.

**QueryStats aggregation** (documented contract, asserted by tests):
``shot`` comparisons = coordinator descent comparisons + Σ per-leaf
deduplicated candidates; ``shot_flat`` = Σ shard entry counts;
``scene`` = Σ shard scene counts; ``event`` = 0.

**Degradation.**  Each shard sits behind a circuit breaker; a shard
that fails or is skipped by an open breaker is reported in
``ServingResult.shards_missing`` with ``degraded=True`` and the answer
covers the reachable shards.  Degraded results are never cached.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
    wait as wait_futures,
)
from dataclasses import dataclass, replace

import numpy as np

from repro.database.access import User
from repro.database.catalog import RegisteredVideo
from repro.database.events_query import event_concept, query_event_records
from repro.database.index import ShotEntry
from repro.database.query import QueryStats, RankedShot, descend_to_leaves
from repro.database.scene_search import RankedScene, SceneEntry
from repro.errors import (
    DatabaseError,
    NoShardAnsweredError,
    OverloadedError,
    RpcTransportError,
    ServingError,
)
from repro.ingest.executor import RetryPolicy
from repro.net.protocol import ShardEndpoint, pack_array, unpack_array
from repro.net.shard import ShardSpec, build_routing_tree
from repro.obs.slowlog import SlowQuery, get_slow_log
from repro.obs.trace import (
    Span,
    active_tracer,
    current_trace_id,
    new_trace_id,
    span as obs_span,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.health import HealthCheck, HealthReport
from repro.serving.cache import CacheKey, ResultCache, request_digest, scope_token
from repro.serving.metrics import QUERY_KINDS, ServingMetrics
from repro.serving.server import QueryRequest, ServingResult
from repro.types import EventKind


@dataclass(frozen=True)
class CoordinatorConfig:
    """Tuning knobs of one :class:`ShardedQueryService`.

    Attributes
    ----------
    queue_depth:
        Concurrent queries admitted; beyond it, callers get
        :class:`~repro.errors.OverloadedError` (HTTP 503 upstream).
    default_timeout:
        Per-query deadline when the request carries none.
    cache_capacity:
        Resident entries in the LRU result cache.
    beam:
        Descent width (must match the single-process server for
        bit-identical results; both default to 2).
    breaker_threshold / breaker_reset:
        Per-shard circuit breaker: consecutive failures to open, and
        seconds until a half-open retry.  The reset is deliberately
        short — a respawned worker should be folded back in quickly.
    ann_nprobe / ann_rerank_k:
        Default ANN knobs folded into ``shot`` requests that carry no
        ``nprobe`` of their own — the sharded mirror of
        :class:`~repro.serving.server.ServerConfig`'s knobs.  Each
        shard prunes with its *own* trained quantizer; candidate
        scores stay kernel-exact, so ``nprobe`` covering every cell
        with an unbounded re-rank tail reproduces the exact answer
        bit for bit.
    rpc_retries / rpc_backoff / rpc_max_delay:
        Retry budget for *transient* shard-call failures
        (:class:`~repro.errors.RpcTransportError`: reset, refused
        connect, truncated/corrupt frame, draining worker).  Attempts
        beyond the first back off with the ingest layer's seeded
        decorrelated jitter, every sleep bounded by the query's
        remaining deadline; only an exhausted budget charges the
        shard's circuit breaker.
    hedge_after_ms:
        Opt-in tail-latency hedge: when a shard call is still pending
        after this many milliseconds, launch one backup request to the
        same shard and take the first valid answer (both compute the
        same bytes, so results stay bit-identical to the unhedged
        path).  ``None`` (the default) disables hedging and skips its
        executor entirely — the disarmed path is the plain direct call.
    """

    queue_depth: int = 64
    default_timeout: float | None = 5.0
    cache_capacity: int = 512
    beam: int = 2
    breaker_threshold: int = 3
    breaker_reset: float = 1.0
    ann_nprobe: int | None = None
    ann_rerank_k: int | None = None
    rpc_retries: int = 2
    rpc_backoff: float = 0.02
    rpc_max_delay: float = 0.25
    hedge_after_ms: float | None = None

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ServingError("queue depth must be >= 1")
        if self.beam < 1:
            raise ServingError("beam must be >= 1")
        if self.ann_nprobe is not None and self.ann_nprobe < 1:
            raise ServingError("ann_nprobe must be >= 1 (or None for exact)")
        if self.ann_rerank_k is not None and self.ann_rerank_k < 1:
            raise ServingError("ann_rerank_k must be >= 1 (or None for all)")
        if self.rpc_retries < 0:
            raise ServingError("rpc_retries must be >= 0")
        if self.rpc_backoff <= 0 or self.rpc_max_delay <= 0:
            raise ServingError("rpc backoff/max delay must be > 0")
        if self.hedge_after_ms is not None and self.hedge_after_ms < 0:
            raise ServingError("hedge_after_ms must be >= 0 (or None to disable)")


class _ExplainSink:
    """Accumulates the per-query evidence an ``explain`` response ships.

    ``phases`` maps phase name -> seconds; ``shard_ops`` records one
    entry per shard RPC (appended from scatter threads — list.append is
    atomic, and the sink is sorted once at assembly).
    """

    __slots__ = ("phases", "shard_ops")

    def __init__(self) -> None:
        self.phases: dict[str, float] = {}
        self.shard_ops: list[dict] = []

    def phases_ms(self, total: float) -> dict[str, float]:
        """Phase timings in milliseconds, plus the end-to-end total."""
        out = {name: round(secs * 1e3, 3) for name, secs in self.phases.items()}
        out["total"] = round(total * 1e3, 3)
        return out

    def ops(self) -> list[dict]:
        """Shard RPC records, deterministically ordered."""
        return sorted(
            self.shard_ops, key=lambda op: (op["shard"], op["op"], op["ms"])
        )


class _Phase:
    """One coordinator query phase: a trace span + explain timing.

    Context manager; with tracing disabled and no explain sink it costs
    two clock reads and a no-op span handle.
    """

    __slots__ = ("_name", "_sink", "_span", "_start")

    def __init__(self, name: str, sink: _ExplainSink | None) -> None:
        self._name = name
        self._sink = sink
        self._span = obs_span(f"coord.{name}")

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        self._span.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._span.__exit__(*exc)
        if self._sink is not None:
            elapsed = time.perf_counter() - self._start
            self._sink.phases[self._name] = (
                self._sink.phases.get(self._name, 0.0) + elapsed
            )


class ShardedQueryService:
    """Scatter-gather query front over a set of shard endpoints.

    The service does not own the worker processes — pass a
    :class:`~repro.net.cluster.ShardCluster`'s ``endpoints`` (or any
    other list of live :class:`~repro.net.protocol.ShardEndpoint`\\ s)
    and manage their lifecycle outside.
    """

    def __init__(
        self,
        spec: ShardSpec,
        endpoints: list[ShardEndpoint],
        config: CoordinatorConfig | None = None,
        metrics: ServingMetrics | None = None,
    ) -> None:
        if len(endpoints) != spec.num_shards:
            raise ServingError(
                f"manifest names {spec.num_shards} shards but "
                f"{len(endpoints)} endpoints were given"
            )
        self.spec = spec
        self.config = config if config is not None else CoordinatorConfig()
        self._endpoints = {ep.shard_id: ep for ep in endpoints}
        self._metrics = metrics if metrics is not None else ServingMetrics()
        self._hierarchy, self._root, self._controller = build_routing_tree(spec)
        self._cache = ResultCache(self.config.cache_capacity)
        self._metrics.registry.register_collector(self._cache.metrics_snapshot)
        self._breakers = {
            ep.shard_id: CircuitBreaker(
                name=f"shard-{ep.shard_id}",
                failure_threshold=self.config.breaker_threshold,
                reset_timeout=self.config.breaker_reset,
                registry=self._metrics.registry,
            )
            for ep in endpoints
        }
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, 4 * len(endpoints)),
            thread_name_prefix="scatter",
        )
        self._retry_policy = RetryPolicy(
            retries=self.config.rpc_retries,
            backoff=self.config.rpc_backoff,
            max_delay=self.config.rpc_max_delay,
        )
        # One seeded stream for the decorrelated jitter: replayable in
        # chaos runs, and never the process-global random state.
        self._retry_rng = random.Random(0x5EED)
        self._rpc_retries_total = self._metrics.registry.counter(
            "net_rpc_retries_total",
            "Transient shard-call failures retried, by op.",
            labelnames=("op",),
        )
        self._rpc_hedges_total = self._metrics.registry.counter(
            "net_rpc_hedges_total",
            "Backup shard calls launched against slow primaries, by op.",
            labelnames=("op",),
        )
        # The hedge pool exists only when hedging is armed, so the
        # default path stays a plain direct call (no future, no queue).
        self._hedge_pool = (
            ThreadPoolExecutor(
                max_workers=max(4, 2 * len(endpoints)),
                thread_name_prefix="hedge",
            )
            if self.config.hedge_after_ms is not None
            else None
        )
        self._admission = threading.BoundedSemaphore(self.config.queue_depth)
        self._generation = 1
        self._scope_lock = threading.Lock()
        self._scopes: dict[tuple[User, int], frozenset[str]] = {}
        self._records_lock = threading.Lock()
        self._records: dict[str, RegisteredVideo] = {}
        self._records_missing: set[int] = set(self._endpoints)
        self._last_errors: dict[int, str] = {}
        self._slow_log = get_slow_log()
        self._closed = False
        # Prime registration records (event queries, skims, degradation
        # flags).  Per-shard failures are tolerated here — the fetch
        # retries lazily once the shard comes back.
        self._ensure_records(self._deadline(None))

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Shut the scatter pool down (endpoints are the caller's)."""
        self._closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self._hedge_pool is not None:
            self._hedge_pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- state ---------------------------------------------------------

    @property
    def generation(self) -> int:
        """Coordinator generation (bumped by :meth:`refresh`)."""
        return self._generation

    @property
    def metrics(self) -> ServingMetrics:
        """Live serving metrics."""
        return self._metrics

    @property
    def cache(self) -> ResultCache:
        """The result cache."""
        return self._cache

    @property
    def breakers(self) -> dict[int, CircuitBreaker]:
        """Per-shard circuit breakers, by shard id."""
        return dict(self._breakers)

    def records(self) -> dict[str, RegisteredVideo]:
        """Merged registration records of every reachable shard."""
        self._ensure_records(self._deadline(None))
        with self._records_lock:
            return dict(self._records)

    # -- scatter plumbing ----------------------------------------------

    def _deadline(self, timeout: float | None) -> float | None:
        if timeout is None:
            timeout = self.config.default_timeout
        return None if timeout is None else time.perf_counter() + timeout

    def _shard_call(
        self,
        shard_id: int,
        request: dict,
        deadline: float | None,
        trace_parent: int | None,
        trace_id: str | None,
        sink: _ExplainSink | None,
    ) -> dict:
        """One shard RPC on a scatter thread: retry + trace + stitch.

        Transient failures (:class:`~repro.errors.RpcTransportError`)
        retry up to ``rpc_retries`` times with seeded decorrelated
        jitter, every backoff sleep bounded by the query's remaining
        deadline; each retried attempt records an ``rpc.retry.<op>``
        span and counts into ``net_rpc_retries_total``.  Only an
        exhausted budget propagates to the breaker in ``_scatter``.

        When a trace is active the frame carries ``trace_id`` /
        ``parent_span``, the round-trip records as ``rpc.<op>`` under
        the coordinator phase span, and the worker's returned spans are
        grafted beneath it (remote ids remapped, starts offset by the
        RPC's start — a small skew bounded by the one-way latency).
        """
        tracer = active_tracer()
        op = str(request.get("op"))
        attempt = 0
        previous_delay = 0.0
        while True:
            started = time.perf_counter()
            try:
                response, hedged = self._attempt_call(
                    shard_id, request, deadline, trace_parent, trace_id, op
                )
            except RpcTransportError as exc:
                elapsed = time.perf_counter() - started
                if sink is not None:
                    sink.shard_ops.append(
                        {
                            "shard": shard_id,
                            "op": op,
                            "ms": round(elapsed * 1e3, 3),
                            "ok": False,
                        }
                    )
                if tracer.enabled:
                    tracer.add_span_at(
                        f"rpc.retry.{op}",
                        tracer.now() - elapsed,
                        elapsed,
                        parent_id=trace_parent,
                        shard=shard_id,
                        attempt=attempt,
                        error=str(exc),
                    )
                attempt += 1
                if attempt > self.config.rpc_retries:
                    raise
                delay = self._retry_policy.next_delay(
                    attempt, previous_delay, self._retry_rng
                )
                if (
                    deadline is not None
                    and time.perf_counter() + delay >= deadline
                ):
                    raise  # no budget left to retry with
                self._rpc_retries_total.labels(op=op).inc()
                time.sleep(delay)
                previous_delay = delay
                continue
            except Exception:
                if sink is not None:
                    sink.shard_ops.append(
                        {
                            "shard": shard_id,
                            "op": op,
                            "ms": round((time.perf_counter() - started) * 1e3, 3),
                            "ok": False,
                        }
                    )
                raise
            break
        elapsed = time.perf_counter() - started
        if sink is not None:
            sink.shard_ops.append(
                {
                    "shard": shard_id,
                    "op": op,
                    "ms": round(elapsed * 1e3, 3),
                    "ok": True,
                }
            )
        if tracer.enabled:
            start_rel = tracer.now() - elapsed
            attrs: dict = {"shard": shard_id}
            if attempt:
                attrs["retries"] = attempt
            if hedged:
                attrs["hedged"] = True
            rpc_span = tracer.add_span_at(
                f"rpc.{op}",
                start_rel,
                elapsed,
                parent_id=trace_parent,
                **attrs,
            )
            remote = response.pop("spans", None)
            if remote:
                tracer.attach_remote_spans(
                    [Span.from_json(item) for item in remote],
                    rpc_span.span_id,
                    start_rel,
                )
        return response

    def _attempt_call(
        self,
        shard_id: int,
        request: dict,
        deadline: float | None,
        trace_parent: int | None,
        trace_id: str | None,
        op: str,
    ) -> tuple[dict, bool]:
        """One attempt at a shard, hedged when configured.

        Returns ``(response, hedged)``.  With hedging disarmed (the
        default) this is a plain direct call.  Armed, the primary runs
        on the hedge pool; if it is still pending after
        ``hedge_after_ms`` one backup request goes to the *same* shard
        and the first valid answer wins — both compute the same bytes,
        so the result is bit-identical either way.
        """
        endpoint = self._endpoints[shard_id]
        hedge_after = self.config.hedge_after_ms
        if hedge_after is None or self._hedge_pool is None:
            # Disarmed fast path: call directly, no closure, no future —
            # this is every RPC in the default config, and
            # bench_net_resilience gates its overhead.  Trace kwargs
            # ride only on traced calls, so an untraced scatter
            # exercises the exact historic endpoint.call shape (and
            # duck-typed call wrappers keep working).
            if trace_id is not None:
                return (
                    endpoint.call(
                        request,
                        deadline,
                        trace_id=trace_id,
                        parent_span=trace_parent,
                    ),
                    False,
                )
            return endpoint.call(request, deadline), False

        def once() -> dict:
            if trace_id is not None:
                return endpoint.call(
                    request,
                    deadline,
                    trace_id=trace_id,
                    parent_span=trace_parent,
                )
            return endpoint.call(request, deadline)

        primary = self._hedge_pool.submit(once)
        try:
            return primary.result(timeout=hedge_after / 1e3), False
        except FutureTimeout:
            pass  # primary is slow, not failed: hedge it
        self._rpc_hedges_total.labels(op=op).inc()
        backup = self._hedge_pool.submit(once)
        pending = {primary, backup}
        failure: BaseException | None = None
        while pending:
            done, pending = wait_futures(
                pending, return_when=FIRST_COMPLETED
            )
            for future in done:
                exc = future.exception()
                if exc is None:
                    # The loser keeps its pooled connection until its
                    # own (deadline-bounded) call returns, then releases
                    # it; nothing waits on its result.
                    return future.result(), True
                failure = exc
        assert failure is not None
        raise failure

    def _scatter(
        self,
        request: dict,
        deadline: float | None,
        shard_ids: "list[int] | None" = None,
        sink: _ExplainSink | None = None,
    ) -> tuple[dict[int, dict], set[int]]:
        """Send one op to shards; returns (responses, missing shard ids)."""
        targets = sorted(self._endpoints) if shard_ids is None else shard_ids
        responses: dict[int, dict] = {}
        missing: set[int] = set()
        # Trace context is read on the calling thread (the phase span)
        # and handed to the scatter threads explicitly.
        tracer = active_tracer()
        trace_parent = tracer.current_span_id()
        trace_id = tracer.current_trace_id()
        def _submit(ids: list[int]) -> dict[int, Future]:
            return {
                shard_id: self._executor.submit(
                    self._shard_call,
                    shard_id,
                    dict(request),
                    deadline,
                    trace_parent,
                    trace_id,
                    sink,
                )
                for shard_id in ids
            }

        def _collect(submitted: dict[int, Future]) -> None:
            for shard_id, future in submitted.items():
                breaker = self._breakers[shard_id]
                try:
                    responses[shard_id] = future.result()
                except Exception as exc:
                    breaker.record_failure()
                    missing.add(shard_id)
                    self._last_errors[shard_id] = str(exc)
                    self._metrics.registry.counter(
                        "net_shard_failures_total",
                        "Shard calls that failed or were skipped by a breaker.",
                    ).inc()
                else:
                    breaker.record_success()
                    missing.discard(shard_id)

        skipped: list[int] = []
        attempted: list[int] = []
        for shard_id in targets:
            if self._breakers[shard_id].allow():
                attempted.append(shard_id)
            else:
                missing.add(shard_id)
                skipped.append(shard_id)
        _collect(_submit(attempted))
        if not responses and skipped:
            # Nothing answered and the rest were breaker-blocked (e.g.
            # one shard mid-restart while another's breaker sits open
            # or half-open under concurrent traffic).  Shedding load is
            # pointless when it fails the query outright, so force one
            # last-resort attempt per blocked shard: successes close the
            # breaker, failures land where they would have anyway.
            _collect(_submit(skipped))
        return responses, missing

    def _ensure_records(self, deadline: float | None) -> set[int]:
        """Fetch registration records from shards still missing them.

        Returns the shard ids whose records are (still) missing.  Heals
        automatically: the next event/skim query after a dead worker
        respawns re-fetches just that shard's records.
        """
        with self._records_lock:
            wanted = sorted(self._records_missing)
        if not wanted:
            return set()
        responses, _failed = self._scatter(
            {"op": "records"}, deadline, shard_ids=wanted
        )
        if responses:
            with self._records_lock:
                for shard_id, response in responses.items():
                    for title, payload in response["records"].items():
                        self._records[title] = RegisteredVideo(
                            title=title,
                            shot_count=int(payload["shot_count"]),
                            scene_count=int(payload["scene_count"]),
                            events={
                                int(k): str(v)
                                for k, v in payload["events"].items()
                            },
                            degraded_stages=tuple(
                                payload["degraded_stages"]
                            ),
                        )
                    self._records_missing.discard(shard_id)
        with self._records_lock:
            return set(self._records_missing)

    # -- request validation / scope (mirrors QueryServer) --------------

    def _validate(self, request: QueryRequest) -> None:
        if request.kind not in QUERY_KINDS:
            raise ServingError(
                f"unknown query kind {request.kind!r}; "
                f"expected one of {QUERY_KINDS}"
            )
        if request.kind == "event":
            if request.event is None:
                raise ServingError("event queries need an EventKind")
        elif request.features is None:
            raise ServingError(f"{request.kind} queries need a feature vector")
        if request.kind == "shot_flat" and request.user is not None:
            raise ServingError(
                "the flat baseline does not support per-user access filtering"
            )
        if request.k < 1:
            raise ServingError("k must be >= 1")
        if request.nprobe is not None or request.rerank_k is not None:
            if request.kind != "shot":
                raise ServingError(
                    "nprobe/rerank_k only apply to hierarchical shot queries"
                )
            if request.nprobe is not None and request.nprobe < 1:
                raise ServingError("nprobe must be >= 1 (or None for exact)")
            if request.rerank_k is not None and request.rerank_k < 1:
                raise ServingError("rerank_k must be >= 1 (or None for all)")

    def _effective_request(self, request: QueryRequest) -> QueryRequest:
        """Fold the configured ANN defaults into the request.

        Mirrors :meth:`QueryServer._effective_request
        <repro.serving.server.QueryServer>`: resolved before the cache
        key so a configured default and an explicit per-request knob
        with the same values share entries.
        """
        if request.kind != "shot" or request.nprobe is not None:
            return request
        if self.config.ann_nprobe is None:
            return request
        return replace(
            request,
            nprobe=self.config.ann_nprobe,
            rerank_k=(
                request.rerank_k
                if request.rerank_k is not None
                else self.config.ann_rerank_k
            ),
        )

    def _scope(self, user: User | None) -> tuple[frozenset[str] | None, str]:
        if user is None:
            return None, scope_token(None, None)
        key = (user, self._generation)
        with self._scope_lock:
            leaves = self._scopes.get(key)
        if leaves is None:
            leaves = frozenset(self._controller.permitted_leaves(user))
            with self._scope_lock:
                self._scopes[key] = leaves
        return leaves, scope_token(user, leaves)

    # -- the public query path -----------------------------------------

    def query(self, request: QueryRequest) -> ServingResult:
        """Execute one query with scatter-gather; blocking.

        Raises :class:`~repro.errors.OverloadedError` beyond
        ``queue_depth`` concurrent queries, and typed errors exactly
        like the single-process server for malformed requests.
        """
        self._validate(request)
        if self._closed:
            raise ServingError("sharded service is closed")
        if not self._admission.acquire(blocking=False):
            self._metrics.record_rejection()
            raise OverloadedError(
                f"coordinator at capacity ({self.config.queue_depth} "
                "in flight); back off and retry"
            )
        try:
            # Inside an adopted trace (the gateway's) keep its id; as
            # the entry point, mint one so worker spans stay consistent.
            tracer = active_tracer()
            trace_id = (
                (tracer.current_trace_id() or new_trace_id())
                if tracer.enabled
                else None
            )
            with tracer.adopt(None, trace_id):
                with obs_span("net.query", kind=request.kind) as sp:
                    if trace_id is not None:
                        sp.set(trace_id=trace_id)
                    result = self._execute(request)
                    sp.set(
                        cache_hit=result.cache_hit,
                        generation=result.generation,
                        hits=len(result.hits),
                        shards_missing=len(result.shards_missing),
                    )
                    return result
        finally:
            self._admission.release()

    def _execute(self, request: QueryRequest) -> ServingResult:
        start = time.perf_counter()
        request = self._effective_request(request)
        deadline = self._deadline(request.timeout)
        leaves, scope = self._scope(request.user)
        key = CacheKey(
            kind=request.kind,
            digest=request_digest(request),
            k=request.k,
            scope=scope,
            generation=self._generation,
        )
        explain = _ExplainSink() if request.explain else None
        if explain is None:
            # Explain queries bypass the cache in both directions: the
            # evidence must describe *this* execution, and an explain
            # payload must never be replayed to a non-explain caller.
            cached = self._cache.get(key)
            if cached is not None:
                elapsed = time.perf_counter() - start
                self._metrics.record_query(
                    request.kind, elapsed, cache_hit=True
                )
                self._slow_log.record(
                    SlowQuery(
                        kind=request.kind,
                        elapsed_seconds=elapsed,
                        backend="sharded",
                        comparisons=cached.comparisons,
                        approx_comparisons=cached.approx_comparisons,
                        cache_hit=True,
                        degraded=cached.degraded,
                        shards_missing=cached.shards_missing,
                        trace_id=current_trace_id(),
                    )
                )
                return replace(cached, cache_hit=True, elapsed_seconds=elapsed)

        approx_comparisons = 0
        reranked = 0
        ann_degraded = False

        def _dispatch():
            if request.kind == "shot":
                return self._shot(request, leaves, deadline, explain)
            if request.kind == "shot_flat":
                return self._flat(request, deadline, explain)
            if request.kind == "scene":
                return self._scene(request, leaves, deadline, explain)
            return self._event(request, deadline, explain)

        try:
            outcome = _dispatch()
        except NoShardAnsweredError:
            # A multi-phase query can straddle a rolling restart: its
            # first scatter answered by the shard that drained before
            # the second scatter ran, while the restarted shard is
            # healthy again *now*.  One fresh execution observes the
            # current cluster (endpoints re-pointed at respawned
            # workers); a genuine full outage fails identically here.
            if deadline is not None and time.perf_counter() >= deadline:
                raise
            outcome = _dispatch()
        if request.kind == "shot":
            hits, comparisons, missing, ann_stats = outcome
            approx_comparisons, reranked, ann_degraded = ann_stats
        else:
            hits, comparisons, missing = outcome

        degraded_videos = any(
            record.degraded_stages for record in self._records.values()
        )
        degraded = bool(missing) or degraded_videos or ann_degraded
        elapsed = time.perf_counter() - start
        result = ServingResult(
            kind=request.kind,
            hits=hits,
            generation=self._generation,
            cache_hit=False,
            elapsed_seconds=elapsed,
            comparisons=comparisons,
            degraded=degraded,
            shards_missing=tuple(sorted(missing)),
            approx_comparisons=approx_comparisons,
            reranked=reranked,
        )
        if missing:
            self._metrics.registry.counter(
                "net_degraded_responses_total",
                "Answers computed with at least one shard missing.",
            ).inc()
        elif explain is None and not ann_degraded:
            # Cache only full-strength answers: a degraded answer served
            # from cache after the shard recovered (or its ANN block was
            # restored) would silently keep returning weakened results.
            self._cache.put(key, result)
        self._metrics.record_query(
            request.kind, elapsed, comparisons=comparisons, cache_hit=False
        )
        self._slow_log.record(
            SlowQuery(
                kind=request.kind,
                elapsed_seconds=elapsed,
                backend="sharded",
                comparisons=comparisons,
                approx_comparisons=approx_comparisons,
                cache_hit=False,
                degraded=degraded,
                shards_missing=tuple(sorted(missing)),
                trace_id=current_trace_id(),
            )
        )
        if explain is not None:
            result = replace(result, explain=self._explain_payload(
                request, key, explain, result
            ))
        return result

    def _explain_payload(
        self,
        request: QueryRequest,
        key: CacheKey,
        explain: _ExplainSink,
        result: ServingResult,
    ) -> dict:
        """Assemble the evidence dict attached to an explain response."""
        return {
            "backend": "sharded",
            "kind": request.kind,
            "generation": self._generation,
            "phases_ms": explain.phases_ms(result.elapsed_seconds),
            "shards": explain.ops(),
            "counts": {
                "comparisons": result.comparisons,
                "approx_comparisons": result.approx_comparisons,
                "reranked": result.reranked,
            },
            "cache": {
                "disposition": "bypassed (explain)",
                "would_hit": self._cache.peek(key) is not None,
                "entries": len(self._cache),
                "capacity": self._cache.capacity,
            },
            "breakers": {
                str(sid): self._breakers[sid].state.value
                for sid in sorted(self._breakers)
            },
            "shards_missing": sorted(result.shards_missing),
            "degraded": result.degraded,
            "ann": {
                "nprobe": request.nprobe,
                "rerank_k": request.rerank_k,
            },
            "trace_id": current_trace_id(),
        }

    def _require_responses(self, responses: dict, missing: set[int]) -> None:
        if responses:
            return
        detail = "; ".join(
            f"shard {sid}: {self._last_errors.get(sid, 'breaker open')}"
            for sid in sorted(missing)
        )
        raise NoShardAnsweredError(f"no shard responded ({detail})")

    # -- kind executors ------------------------------------------------

    def _shot(
        self,
        request: QueryRequest,
        scope_leaves: frozenset[str] | None,
        deadline: float | None,
        explain: _ExplainSink | None = None,
    ) -> tuple[tuple, int, set[int], tuple[int, int, bool]]:
        stats = QueryStats()
        allowed = set(scope_leaves) if scope_leaves is not None else None
        with _Phase("descend", explain):
            leaves = descend_to_leaves(
                self._root, request.features, stats, allowed, self.config.beam
            )
        ann_active = request.nprobe is not None
        if not leaves:
            if allowed is not None:
                return (), stats.comparisons, set(), (0, 0, False)
            raise DatabaseError("descent reached no populated leaf")
        names = [leaf.name for leaf in leaves]
        base = {
            "features": pack_array(request.features),
            "k": int(request.k),
            "leaves": names,
        }
        if ann_active:
            base["nprobe"] = int(request.nprobe)
            if request.rerank_k is not None:
                base["rerank_k"] = int(request.rerank_k)
        with _Phase("probe", explain):
            probe, missing = self._scatter(
                dict(base, op="probe"), deadline, sink=explain
            )
        self._require_responses(probe, missing)

        # Per-leaf fallback decision at *global* scope: a leaf scans all
        # entries only when its signature bucket is empty on every
        # responding shard — the sharded equivalent of probe_block.
        empty = [
            name
            for name in names
            if all(
                response["leaves"][name]["bucket"] == 0
                for response in probe.values()
            )
        ]
        scan: dict[int, dict] = {}
        if empty:
            with _Phase("scan", explain):
                scan, scan_missing = self._scatter(
                    dict(base, op="scan", leaves=empty),
                    deadline,
                    shard_ids=sorted(probe),
                    sink=explain,
                )
            missing |= scan_missing
            # Keep the per-leaf view consistent: only shards that
            # answered both phases contribute candidates.
            probe = {sid: probe[sid] for sid in probe if sid in scan}
            self._require_responses(probe, missing)

        with _Phase("merge", explain):
            features_by_ord: dict[str, np.ndarray] = {}
            approx_comparisons = 0
            ann_degraded = False
            for source in (probe, scan):
                for response in source.values():
                    approx_comparisons += int(
                        response.get("approx_comparisons", 0)
                    )
                    ann_degraded = ann_degraded or bool(
                        response.get("ann_degraded", False)
                    )
                    for ordinal, packed in response["features"].items():
                        features_by_ord[ordinal] = unpack_array(packed)

            merged: list[list] = []
            seen: set[tuple[str, int]] = set()
            comparisons = stats.comparisons
            for name in names:
                source = scan if name in empty else probe
                candidates: list[list] = []
                for response in source.values():
                    candidates.extend(response["leaves"][name]["candidates"])
                # Ascending global ordinal == the unsharded bucket/
                # insertion order (within-shard orders are
                # order-preserving subsets).
                candidates.sort(key=lambda item: item[0])
                kept = 0
                for item in candidates:
                    shot_key = (item[1], int(item[2]))
                    if shot_key in seen:
                        continue
                    seen.add(shot_key)
                    merged.append(item)
                    kept += 1
                comparisons += kept
            merged.sort(key=lambda item: item[4], reverse=True)  # stable
            hits = tuple(
                RankedShot(
                    entry=ShotEntry(
                        video_title=item[1],
                        shot_id=int(item[2]),
                        scene_id=int(item[3]),
                        features=self._shipped(features_by_ord, item[0]),
                    ),
                    score=float(item[4]),
                )
                for item in merged[: request.k]
            )
        # ``reranked`` is computed at merge (deduplicated kept
        # candidates = the exact tail's scored rows), matching the
        # single-process QueryStats contract.
        reranked = comparisons - stats.comparisons if ann_active else 0
        return (
            hits,
            comparisons,
            missing,
            (approx_comparisons, reranked, ann_degraded),
        )

    def _flat(
        self,
        request: QueryRequest,
        deadline: float | None,
        explain: _ExplainSink | None = None,
    ) -> tuple[tuple, int, set[int]]:
        with _Phase("scatter", explain):
            responses, missing = self._scatter(
                {
                    "op": "flat",
                    "features": pack_array(request.features),
                    "k": int(request.k),
                },
                deadline,
                sink=explain,
            )
        self._require_responses(responses, missing)
        candidates: list[list] = []
        features_by_ord: dict[str, np.ndarray] = {}
        total = 0
        for response in responses.values():
            candidates.extend(response["candidates"])
            total += int(response["total"])
            for ordinal, packed in response["features"].items():
                features_by_ord[ordinal] = unpack_array(packed)
        # The flat baseline's stable sort over registration order is
        # exactly (-score, global ordinal).
        candidates.sort(key=lambda item: (-item[4], item[0]))
        hits = tuple(
            RankedShot(
                entry=ShotEntry(
                    video_title=item[1],
                    shot_id=int(item[2]),
                    scene_id=int(item[3]),
                    features=self._shipped(features_by_ord, item[0]),
                ),
                score=float(item[4]),
            )
            for item in candidates[: request.k]
        )
        return hits, total, missing

    def _scene(
        self,
        request: QueryRequest,
        scope_leaves: frozenset[str] | None,
        deadline: float | None,
        explain: _ExplainSink | None = None,
    ) -> tuple[tuple, int, set[int]]:
        message = {
            "op": "scene",
            "features": pack_array(request.features),
            "k": int(request.k),
        }
        if request.event is not None:
            message["event"] = request.event.value
        with _Phase("scatter", explain):
            responses, missing = self._scatter(message, deadline, sink=explain)
        self._require_responses(responses, missing)
        candidates: list[list] = []
        centroids: dict[str, np.ndarray] = {}
        count = 0
        for response in responses.values():
            candidates.extend(response["candidates"])
            count += int(response["count"])
            for key, packed in response["centroids"].items():
                centroids[key] = unpack_array(packed)
        if count == 0 and not missing:
            raise DatabaseError("scene index is empty")
        # Scene insertion order is sorted (title, scene_id) on every
        # path, so the stable tie-break is (-score, (title, scene_id)).
        candidates.sort(key=lambda item: (-item[4], (item[0], int(item[1]))))
        hits = []
        for item in candidates[: request.k]:
            entry = SceneEntry(
                video_title=item[0],
                scene_id=int(item[1]),
                event=EventKind(item[2]),
                shot_count=int(item[3]),
                centroid=centroids[f"{item[0]}\x00{int(item[1])}"],
            )
            hits.append(RankedScene(entry=entry, score=float(item[4])))
        if scope_leaves is not None:
            hits = [
                hit
                for hit in hits
                if event_concept(hit.entry.video_title, hit.entry.event)
                in scope_leaves
            ]
        return tuple(hits), count, missing

    def _event(
        self,
        request: QueryRequest,
        deadline: float | None,
        explain: _ExplainSink | None = None,
    ) -> tuple[tuple, int, set[int]]:
        with _Phase("records", explain):
            missing = self._ensure_records(deadline)
        with self._records_lock:
            records = dict(self._records)
        hits = tuple(
            query_event_records(
                records,
                self._controller,
                request.event,
                user=request.user,
                video_title=request.video_title,
            )
        )
        return hits, 0, missing

    @staticmethod
    def _shipped(
        features_by_ord: dict[str, np.ndarray], ordinal: int
    ) -> np.ndarray:
        payload = features_by_ord.get(str(ordinal))
        if payload is None:
            raise ServingError(
                f"shard shipped no features for winning candidate {ordinal}"
            )
        return payload

    # -- maintenance ---------------------------------------------------

    def refresh(self) -> int:
        """Reload every shard's database and bump the generation.

        The sharded analogue of :meth:`QueryServer.refresh
        <repro.serving.server.QueryServer>`: shards reopen their SQL
        catalogs, the coordinator's cache drops the old generation, and
        registration records are re-fetched.
        """
        deadline = self._deadline(None)
        responses, missing = self._scatter({"op": "reload"}, deadline)
        self._require_responses(responses, missing)
        self._generation += 1
        self._cache.evict_other_generations(self._generation)
        with self._scope_lock:
            self._scopes = {}
        with self._records_lock:
            self._records = {}
            self._records_missing = set(self._endpoints)
        self._ensure_records(deadline)
        self._metrics.record_generation_swap()
        return self._generation

    def sample_features(self, n: int = 16) -> list[np.ndarray]:
        """Corpus feature vectors sampled across shards (loadgen pools)."""
        per_shard = max(1, -(-n // max(1, len(self._endpoints))))
        responses, _missing = self._scatter(
            {"op": "sample", "n": per_shard}, self._deadline(None)
        )
        pools = [
            [unpack_array(packed) for packed in response["features"]]
            for _, response in sorted(responses.items())
        ]
        merged: list[np.ndarray] = []
        while pools and len(merged) < n:
            for pool in pools:
                if pool:
                    merged.append(pool.pop(0))
            pools = [pool for pool in pools if pool]
        return merged[:n]

    def scrape_metrics(self) -> tuple[dict[int, dict], set[int]]:
        """Scrape every worker's registry via the ``metrics`` wire op.

        Returns ``(dumps_by_shard, missing_shard_ids)``; a dead or
        breaker-open shard is simply missing — the merged view degrades
        instead of failing.
        """
        responses, missing = self._scatter(
            {"op": "metrics"}, self._deadline(None)
        )
        dumps = {
            shard_id: response.get("metrics", {})
            for shard_id, response in responses.items()
        }
        return dumps, missing

    def metrics_dumps(self) -> list[tuple[dict[str, str], dict]]:
        """The ``(extra_labels, dump)`` pairs behind merged ``/metrics``.

        The coordinator's own registry comes first (no extra labels);
        every shard contributes a ``net_shard_up`` gauge and — when its
        scrape succeeded — its registry dump under ``shard="<id>"``.
        Feed to :func:`repro.obs.export.render_prometheus_dumps`.
        """
        dumps, _missing = self.scrape_metrics()
        items: list[tuple[dict[str, str], dict]] = [
            ({}, self._metrics.registry.dump())
        ]
        for shard_id in sorted(self._endpoints):
            label = {"shard": str(shard_id)}
            up = 1.0 if shard_id in dumps else 0.0
            items.append(
                (
                    label,
                    {
                        "families": [
                            {
                                "name": "net_shard_up",
                                "kind": "gauge",
                                "help": "1 when the shard's metrics "
                                "scrape succeeded.",
                                "labelnames": [],
                                "samples": [{"labels": [], "value": up}],
                            }
                        ],
                        "collected": {},
                    },
                )
            )
            if shard_id in dumps:
                items.append((label, dumps[shard_id]))
        return items

    def health_report(self) -> HealthReport:
        """Live/ready/degraded verdict over the shard fleet."""
        responses, missing = self._scatter(
            {"op": "ping"}, self._deadline(None)
        )
        checks = []
        for shard_id in sorted(self._endpoints):
            endpoint = self._endpoints[shard_id]
            host, port = endpoint.address
            breaker_state = self._breakers[shard_id].state.value
            if shard_id in responses:
                generation = responses[shard_id].get("generation")
                checks.append(
                    HealthCheck(
                        name=f"shard-{shard_id}",
                        ok=True,
                        detail=(
                            f"{host}:{port} generation {generation}, "
                            f"breaker {breaker_state}"
                        ),
                    )
                )
            else:
                checks.append(
                    HealthCheck(
                        name=f"shard-{shard_id}",
                        ok=False,
                        detail=(
                            f"breaker {breaker_state}: "
                            + self._last_errors.get(shard_id, "breaker open")
                        ),
                    )
                )
        degraded_videos = any(
            record.degraded_stages for record in self._records.values()
        )
        checks.append(
            HealthCheck(
                name="corpus",
                ok=not degraded_videos,
                detail=f"{len(self._records)} videos known",
            )
        )
        return HealthReport(
            live=True,
            ready=bool(responses),
            degraded=bool(missing) or degraded_videos,
            checks=checks,
        )

    def describe(self) -> str:
        """Plain-text status: shards, breakers, cache, metrics."""
        report = self.health_report()
        stats = self._cache.stats()
        lines = [
            f"sharded service: {self.spec.num_shards} shards, "
            f"generation {self._generation}, status {report.status}",
        ]
        for check in report.checks:
            lines.append(
                f"  {check.name}: {'ok' if check.ok else 'FAIL'} "
                f"({check.detail})"
            )
        lines.append(
            f"  cache: {len(self._cache)}/{self._cache.capacity} entries, "
            f"hit rate {stats.hit_rate * 100:.1f}%"
        )
        lines.append(
            "  breakers: "
            + "; ".join(
                self._breakers[sid].describe() for sid in sorted(self._breakers)
            )
        )
        lines.append(self._metrics.render())
        return "\n".join(lines)
