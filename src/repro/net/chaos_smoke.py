"""Network chaos smoke: wire faults, hedging, rolling restart under load.

``make chaos-net-smoke`` drives the sharded serving stack through the
failure modes ``docs/RELIABILITY.md`` promises it survives:

1. **Wire chaos** — a seeded :class:`~repro.resilience.faults.FaultPlan`
   injects frame corruption, mid-frame truncation, connection resets and
   refused connects into live shard RPCs.  Every completed query must be
   bit-identical to the fault-free answer or honestly degraded
   (``shards_missing`` set, never served from cache), and the retry
   counter must show the transport layer actually absorbed faults.
2. **Hedging** — with ``net.slow_shard`` latency armed and
   ``hedge_after_ms`` set, backup requests fire against slow shards and
   answers stay bit-identical (a hedge may only hide latency, never
   change a result).
3. **Rolling restart under load** — real subprocess workers are drained
   and restarted one at a time while closed-loop clients keep querying:
   zero queries may fail (degraded answers are allowed mid-cycle), the
   watchdog must not fight the deliberate restarts, and full-strength
   bit-identical answers must return once the cycle completes.

Everything is seeded and deterministic; any check failure exits 1.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.net.cluster import ShardCluster
from repro.net.coordinator import CoordinatorConfig, ShardedQueryService
from repro.net.shard import build_shards
from repro.net.worker import ShardWorker
from repro.net.protocol import ShardEndpoint
from repro.obs.registry import MetricsRegistry
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serving.metrics import ServingMetrics
from repro.serving.server import QueryRequest, QueryServer, ServerConfig
from repro.storage.lazy import SQLVideoDatabase
from repro.storage.sqlcatalog import save_database
from repro.storage.synthetic import build_synthetic_database


def _report(name: str, ok: bool, detail: str) -> bool:
    print(f"chaos-net-smoke: [{'ok ' if ok else 'FAIL'}] {name} — {detail}")
    return ok


def _keys(result) -> list[tuple]:
    out = []
    for hit in result.hits:
        entry = getattr(hit, "entry", hit)
        out.append(
            (
                entry.video_title,
                getattr(entry, "shot_id", getattr(entry, "scene_id", None)),
                getattr(hit, "score", None),
            )
        )
    return out


def _counter_total(registry: MetricsRegistry, name: str) -> float:
    for family in registry.families():
        if family.name == name:
            return sum(child.value for _, child in family.samples())
    return 0.0


def run_smoke(videos: int = 60, shots: int = 6, seed: int = 0) -> int:
    """Run the network chaos smoke; returns a process exit code."""
    started = time.perf_counter()
    tmp = Path(tempfile.mkdtemp(prefix="chaos_net_smoke_"))
    ok = True
    server = single = None
    workers: list[ShardWorker] = []
    endpoints: list[ShardEndpoint] = []
    services: list[ShardedQueryService] = []
    try:
        database = build_synthetic_database(
            videos=videos, shots_per_video=shots, scenes_per_video=3, seed=seed
        )
        save_database(database, tmp / "single")
        spec = build_shards(database, tmp / "shards", 2)
        single = SQLVideoDatabase.open(tmp / "single")
        server = QueryServer(
            database=single, config=ServerConfig(workers=2)
        ).start()

        rng = np.random.default_rng(seed + 1)
        entries = single.flat_index.entries
        shape = entries[0].features.shape
        probes = [
            entries[int(rng.integers(0, len(entries)))].features
            + rng.normal(0.0, 0.01, shape)
            for _ in range(10)
        ] + [rng.random(shape) for _ in range(2)]
        expected = {}
        for p, probe in enumerate(probes):
            for kind in ("shot", "shot_flat", "scene"):
                result = server.query(
                    QueryRequest(kind=kind, features=probe, k=10)
                )
                expected[(p, kind)] = (_keys(result), result.comparisons)

        # -- phase 1: wire chaos against in-process workers ------------
        workers = [
            ShardWorker(
                spec.shard_dir(tmp / "shards", info.shard_id),
                registry=MetricsRegistry(),
            ).start()
            for info in spec.shards
        ]
        endpoints = [
            ShardEndpoint(info.shard_id, "127.0.0.1", worker.port)
            for info, worker in zip(spec.shards, workers)
        ]
        registry = MetricsRegistry()
        service = ShardedQueryService(
            spec,
            endpoints,
            config=CoordinatorConfig(
                rpc_retries=3, breaker_threshold=5, breaker_reset=0.3
            ),
            metrics=ServingMetrics(registry=registry),
        )
        services.append(service)

        plan = FaultPlan(
            [
                FaultSpec("net.frame_corrupt", kind="corruption", probability=0.05),
                FaultSpec("net.frame_truncated", probability=0.03),
                FaultSpec("net.conn_reset", probability=0.03),
                FaultSpec("net.connect_refused", probability=0.02),
            ],
            seed=seed + 2,
        )
        exact = degraded = cached_degraded = diverged = 0
        degraded_probes = []
        with inject(plan):
            for p, probe in enumerate(probes):
                for kind in ("shot", "shot_flat", "scene"):
                    result = service.query(
                        QueryRequest(kind=kind, features=probe, k=10)
                    )
                    if result.shards_missing:
                        degraded += 1
                        degraded_probes.append((p, kind))
                        if result.cache_hit:
                            cached_degraded += 1
                    elif (
                        _keys(result),
                        result.comparisons,
                    ) == expected[(p, kind)]:
                        exact += 1
                    else:
                        diverged += 1
        retries = _counter_total(registry, "net_rpc_retries_total")
        injected = plan.fired()
        ok &= _report(
            "wire chaos",
            diverged == 0 and cached_degraded == 0 and retries > 0,
            f"{injected} faults fired, {retries:.0f} rpc retries; "
            f"{exact} bit-identical, {degraded} honestly degraded, "
            f"{diverged} diverged, {cached_degraded} cached-degraded",
        )

        # Faults off again: every answer that degraded must come back
        # full strength, proving no degraded result was cached.
        time.sleep(0.4)  # let any opened breaker reach half-open
        healed = True
        recheck = degraded_probes or [(0, "shot")]
        deadline = time.perf_counter() + 10.0
        for p, kind in recheck:
            while time.perf_counter() < deadline:
                result = service.query(
                    QueryRequest(kind=kind, features=probes[p], k=10)
                )
                if not result.shards_missing and (
                    _keys(result),
                    result.comparisons,
                ) == expected[(p, kind)]:
                    break
                time.sleep(0.1)
            else:
                healed = False
        ok &= _report(
            "recovery after disarm",
            healed,
            f"{len(recheck)} degraded queries re-answered bit-identically",
        )

        # -- phase 2: hedging hides slow shards ------------------------
        hedge_registry = MetricsRegistry()
        hedged_service = ShardedQueryService(
            spec,
            endpoints,
            config=CoordinatorConfig(
                rpc_retries=2, hedge_after_ms=30.0, breaker_threshold=5
            ),
            metrics=ServingMetrics(registry=hedge_registry),
        )
        services.append(hedged_service)
        slow_plan = FaultPlan(
            [
                FaultSpec(
                    "net.slow_shard",
                    kind="latency",
                    delay=0.25,
                    probability=0.5,
                )
            ],
            seed=seed + 3,
        )
        hedge_exact = hedge_bad = 0
        with inject(slow_plan):
            for p, probe in enumerate(probes[:6]):
                result = hedged_service.query(
                    QueryRequest(kind="shot", features=probe, k=10)
                )
                if not result.shards_missing and (
                    _keys(result),
                    result.comparisons,
                ) == expected[(p, "shot")]:
                    hedge_exact += 1
                else:
                    hedge_bad += 1
        hedges = _counter_total(hedge_registry, "net_rpc_hedges_total")
        ok &= _report(
            "hedged slow shards",
            hedge_bad == 0 and hedges > 0,
            f"{slow_plan.fired():.0f} latency faults, {hedges:.0f} hedges "
            f"launched, {hedge_exact} bit-identical answers",
        )

        for service in services:
            service.close()
        services.clear()
        for endpoint in endpoints:
            endpoint.close()
        endpoints = []
        for worker in workers:
            worker.stop()
        workers = []

        # -- phase 3: rolling restart under closed-loop load -----------
        with ShardCluster(
            tmp / "shards", spec=spec, watchdog_interval=0.2
        ) as cluster:
            load_registry = MetricsRegistry()
            load_service = ShardedQueryService(
                spec,
                cluster.endpoints,
                config=CoordinatorConfig(
                    rpc_retries=3, breaker_threshold=3, breaker_reset=0.25
                ),
                metrics=ServingMetrics(registry=load_registry),
            )
            services.append(load_service)
            stop = threading.Event()
            failures: list[str] = []
            counts = {"total": 0, "degraded": 0, "cached_degraded": 0}
            lock = threading.Lock()

            def _client(worker_seed: int) -> None:
                client_rng = np.random.default_rng(worker_seed)
                while not stop.is_set():
                    probe = np.abs(client_rng.normal(0.0, 1.0, shape))
                    try:
                        result = load_service.query(
                            QueryRequest(kind="shot", features=probe, k=10)
                        )
                    except Exception as exc:  # any raise is a failed query
                        with lock:
                            failures.append(f"{type(exc).__name__}: {exc}")
                        continue
                    with lock:
                        counts["total"] += 1
                        if result.shards_missing:
                            counts["degraded"] += 1
                            if result.cache_hit:
                                counts["cached_degraded"] += 1

            clients = [
                threading.Thread(target=_client, args=(seed + 10 + i,))
                for i in range(4)
            ]
            for thread in clients:
                thread.start()
            time.sleep(0.5)  # steady-state traffic before the cycle
            # Generous drain budget: under 4 client threads of closed-loop
            # load (and slow CI machines) a drain ack can take seconds;
            # an expired budget falls back to a hard kill, which this
            # phase asserts never happens.
            reports = cluster.restart_rolling(drain_timeout=20.0)
            time.sleep(0.5)  # and after it
            stop.set()
            for thread in clients:
                thread.join(timeout=10.0)

            rolled = all(r.graceful for r in reports)
            ok &= _report(
                "rolling restart under load",
                not failures
                and counts["total"] > 0
                and counts["cached_degraded"] == 0
                and rolled
                and cluster.respawns == 0,
                f"{len(reports)} workers cycled "
                f"({'all graceful' if rolled else 'NOT all graceful'}), "
                f"{counts['total']} queries completed, "
                f"{counts['degraded']} degraded "
                f"({counts['cached_degraded']} from cache), "
                f"{len(failures)} failed, "
                f"{cluster.respawns} watchdog respawns",
            )
            if failures:
                for line in failures[:5]:
                    print(f"chaos-net-smoke:   failed query: {line}")

            # Full strength, bit for bit, once the cycle is done.
            healed = False
            deadline = time.perf_counter() + 15.0
            while time.perf_counter() < deadline:
                result = load_service.query(
                    QueryRequest(kind="shot", features=probes[0], k=10)
                )
                if not result.shards_missing and (
                    _keys(result),
                    result.comparisons,
                ) == expected[(0, "shot")]:
                    healed = True
                    break
                time.sleep(0.1)
            ok &= _report(
                "full strength after cycle",
                healed,
                "post-restart answers bit-identical to fault-free",
            )
    except Exception as exc:  # smoke must fail loudly, not crash silently
        ok = _report("unexpected error", False, f"{type(exc).__name__}: {exc}")
    finally:
        for service in services:
            service.close()
        for endpoint in endpoints:
            endpoint.close()
        for worker in workers:
            worker.stop()
        if server is not None:
            server.stop()
        if single is not None:
            single.close()
        shutil.rmtree(tmp, ignore_errors=True)
    print(
        f"chaos-net-smoke: {'PASS' if ok else 'FAIL'} "
        f"in {time.perf_counter() - started:.1f}s"
    )
    return 0 if ok else 1


def main() -> int:
    """Entry point of ``python -m repro.net.chaos_smoke``."""
    return run_smoke()


if __name__ == "__main__":
    sys.exit(main())
