"""Shard manifests: partition a catalog into shared-nothing shard dirs.

Partitioning is **hash-by-title**: a video's every shot and scene lands
on one shard (``sha256(title) % num_shards``), so per-shard databases
stay self-consistent and within-shard orderings are order-preserving
subsets of the unsharded catalog's orderings.  That subset property is
what lets the coordinator's merge reproduce single-process tie-breaks
bit for bit (see ``docs/SHARDING.md``).

The ``ShardSpec`` manifest written next to the shard directories also
replicates the *routing metadata of the full corpus*: every leaf's
k-centres and discriminating dimensions.  Shard catalogs are saved with
those values pinned (``routing_override``), so a shard's index tree
descends and scores in the same sub-spaces as the unsharded tree even
though its local population differs; the coordinator rebuilds the same
tree from the manifest and runs the descent itself.

Each shard directory additionally carries ``global_ords.npy``: the
unsharded flat ordinal of every local flat position, letting workers
report candidates under their *global* identity for exact flat-scan
tie-breaking.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.database.access import AccessController
from repro.database.catalog import VideoDatabase
from repro.database.hierarchy import (
    ConceptLevel,
    ConceptNode,
    build_medical_hierarchy,
    ensure_subject_area,
)
from repro.database.index import (
    DEFAULT_CENTERS,
    DEFAULT_REDUCED_DIM,
    IndexNode,
    LeafHashIndex,
    _kcenters,
    build_node,
    discriminating_dimensions,
)
from repro.errors import StorageError
from repro.net.protocol import pack_array, unpack_array
from repro.storage.sqlcatalog import save_database

#: Manifest schema version.
MANIFEST_VERSION = 1
#: Manifest file name inside the shard root.
MANIFEST_NAME = "manifest.json"
#: Per-shard sidecar mapping local flat ordinals to global ones.
GLOBAL_ORDS_NAME = "global_ords.npy"


def shard_of(title: str, num_shards: int) -> int:
    """Deterministic shard id of a video title (stable across processes)."""
    digest = hashlib.sha256(title.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


@dataclass(frozen=True)
class ShardLeaf:
    """Full-corpus routing metadata of one index leaf."""

    name: str
    position: int
    centers: np.ndarray = field(repr=False)
    dims: np.ndarray = field(repr=False)


@dataclass(frozen=True)
class ShardInfo:
    """One shard's slice of the corpus."""

    shard_id: int
    directory: str
    titles: tuple[str, ...]
    entry_count: int
    video_count: int


@dataclass(frozen=True)
class ShardSpec:
    """The manifest describing a sharded corpus."""

    num_shards: int
    partitioning: str
    entry_count: int
    scene_count: int
    video_count: int
    subject_areas: tuple[str, ...]
    leaves: tuple[ShardLeaf, ...]
    shards: tuple[ShardInfo, ...]
    version: int = MANIFEST_VERSION

    def shard_dir(self, root: str | Path, shard_id: int) -> Path:
        """Absolute directory of one shard."""
        return Path(root) / self.shards[shard_id].directory

    def to_json(self) -> dict:
        """Plain-JSON form of the manifest."""
        return {
            "version": self.version,
            "partitioning": self.partitioning,
            "num_shards": self.num_shards,
            "entry_count": self.entry_count,
            "scene_count": self.scene_count,
            "video_count": self.video_count,
            "subject_areas": list(self.subject_areas),
            "leaves": [
                {
                    "name": leaf.name,
                    "position": leaf.position,
                    "centers": pack_array(leaf.centers),
                    "dims": [int(d) for d in leaf.dims],
                }
                for leaf in self.leaves
            ],
            "shards": [
                {
                    "shard_id": info.shard_id,
                    "directory": info.directory,
                    "titles": list(info.titles),
                    "entry_count": info.entry_count,
                    "video_count": info.video_count,
                }
                for info in self.shards
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ShardSpec":
        """Rebuild a manifest parsed from JSON."""
        try:
            return cls(
                version=int(payload["version"]),
                partitioning=str(payload["partitioning"]),
                num_shards=int(payload["num_shards"]),
                entry_count=int(payload["entry_count"]),
                scene_count=int(payload["scene_count"]),
                video_count=int(payload["video_count"]),
                subject_areas=tuple(payload["subject_areas"]),
                leaves=tuple(
                    ShardLeaf(
                        name=str(leaf["name"]),
                        position=int(leaf["position"]),
                        centers=unpack_array(leaf["centers"]),
                        dims=np.asarray(leaf["dims"], dtype=np.int64),
                    )
                    for leaf in payload["leaves"]
                ),
                shards=tuple(
                    ShardInfo(
                        shard_id=int(info["shard_id"]),
                        directory=str(info["directory"]),
                        titles=tuple(info["titles"]),
                        entry_count=int(info["entry_count"]),
                        video_count=int(info["video_count"]),
                    )
                    for info in payload["shards"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed shard manifest: {exc}") from exc

    def save(self, root: str | Path) -> Path:
        """Atomically write ``manifest.json`` into the shard root."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        target = root / MANIFEST_NAME
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{MANIFEST_NAME}.", suffix=".tmp", dir=root
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(self.to_json()))
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)
        return target

    def describe(self) -> str:
        """Human-readable manifest summary (``classminer shard inspect``)."""
        lines = [
            f"shard manifest v{self.version}: {self.num_shards} shards, "
            f"{self.partitioning} partitioning",
            f"  corpus: {self.video_count} videos, {self.entry_count} shots, "
            f"{self.scene_count} scenes, {len(self.leaves)} leaves",
        ]
        for info in self.shards:
            lines.append(
                f"  shard {info.shard_id}: {info.directory} — "
                f"{info.video_count} videos, {info.entry_count} shots"
            )
        return "\n".join(lines)


def load_manifest(root: str | Path) -> ShardSpec:
    """Read the manifest of a shard root directory."""
    path = Path(root) / MANIFEST_NAME
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot load shard manifest {path}: {exc}") from exc
    return ShardSpec.from_json(payload)


def _full_corpus_routing(
    database: VideoDatabase,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Per-leaf (centers, dims) of the *whole* corpus.

    Computed exactly as :func:`~repro.database.index.build_node` and the
    SQL writer compute them, so coordinator, shard catalogs and the
    unsharded index all route identically.
    """
    routing: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, entries in database.leaf_entries().items():
        population = np.stack([entry.features for entry in entries])
        routing[name] = (
            _kcenters(population, DEFAULT_CENTERS),
            discriminating_dimensions(population, DEFAULT_REDUCED_DIM).astype(
                np.int64
            ),
        )
    return routing


def build_shards(
    database: VideoDatabase, out_dir: str | Path, num_shards: int
) -> ShardSpec:
    """Partition ``database`` into ``num_shards`` shard directories.

    Writes ``<out_dir>/shard-NNNN/`` SQL catalogs (routing metadata
    pinned to the full corpus), the ``global_ords.npy`` sidecars, and
    the manifest; returns the :class:`ShardSpec`.  Raises
    :class:`~repro.errors.StorageError` when a shard would be empty —
    use fewer shards for tiny corpora.
    """
    if num_shards < 1:
        raise StorageError("need at least one shard")
    out_dir = Path(out_dir)
    titles = list(database.videos)
    if not titles:
        raise StorageError("cannot shard an empty database")

    assignment: dict[int, list[str]] = {sid: [] for sid in range(num_shards)}
    for title in titles:
        assignment[shard_of(title, num_shards)].append(title)
    empty = [sid for sid, members in assignment.items() if not members]
    if empty:
        raise StorageError(
            f"shards {empty} would be empty with {len(titles)} videos; "
            "use fewer shards"
        )

    if hasattr(database, "materialize"):
        database.materialize()
    routing = _full_corpus_routing(database)
    flat_entries = database.flat_index.entries
    ord_of = {entry.key: i for i, entry in enumerate(flat_entries)}
    scene_keys = {
        (entry.video_title, entry.scene_id)
        for entry in flat_entries
        if entry.scene_id >= 0
    }
    leaves = tuple(
        ShardLeaf(
            name=name,
            position=position,
            centers=routing[name][0],
            dims=routing[name][1],
        )
        for position, name in enumerate(database.leaf_entries())
    )
    education = database.hierarchy.find("medical_education")
    areas = (
        tuple(child.name for child in education.children) if education else ()
    )

    infos = []
    for sid in range(num_shards):
        members = assignment[sid]
        directory = f"shard-{sid:04d}"
        shard_dir = out_dir / directory
        clone = database.clone_subset(members)
        override = {
            name: routing[name] for name in clone.leaf_entries()
        }
        save_database(clone, shard_dir, routing_override=override)
        global_ords = np.asarray(
            [ord_of[entry.key] for entry in clone.flat_index.entries],
            dtype=np.int64,
        )
        np.save(shard_dir / GLOBAL_ORDS_NAME, global_ords)
        infos.append(
            ShardInfo(
                shard_id=sid,
                directory=directory,
                titles=tuple(sorted(members)),
                entry_count=int(global_ords.shape[0]),
                video_count=len(members),
            )
        )

    spec = ShardSpec(
        num_shards=num_shards,
        partitioning="hash_title",
        entry_count=len(flat_entries),
        scene_count=len(scene_keys),
        video_count=len(titles),
        subject_areas=areas,
        leaves=leaves,
        shards=tuple(infos),
    )
    spec.save(out_dir)
    return spec


def build_routing_tree(
    spec: ShardSpec,
) -> tuple[ConceptNode, IndexNode, AccessController]:
    """Rebuild (hierarchy, index tree, controller) from a manifest.

    The tree mirrors what :class:`~repro.storage.lazy.SQLVideoDatabase`
    builds from its stored leaf metadata: leaves carry the manifest's
    full-corpus centres/dims (their hash indexes stay empty — the
    coordinator only descends, it never probes locally) and internal
    nodes are derived with :func:`~repro.database.index.build_node`,
    which is deterministic in the leaf centres.  The controller over the
    same hierarchy resolves the same permitted-leaf scopes as the
    unsharded server, so cache keys and access decisions match exactly.
    """
    hierarchy = build_medical_hierarchy()
    for area in spec.subject_areas:
        ensure_subject_area(hierarchy, area)
    controller = AccessController(hierarchy)
    leaf_meta = {leaf.name: leaf for leaf in spec.leaves}

    def build(concept: ConceptNode) -> IndexNode | None:
        if concept.level is ConceptLevel.SCENE or not concept.children:
            meta = leaf_meta.get(concept.name)
            if meta is None:
                return None
            node = IndexNode(
                name=concept.name,
                depth=concept.level.depth,
                leaf=LeafHashIndex(),
            )
            node.centers = meta.centers
            node.dims = meta.dims
            return node
        children = [
            child_node
            for child in concept.children
            if (child_node := build(child)) is not None
        ]
        if not children:
            return None
        return build_node(concept.name, concept.level.depth, children=children)

    root = build(hierarchy)
    if root is None:
        raise StorageError("shard manifest describes no populated leaves")
    return hierarchy, root, controller
