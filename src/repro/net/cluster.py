"""Shard cluster: spawn, watch and respawn worker subprocesses.

:class:`ShardCluster` turns a shard root (the directory holding
``manifest.json`` and the ``shard-NNNN`` catalogs) into a set of live
worker processes, one per shard, each bound to an ephemeral localhost
port.  Every worker announces itself with a ``READY <port>`` line on
stdout; the cluster wraps each one in a
:class:`~repro.net.protocol.ShardEndpoint`.

A :class:`~repro.resilience.watchdog.Watchdog` polls the processes: a
worker that died (crash, ``die`` fault op, OOM kill) is respawned on a
fresh port and its endpoint re-pointed with
:meth:`~repro.net.protocol.ShardEndpoint.reset` — the coordinator keeps
running throughout and only sees the shard as missing while the
replacement boots.

:meth:`ShardCluster.restart` is the *deliberate* counterpart: it sends
the worker a ``drain`` op (finish in-flight work, refuse new, exit 0),
waits for the clean exit, then spawns the replacement — while a guard
set keeps the watchdog from double-spawning the shard it sees dying.
:meth:`restart_rolling` cycles every shard this way one at a time,
waiting for each replacement to answer ``ping`` before moving on, so a
coordinator retrying around the one-shard gap serves every query.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ServingError
from repro.net.protocol import RpcClient, ShardEndpoint
from repro.net.shard import ShardSpec, load_manifest
from repro.resilience.watchdog import Watchdog


@dataclass(frozen=True)
class RestartReport:
    """Outcome of one worker restart."""

    shard_id: int
    graceful: bool
    seconds: float

    def to_json(self) -> dict:
        """Wire shape for the gateway's admin endpoint."""
        return {
            "shard": self.shard_id,
            "graceful": self.graceful,
            "seconds": round(self.seconds, 3),
        }


def _worker_env() -> dict[str, str]:
    """Subprocess environment with ``repro`` importable."""
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{existing}" if existing else src_dir
        )
    return env


class ShardCluster:
    """One subprocess worker per shard, watched and auto-respawned."""

    def __init__(
        self,
        root: str | Path,
        spec: ShardSpec | None = None,
        host: str = "127.0.0.1",
        pool_size: int = 4,
        default_timeout: float = 5.0,
        spawn_timeout: float = 30.0,
        watchdog_interval: float | None = 0.2,
        inherit_stderr: bool = False,
    ) -> None:
        self._root = Path(root)
        self.spec = spec if spec is not None else load_manifest(self._root)
        self._host = host
        self._pool_size = pool_size
        self._default_timeout = default_timeout
        self._spawn_timeout = spawn_timeout
        self._watchdog_interval = watchdog_interval
        self._stderr = None if inherit_stderr else subprocess.DEVNULL
        self._procs: dict[int, subprocess.Popen] = {}
        self.endpoints: list[ShardEndpoint] = []
        self._watchdog: Watchdog | None = None
        self._running = False
        self._respawns = 0
        self._respawn_counts: dict[int, int] = {}
        self._restarts = 0
        # Spawn decisions (watchdog repair vs deliberate restart)
        # serialise on this lock; shards in ``_restarting`` are being
        # cycled on purpose and must not be repaired concurrently.
        self._lifecycle_lock = threading.Lock()
        self._restarting: set[int] = set()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ShardCluster":
        """Spawn every worker and begin watching them (idempotent)."""
        if self._running:
            return self
        self._running = True
        try:
            for info in self.spec.shards:
                port = self._spawn(info.shard_id)
                self.endpoints.append(
                    ShardEndpoint(
                        shard_id=info.shard_id,
                        host=self._host,
                        port=port,
                        pool_size=self._pool_size,
                        default_timeout=self._default_timeout,
                    )
                )
            if self._watchdog_interval is not None:
                self._watchdog = Watchdog(
                    self._repair,
                    interval=self._watchdog_interval,
                    name="shard-cluster-watchdog",
                ).start()
        except BaseException:
            self._running = False
            self.stop()
            raise
        return self

    def stop(self) -> None:
        """Stop the watchdog, the workers, and close every endpoint."""
        self._running = False
        watchdog, self._watchdog = self._watchdog, None
        if watchdog is not None:
            watchdog.stop()
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.perf_counter() + 5.0
        for proc in self._procs.values():
            remaining = max(deadline - time.perf_counter(), 0.1)
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs.clear()
        endpoints, self.endpoints = self.endpoints, []
        for endpoint in endpoints:
            endpoint.close()

    def __enter__(self) -> "ShardCluster":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- process management --------------------------------------------

    def _spawn(self, shard_id: int) -> int:
        """Launch one worker and wait for its ``READY <port>`` line."""
        shard_dir = self.spec.shard_dir(self._root, shard_id)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.net.worker",
                str(shard_dir),
                "--host",
                self._host,
                "--port",
                "0",
                "--shard-id",
                str(shard_id),
            ],
            stdout=subprocess.PIPE,
            stderr=self._stderr,
            env=_worker_env(),
            text=True,
        )
        try:
            port = self._await_ready(proc, shard_id)
        except BaseException:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            raise
        self._procs[shard_id] = proc
        return port

    def _await_ready(self, proc: subprocess.Popen, shard_id: int) -> int:
        # The worker writes exactly one line to stdout; a blocking
        # readline is bounded by SIGALRM-free polling on the process
        # itself plus the spawn timeout enforced by the caller's clock.
        deadline = time.perf_counter() + self._spawn_timeout
        assert proc.stdout is not None
        while True:
            if time.perf_counter() > deadline:
                raise ServingError(
                    f"shard {shard_id} worker did not report READY within "
                    f"{self._spawn_timeout}s"
                )
            line = proc.stdout.readline()
            if not line:
                code = proc.poll()
                raise ServingError(
                    f"shard {shard_id} worker exited (code {code}) before READY"
                )
            line = line.strip()
            if line.startswith("READY "):
                try:
                    return int(line.split(" ", 1)[1])
                except ValueError as exc:
                    raise ServingError(
                        f"shard {shard_id} worker sent malformed READY: {line!r}"
                    ) from exc

    def _repair(self) -> int:
        """Watchdog check: respawn dead workers on fresh ports."""
        if not self._running:
            return 0
        repaired = 0
        with self._lifecycle_lock:
            for endpoint in self.endpoints:
                if endpoint.shard_id in self._restarting:
                    continue  # a deliberate restart owns this shard
                proc = self._procs.get(endpoint.shard_id)
                if proc is not None and proc.poll() is None:
                    continue
                try:
                    port = self._spawn(endpoint.shard_id)
                except ServingError:
                    continue  # booting may fail transiently; retry next tick
                endpoint.reset(self._host, port)
                repaired += 1
                self._respawns += 1
                self._respawn_counts[endpoint.shard_id] = (
                    self._respawn_counts.get(endpoint.shard_id, 0) + 1
                )
        return repaired

    # -- graceful restart ----------------------------------------------

    def restart(
        self,
        shard_id: int,
        graceful: bool = True,
        drain_timeout: float = 10.0,
    ) -> RestartReport:
        """Cycle one worker: drain (or terminate), wait, respawn.

        ``graceful`` sends the ``drain`` wire op so the worker finishes
        in-flight requests and exits 0; a worker that cannot be reached
        (already dead/hung) falls back to terminate/kill.  The watchdog
        is fenced off the shard for the duration, so exactly one
        replacement is spawned.
        """
        started = time.perf_counter()
        endpoint = next(
            (ep for ep in self.endpoints if ep.shard_id == shard_id), None
        )
        if not self._running or endpoint is None:
            raise ServingError(f"no running worker for shard {shard_id}")
        with self._lifecycle_lock:
            if shard_id in self._restarting:
                raise ServingError(f"shard {shard_id} is already restarting")
            self._restarting.add(shard_id)
        try:
            proc = self._procs.get(shard_id)
            drained = False
            if proc is not None and proc.poll() is None:
                if graceful:
                    drained = self._drain_worker(endpoint, drain_timeout)
                if drained:
                    try:
                        proc.wait(timeout=drain_timeout)
                    except subprocess.TimeoutExpired:
                        drained = False
                if not drained:
                    proc.terminate()
                    try:
                        proc.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
            with self._lifecycle_lock:
                port = self._spawn(shard_id)
                endpoint.reset(self._host, port)
                self._restarts += 1
            return RestartReport(
                shard_id=shard_id,
                graceful=drained,
                seconds=time.perf_counter() - started,
            )
        finally:
            with self._lifecycle_lock:
                self._restarting.discard(shard_id)

    def _drain_worker(
        self, endpoint: ShardEndpoint, drain_timeout: float
    ) -> bool:
        """Send ``drain`` on a fresh connection; True when accepted."""
        host, port = endpoint.address
        client = RpcClient(
            host, port, default_timeout=min(2.0, drain_timeout)
        )
        try:
            response = client.call({"op": "drain", "grace": drain_timeout})
            return bool(response.get("draining"))
        except ServingError:
            return False  # dead or wedged: the hard path takes over
        finally:
            client.close()

    def restart_rolling(
        self,
        graceful: bool = True,
        drain_timeout: float = 10.0,
        ready_timeout: float = 30.0,
    ) -> list[RestartReport]:
        """Restart every worker one at a time (ascending shard id).

        Each replacement must answer ``ping`` before the next shard is
        touched, so at most one shard is ever down and a retrying
        coordinator serves every query throughout.
        """
        reports = []
        for endpoint in sorted(self.endpoints, key=lambda ep: ep.shard_id):
            report = self.restart(
                endpoint.shard_id,
                graceful=graceful,
                drain_timeout=drain_timeout,
            )
            self._await_ping(endpoint, ready_timeout)
            reports.append(report)
        return reports

    def _await_ping(self, endpoint: ShardEndpoint, timeout: float) -> None:
        deadline = time.perf_counter() + timeout
        while True:
            try:
                endpoint.call({"op": "ping"}, deadline)
                return
            except ServingError:
                if time.perf_counter() >= deadline:
                    raise ServingError(
                        f"shard {endpoint.shard_id} replacement did not "
                        f"answer ping within {timeout}s"
                    )
                time.sleep(0.05)

    # -- introspection / fault injection -------------------------------

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._running

    @property
    def respawns(self) -> int:
        """Workers respawned by the watchdog so far."""
        return self._respawns

    @property
    def restarts(self) -> int:
        """Deliberate (drain-based) worker restarts so far."""
        return self._restarts

    def respawn_counts(self) -> dict[int, int]:
        """Watchdog respawns per shard id (shards never respawned omitted)."""
        with self._lifecycle_lock:
            return dict(self._respawn_counts)

    @property
    def watchdog(self) -> Watchdog | None:
        """The cluster watchdog (None while stopped or disabled)."""
        return self._watchdog

    def alive(self) -> list[int]:
        """Shard ids whose worker process is currently alive."""
        return sorted(
            shard_id
            for shard_id, proc in self._procs.items()
            if proc.poll() is None
        )

    def kill(self, shard_id: int) -> None:
        """Hard-kill one worker (fault injection for recovery tests)."""
        proc = self._procs.get(shard_id)
        if proc is None or proc.poll() is not None:
            return
        proc.send_signal(signal.SIGKILL)
        proc.wait()

    def poke(self) -> int:
        """Run one repair check synchronously (tests)."""
        return self._repair()

    def describe(self) -> str:
        """Human-readable cluster status."""
        alive = set(self.alive())
        lines = [
            f"shard cluster: {len(alive)}/{self.spec.num_shards} workers "
            f"alive, {self._respawns} respawns, {self._restarts} restarts"
        ]
        for endpoint in self.endpoints:
            host, port = endpoint.address
            state = "alive" if endpoint.shard_id in alive else "DEAD"
            lines.append(
                f"  shard {endpoint.shard_id}: {host}:{port} [{state}]"
            )
        return "\n".join(lines)
