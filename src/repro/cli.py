"""Command-line interface: mine, evaluate, skim and snapshot videos.

Installed as the ``classminer`` console script::

    classminer corpus                       # list available videos
    classminer mine face_repair             # mine and print the hierarchy
    classminer events face_repair           # scenes with mined events
    classminer skim skin_examination        # colour bar + storyboard
    classminer evaluate laparoscopy         # methods A/B/C vs ground truth
    classminer render demo -o demo.npz      # snapshot the rendered stream

The special title ``demo`` refers to the compact demo screenplay; the
five corpus titles come from the paper's dataset description.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.baselines import lin_detect_scenes, rui_detect_scenes
from repro.core import ClassMiner
from repro.errors import ReproError
from repro.evaluation import evaluate_scene_partition
from repro.evaluation.report import render_table
from repro.skimming import build_color_bar, build_skim, render_storyboard, render_text_bar
from repro.video.io import save_stream
from repro.video.synthesis import (
    CORPUS_TITLES,
    demo_screenplay,
    generate_video,
    load_video,
)


def _load(title: str, with_audio: bool = True):
    if title == "demo":
        return generate_video(demo_screenplay(), seed=0, with_audio=with_audio)
    return load_video(title, with_audio=with_audio)


def _cmd_corpus(_args: argparse.Namespace) -> int:
    print("Available videos (synthetic corpus, Sec. 6.1 titles):")
    for title in ("demo",) + CORPUS_TITLES:
        print(f"  {title}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    video = _load(args.title)
    result = ClassMiner().mine(video.stream)
    sizes = result.structure.level_sizes()
    print(f"{args.title}: {len(video.stream)} frames, {video.stream.duration:.1f}s")
    print(
        f"  hierarchy: {sizes['clustered_scenes']} clustered scenes > "
        f"{sizes['scenes']} scenes > {sizes['groups']} groups > "
        f"{sizes['shots']} shots"
    )
    print(f"  CRF (Eq. 21): {result.structure.compression_rate_factor:.3f}")
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    video = _load(args.title)
    result = ClassMiner().mine(video.stream)
    rows = []
    for scene in result.structure.scenes:
        event = result.event_of_scene(scene.scene_id)
        start, stop = scene.frame_span
        rows.append(
            [
                scene.scene_id,
                f"{start / video.stream.fps:.1f}-{stop / video.stream.fps:.1f}s",
                scene.shot_count,
                event.kind.value,
            ]
        )
    print(render_table(["scene", "time", "shots", "event"], rows, title=args.title))
    return 0


def _cmd_skim(args: argparse.Namespace) -> int:
    video = _load(args.title)
    result = ClassMiner().mine(video.stream)
    skim = build_skim(result.structure, result.events.events)
    bar = build_color_bar(result.structure, result.events.events)
    print(render_text_bar(bar, width=args.width))
    print()
    print(render_storyboard(skim, level=args.level, columns=3))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    video = _load(args.title)
    result = ClassMiner().mine(video.stream, mine_events=False)
    structure = result.structure
    rows = []
    for label, scenes in (
        ("A (ours)", [scene.shot_ids for scene in structure.scenes]),
        ("B (Rui et al.)", rui_detect_scenes(structure.shots).scenes),
        ("C (Lin & Zhang)", lin_detect_scenes(structure.shots).scenes),
    ):
        evaluation = evaluate_scene_partition(
            video.truth, structure.shots, scenes, label
        )
        rows.append([label, evaluation.precision, evaluation.crf])
    print(
        render_table(
            ["method", "precision (Eq.20)", "CRF (Eq.21)"],
            rows,
            title=f"Scene detection on '{args.title}'",
        )
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.skimming.report_html import save_report

    video = _load(args.title)
    result = ClassMiner().mine(video.stream)
    save_report(result, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_poster(args: argparse.Namespace) -> int:
    from repro.skimming.poster import save_poster

    video = _load(args.title)
    result = ClassMiner().mine(video.stream)
    skim = build_skim(result.structure, result.events.events)
    image = save_poster(skim, args.output, level=args.level, columns=args.columns)
    print(f"wrote {args.output}: {image.shape[1]}x{image.shape[0]} PPM")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    video = _load(args.title)
    save_stream(video.stream, args.output)
    print(
        f"wrote {args.output}: {len(video.stream)} frames @ {video.stream.fps} fps"
        + (" + audio" if video.stream.audio is not None else "")
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="classminer",
        description="ClassMiner: medical video mining (ICDE 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("corpus", help="list available videos").set_defaults(
        func=_cmd_corpus
    )

    mine = sub.add_parser("mine", help="mine a video's content structure")
    mine.add_argument("title")
    mine.set_defaults(func=_cmd_mine)

    events = sub.add_parser("events", help="mined scene events of a video")
    events.add_argument("title")
    events.set_defaults(func=_cmd_events)

    skim = sub.add_parser("skim", help="colour bar and storyboard")
    skim.add_argument("title")
    skim.add_argument("--level", type=int, default=3, choices=(1, 2, 3, 4))
    skim.add_argument("--width", type=int, default=72)
    skim.set_defaults(func=_cmd_skim)

    evaluate = sub.add_parser("evaluate", help="methods A/B/C vs ground truth")
    evaluate.add_argument("title")
    evaluate.set_defaults(func=_cmd_evaluate)

    report = sub.add_parser("report", help="write a standalone HTML summary")
    report.add_argument("title")
    report.add_argument("-o", "--output", required=True)
    report.set_defaults(func=_cmd_report)

    poster = sub.add_parser("poster", help="write a pictorial-summary PPM")
    poster.add_argument("title")
    poster.add_argument("-o", "--output", required=True)
    poster.add_argument("--level", type=int, default=3, choices=(1, 2, 3, 4))
    poster.add_argument("--columns", type=int, default=4)
    poster.set_defaults(func=_cmd_poster)

    render = sub.add_parser("render", help="snapshot the rendered stream")
    render.add_argument("title")
    render.add_argument("-o", "--output", required=True)
    render.set_defaults(func=_cmd_render)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
