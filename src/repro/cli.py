"""Command-line interface: mine, evaluate, skim and snapshot videos.

Installed as the ``classminer`` console script::

    classminer corpus                       # list available videos
    classminer mine face_repair             # mine and print the hierarchy
    classminer events face_repair           # scenes with mined events
    classminer skim skin_examination        # colour bar + storyboard
    classminer evaluate laparoscopy         # methods A/B/C vs ground truth
    classminer render demo -o demo.npz      # snapshot the rendered stream
    classminer ingest all --db-dir db/      # mine the corpus into a database
    classminer migrate --db-dir db/         # JSON-era dir -> SQL catalog
    classminer search "laser surgery" --db-dir db/  # full-text metadata search
    classminer cache list --db-dir db/      # inspect the artifact cache
    classminer serve --db-dir db/           # serving health check + metrics
    classminer health --db-dir db/          # liveness/readiness/degradation
    classminer loadtest --db-dir db/        # closed-loop load generator
    classminer mine demo --trace t.jsonl    # record a span trace while mining
    classminer obs render t.jsonl           # render a recorded trace
    classminer obs export --format prometheus  # registry exposition text

The special title ``demo`` refers to the compact demo screenplay; the
five corpus titles come from the paper's dataset description.  For
``ingest``, ``corpus`` expands to the five titles and ``all`` to the
corpus plus the demo.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from contextlib import contextmanager

from repro.baselines import lin_detect_scenes, rui_detect_scenes
from repro.core import ClassMiner
from repro.errors import ReproError
from repro.evaluation import evaluate_scene_partition
from repro.evaluation.report import render_table
from repro.skimming import build_color_bar, build_skim, render_storyboard, render_text_bar
from repro.video.io import save_stream
from repro.video.synthesis import (
    CORPUS_TITLES,
    demo_screenplay,
    generate_video,
    load_video,
)


def _load(title: str, with_audio: bool = True):
    if title == "demo":
        return generate_video(demo_screenplay(), seed=0, with_audio=with_audio)
    return load_video(title, with_audio=with_audio)


@contextmanager
def _tracing(args: argparse.Namespace):
    """Install a tracer for the command when ``--trace PATH`` was given.

    Yields the tracer (or None when tracing is off); on exit the
    previous tracer is restored and the spans are written as JSONL.
    """
    path = getattr(args, "trace", None)
    if not path:
        yield None
        return
    from repro.obs import Tracer, install_tracer

    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)
        tracer.write_jsonl(path)
        print(f"trace: wrote {len(tracer.spans())} spans to {path}")


def _cmd_corpus(_args: argparse.Namespace) -> int:
    print("Available videos (synthetic corpus, Sec. 6.1 titles):")
    for title in ("demo",) + CORPUS_TITLES:
        print(f"  {title}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    with _tracing(args) as tracer:
        video = _load(args.title)
        result = ClassMiner().mine(video.stream)
    if tracer is not None:
        from repro.obs import render_spans

        print(render_spans(tracer.spans()))
    sizes = result.structure.level_sizes()
    print(f"{args.title}: {len(video.stream)} frames, {video.stream.duration:.1f}s")
    print(
        f"  hierarchy: {sizes['clustered_scenes']} clustered scenes > "
        f"{sizes['scenes']} scenes > {sizes['groups']} groups > "
        f"{sizes['shots']} shots"
    )
    print(f"  CRF (Eq. 21): {result.structure.compression_rate_factor:.3f}")
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    video = _load(args.title)
    result = ClassMiner().mine(video.stream)
    rows = []
    for scene in result.structure.scenes:
        event = result.event_of_scene(scene.scene_id)
        start, stop = scene.frame_span
        rows.append(
            [
                scene.scene_id,
                f"{start / video.stream.fps:.1f}-{stop / video.stream.fps:.1f}s",
                scene.shot_count,
                event.kind.value,
            ]
        )
    print(render_table(["scene", "time", "shots", "event"], rows, title=args.title))
    return 0


def _cmd_skim(args: argparse.Namespace) -> int:
    video = _load(args.title)
    result = ClassMiner().mine(video.stream)
    skim = build_skim(result.structure, result.events.events)
    bar = build_color_bar(result.structure, result.events.events)
    print(render_text_bar(bar, width=args.width))
    print()
    print(render_storyboard(skim, level=args.level, columns=3))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    video = _load(args.title)
    result = ClassMiner().mine(video.stream, mine_events=False)
    structure = result.structure
    rows = []
    for label, scenes in (
        ("A (ours)", [scene.shot_ids for scene in structure.scenes]),
        ("B (Rui et al.)", rui_detect_scenes(structure.shots).scenes),
        ("C (Lin & Zhang)", lin_detect_scenes(structure.shots).scenes),
    ):
        evaluation = evaluate_scene_partition(
            video.truth, structure.shots, scenes, label
        )
        rows.append([label, evaluation.precision, evaluation.crf])
    print(
        render_table(
            ["method", "precision (Eq.20)", "CRF (Eq.21)"],
            rows,
            title=f"Scene detection on '{args.title}'",
        )
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.skimming.report_html import save_report

    video = _load(args.title)
    result = ClassMiner().mine(video.stream)
    save_report(result, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_poster(args: argparse.Namespace) -> int:
    from repro.skimming.poster import save_poster

    video = _load(args.title)
    result = ClassMiner().mine(video.stream)
    skim = build_skim(result.structure, result.events.events)
    image = save_poster(skim, args.output, level=args.level, columns=args.columns)
    print(f"wrote {args.output}: {image.shape[1]}x{image.shape[0]} PPM")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.ingest import ProgressTracker, RetryPolicy, ingest_corpus

    tracker = ProgressTracker()

    def progress(event):
        tracker(event)
        if not args.quiet and event.kind != "queued":
            print(event.describe())

    with _tracing(args):
        report = ingest_corpus(
            args.titles,
            args.db_dir,
            workers=args.workers,
            force=args.force,
            seed=args.seed,
            timeout=args.timeout,
            policy=RetryPolicy(retries=args.retries),
            progress=progress,
            strict=False,
        )
    print()
    print(tracker.render_summary())
    print(
        f"\n{len(report.mined)} mined, {len(report.cached)} cached, "
        f"{len(report.failed)} failed; "
        f"{len(report.registered)} videos registered"
    )
    if report.database_path is not None:
        print(f"database: {report.database_path}")
    return 0 if report.ok else 1


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.storage import migrate_db_dir

    report = migrate_db_dir(args.db_dir, remove_json=args.remove_json)
    print(report.render())
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.evaluation.report import render_table as _table
    from repro.storage import SQLCatalog, catalog_path

    if not catalog_path(args.db_dir).exists():
        print(
            f"error: no SQL catalog in {args.db_dir} — run `classminer "
            f"migrate --db-dir {args.db_dir}` first",
            file=sys.stderr,
        )
        return 1
    with SQLCatalog(args.db_dir) as catalog:
        hits = catalog.search_text(args.text, k=args.k)
        surface = "fts5" if catalog.fts_enabled else "LIKE fallback"
    if not hits:
        print(f"no matches for {args.text!r} ({surface})")
        return 0
    rows = [[hit.kind, hit.title, hit.body] for hit in hits]
    print(_table(["kind", "title", "matched text"], rows, title=f"search ({surface})"))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.evaluation.report import render_table as _table
    from repro.ingest import manifest_for, store_for

    store = store_for(args.db_dir)
    if args.action == "list":
        infos = store.list()
        if not infos:
            print(f"no artifacts under {store.root}")
            return 0
        rows = [
            [info.title, info.key[:12], f"{info.size_bytes / 1024:.0f} KiB"]
            for info in infos
        ]
        print(_table(["title", "key", "size"], rows, title="artifact cache"))
        total = sum(info.size_bytes for info in infos)
        print(f"\n{len(infos)} artifacts, {total / 1024:.0f} KiB total")
        return 0
    removed = store.clear()
    manifest_for(args.db_dir).clear()
    print(f"removed {removed} artifacts from {store.root}")
    return 0


def _require_db_dir(args: argparse.Namespace) -> None:
    if not getattr(args, "db_dir", None):
        raise ReproError(
            "--db-dir is required for this mode (or pass --url/--http "
            "to target a running server)"
        )


def _serving_server(args: argparse.Namespace):
    from repro.ingest import load_database
    from repro.obs import get_registry
    from repro.serving import QueryServer, ServerConfig, ServingMetrics

    database = load_database(args.db_dir)
    config = ServerConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_timeout=args.timeout,
        ann_nprobe=getattr(args, "nprobe", None),
        ann_rerank_k=getattr(args, "rerank_k", None),
    )
    # CLI servers report through the process-global registry so
    # ``classminer obs export`` and the Prometheus text cover them.
    metrics = ServingMetrics(registry=get_registry())
    return QueryServer(database, config, metrics=metrics)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import QueryRequest

    if args.http is not None:
        return _cmd_serve_http(args)
    _require_db_dir(args)
    with _tracing(args), _serving_server(args) as server:
        snapshot = server.manager.current()
        entries = snapshot.flat.entries
        canary = entries[0].features
        cold = server.query(QueryRequest(kind="shot", features=canary, k=5))
        warm = server.query(QueryRequest(kind="shot", features=canary, k=5))
        print(
            f"canary query: cold {cold.elapsed_seconds * 1e3:.3f}ms "
            f"({cold.comparisons} comparisons), "
            f"warm {warm.elapsed_seconds * 1e6:.0f}us "
            f"(cache {'hit' if warm.cache_hit else 'MISS'})"
        )
        ok = bool(cold.hits) and warm.cache_hit
        print(server.describe())
    return 0 if ok else 1


def _cmd_serve_http(args: argparse.Namespace) -> int:
    import time as _time
    from contextlib import ExitStack
    from pathlib import Path

    from repro.net import (
        CoordinatorConfig,
        GatewayConfig,
        HttpGateway,
        ShardCluster,
        ShardedQueryService,
        build_shards,
        load_manifest,
    )
    from repro.net.shard import MANIFEST_NAME
    from repro.obs import get_registry
    from repro.serving import ServingMetrics

    sharded = bool(args.shards or args.shards_dir)
    with ExitStack() as stack:
        stack.enter_context(_tracing(args))
        if sharded:
            shards_dir = Path(args.shards_dir) if args.shards_dir else None
            if shards_dir is None:
                _require_db_dir(args)
                shards_dir = Path(args.db_dir) / f"shards-{args.shards}"
            if (shards_dir / MANIFEST_NAME).exists():
                spec = load_manifest(shards_dir)
                if args.shards and spec.num_shards != args.shards:
                    raise ReproError(
                        f"{shards_dir} holds {spec.num_shards} shards but "
                        f"--shards {args.shards} was requested; pick a "
                        "different --shards-dir or rebuild with "
                        "'classminer shard build'"
                    )
                print(f"loaded {spec.num_shards}-shard manifest from {shards_dir}")
            else:
                _require_db_dir(args)
                from repro.ingest import load_database

                num_shards = args.shards or 2
                spec = build_shards(
                    load_database(args.db_dir), shards_dir, num_shards
                )
                print(f"built {num_shards} shards under {shards_dir}")
            cluster = stack.enter_context(
                ShardCluster(
                    shards_dir,
                    spec=spec,
                    default_timeout=args.timeout,
                    # With logging on, worker stderr flows through too —
                    # each line prefixed "[shard N]" by the worker itself.
                    inherit_stderr=getattr(args, "access_log", False),
                )
            )
            backend = ShardedQueryService(
                spec,
                cluster.endpoints,
                config=CoordinatorConfig(
                    queue_depth=args.queue_depth,
                    default_timeout=args.timeout,
                    ann_nprobe=getattr(args, "nprobe", None),
                    ann_rerank_k=getattr(args, "rerank_k", None),
                ),
                metrics=ServingMetrics(registry=get_registry()),
            )
            stack.callback(backend.close)
        else:
            _require_db_dir(args)
            cluster = None
            backend = stack.enter_context(_serving_server(args))
        gateway = stack.enter_context(
            HttpGateway(
                backend,
                GatewayConfig(
                    port=args.http,
                    default_timeout=args.timeout,
                    access_log=getattr(args, "access_log", False),
                ),
                cluster=cluster,
            )
        )
        mode = f"{spec.num_shards} shards" if sharded else "single process"
        print(f"serving on {gateway.url} ({mode})")
        print(
            "endpoints: POST /query /scene_search"
            + (" /admin/restart" if sharded else "")
            + "; GET /skim/{video_id} /health /metrics /debug/slow /workload"
        )
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.net import build_shards, load_manifest

    if args.shard_command == "build":
        from repro.ingest import load_database

        spec = build_shards(
            load_database(args.db_dir), Path(args.out), args.num
        )
        print(spec.describe())
        return 0
    if args.shard_command == "restart":
        from repro.net import request_restart

        if args.rolling == (args.shard is not None):
            raise ReproError(
                "pick exactly one of --rolling or --shard N"
            )
        result = request_restart(
            args.url,
            rolling=args.rolling,
            shard=args.shard,
            graceful=not args.hard,
            token=args.token,
        )
        for entry in result.get("restarted", []):
            mode = "graceful" if entry.get("graceful") else "hard"
            print(
                f"shard {entry.get('shard')}: {mode} restart "
                f"in {entry.get('seconds')}s"
            )
        return 0
    print(load_manifest(Path(args.dir)).describe())
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.resilience import server_health

    if args.url:
        from repro.net import probe_health

        report = probe_health(args.url)
        print(report.render())
        return report.exit_code
    _require_db_dir(args)
    with _serving_server(args) as server:
        # Exercise the snapshot build so readiness reflects reality.
        server.manager.current()
        report = server_health(server)
        print(report.render())
        return report.exit_code


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.serving import LoadgenConfig, run_load

    if args.http:
        return _cmd_loadtest_http(args)
    _require_db_dir(args)
    with _tracing(args), _serving_server(args) as server:
        config = LoadgenConfig(
            clients=args.clients,
            duration=args.duration,
            k=args.k,
            timeout=args.timeout,
            unique_fraction=args.unique_fraction,
            seed=args.seed,
            nprobe=getattr(args, "nprobe", None),
            rerank_k=getattr(args, "rerank_k", None),
        )
        report = run_load(server, config)
        text = report.render(f"loadtest against {args.db_dir}")
        print(text)
        print()
        print(server.metrics.render())
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(text + "\n" + server.metrics.render() + "\n")
            print(f"\nwrote {args.output}")
        for failure in report.failures:
            print(f"invariant failure: {failure}", file=sys.stderr)
    return 0 if not report.failures and report.completed else 1


def _cmd_loadtest_http(args: argparse.Namespace) -> int:
    from repro.net import HttpLoadConfig, run_http_load

    config = HttpLoadConfig(
        url=args.http,
        duration_seconds=args.duration,
        concurrency=args.clients,
        k=args.k,
        deadline_ms=args.deadline_ms,
        seed=args.seed,
        token=args.token,
    )
    report = run_http_load(config)
    text = report.render()
    print(text)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        print(f"\nwrote {args.output}")
    return 0 if report.ok > 0 and report.server_errors_5xx == 0 else 1


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    from repro.obs import get_registry

    for name, value in sorted(get_registry().snapshot().items()):
        print(f"{name} {value:g}")
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs import get_registry, render_json, render_prometheus

    registry = get_registry()
    if args.format == "prometheus":
        text = render_prometheus(registry)
    else:
        text = render_json(registry)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_obs_render(args: argparse.Namespace) -> int:
    from repro.obs import load_trace, render_spans

    print(render_spans(load_trace(args.trace_file), max_spans=args.max_spans))
    return 0


def _cmd_obs_slow(args: argparse.Namespace) -> int:
    from repro.obs import SlowQuery, SlowQueryLog, get_slow_log

    if not args.url:
        print(get_slow_log().render())
        return 0
    import json
    import urllib.request

    target = args.url.rstrip("/") + "/debug/slow"
    with urllib.request.urlopen(target, timeout=5.0) as response:
        payload = json.loads(response.read().decode("utf-8"))
    log = SlowQueryLog(capacity=max(1, int(payload.get("capacity", 32))))
    for entry in payload.get("slow", []):
        log.record(
            SlowQuery(
                kind=str(entry.get("kind", "?")),
                elapsed_seconds=float(entry.get("elapsed_ms", 0.0)) / 1e3,
                backend=str(entry.get("backend", "?")),
                comparisons=int(entry.get("comparisons", 0)),
                approx_comparisons=int(entry.get("approx_comparisons", 0)),
                cache_hit=bool(entry.get("cache_hit", False)),
                degraded=bool(entry.get("degraded", False)),
                shards_missing=tuple(entry.get("shards_missing", ())),
                trace_id=entry.get("trace_id"),
            )
        )
    print(f"{target}: {payload.get('recorded', 0)} queries recorded")
    print(log.render())
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    video = _load(args.title)
    save_stream(video.stream, args.output)
    print(
        f"wrote {args.output}: {len(video.stream)} frames @ {video.stream.fps} fps"
        + (" + audio" if video.stream.audio is not None else "")
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="classminer",
        description="ClassMiner: medical video mining (ICDE 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("corpus", help="list available videos").set_defaults(
        func=_cmd_corpus
    )

    def _trace_arg(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="write a JSONL trace of this run to PATH",
        )

    mine = sub.add_parser("mine", help="mine a video's content structure")
    mine.add_argument("title")
    _trace_arg(mine)
    mine.set_defaults(func=_cmd_mine)

    events = sub.add_parser("events", help="mined scene events of a video")
    events.add_argument("title")
    events.set_defaults(func=_cmd_events)

    skim = sub.add_parser("skim", help="colour bar and storyboard")
    skim.add_argument("title")
    skim.add_argument("--level", type=int, default=3, choices=(1, 2, 3, 4))
    skim.add_argument("--width", type=int, default=72)
    skim.set_defaults(func=_cmd_skim)

    evaluate = sub.add_parser("evaluate", help="methods A/B/C vs ground truth")
    evaluate.add_argument("title")
    evaluate.set_defaults(func=_cmd_evaluate)

    report = sub.add_parser("report", help="write a standalone HTML summary")
    report.add_argument("title")
    report.add_argument("-o", "--output", required=True)
    report.set_defaults(func=_cmd_report)

    poster = sub.add_parser("poster", help="write a pictorial-summary PPM")
    poster.add_argument("title")
    poster.add_argument("-o", "--output", required=True)
    poster.add_argument("--level", type=int, default=3, choices=(1, 2, 3, 4))
    poster.add_argument("--columns", type=int, default=4)
    poster.set_defaults(func=_cmd_poster)

    render = sub.add_parser("render", help="snapshot the rendered stream")
    render.add_argument("title")
    render.add_argument("-o", "--output", required=True)
    render.set_defaults(func=_cmd_render)

    ingest = sub.add_parser(
        "ingest",
        help="mine titles into a persistent database directory",
        description=(
            "Mine each title (shots, scenes, cues, audio, events) into a "
            "content-addressed artifact cache under --db-dir, then build "
            "the queryable catalog (catalog.sqlite + features/, or "
            "database.json with CLASSMINER_CATALOG_BACKEND=json) from the "
            "artifacts. Finished jobs are recorded "
            "in manifest.jsonl, so an interrupted ingest resumes without "
            "redoing work, and a re-run hits the cache entirely."
        ),
    )
    ingest.add_argument(
        "titles",
        nargs="+",
        help="corpus titles, 'demo', 'corpus' (five titles) or 'all'",
    )
    ingest.add_argument(
        "--db-dir",
        required=True,
        help="database directory (artifacts/, manifest.jsonl, catalog.sqlite)",
    )
    ingest.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; 1 mines serially in-process (default: 1)",
    )
    ingest.add_argument(
        "--force",
        action="store_true",
        help="re-mine even when a cached artifact exists",
    )
    ingest.add_argument("--seed", type=int, default=0, help="render seed (default: 0)")
    ingest.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock limit in seconds (pool mode only)",
    )
    ingest.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry attempts per job after the first failure (default: 2)",
    )
    ingest.add_argument(
        "--quiet", action="store_true", help="only print the final summary"
    )
    _trace_arg(ingest)
    ingest.set_defaults(func=_cmd_ingest)

    migrate = sub.add_parser(
        "migrate",
        help="convert a JSON-era database directory to the SQL catalog",
        description=(
            "One-shot migration: read database.json (or rebuild from the "
            "artifact store) and write catalog.sqlite plus the "
            "content-addressed feature blocks under features/. Idempotent; "
            "query results are identical before and after."
        ),
    )
    migrate.add_argument("--db-dir", required=True, help="database directory")
    migrate.add_argument(
        "--remove-json",
        action="store_true",
        help="delete the legacy database.json after a successful migration",
    )
    migrate.set_defaults(func=_cmd_migrate)

    search = sub.add_parser(
        "search",
        help="full-text search over catalog metadata (videos/scenes/concepts)",
        description=(
            "Query the SQL catalog's FTS5 surface (bm25-ranked; degrades to "
            "a LIKE scan when the linked SQLite lacks FTS5) over video "
            "titles, scene events and concept names."
        ),
    )
    search.add_argument("text", help="search text (all terms must match)")
    search.add_argument("--db-dir", required=True, help="database directory")
    search.add_argument(
        "-k", type=int, default=10, help="maximum hits (default: 10)"
    )
    search.set_defaults(func=_cmd_search)

    cache = sub.add_parser(
        "cache", help="inspect or clear the ingest artifact cache"
    )
    cache.add_argument("action", choices=("list", "clear"))
    cache.add_argument("--db-dir", required=True, help="database directory")
    cache.set_defaults(func=_cmd_cache)

    def _serving_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--db-dir",
            default=None,
            help="ingested database directory (required unless targeting "
            "a running server via --url/--http)",
        )
        sub_parser.add_argument(
            "--workers", type=int, default=4, help="worker threads (default: 4)"
        )
        sub_parser.add_argument(
            "--queue-depth",
            type=int,
            default=64,
            help="bounded admission queue depth (default: 64)",
        )
        sub_parser.add_argument(
            "--timeout",
            type=float,
            default=5.0,
            help="per-query deadline in seconds (default: 5.0)",
        )
        sub_parser.add_argument(
            "--nprobe",
            type=int,
            default=None,
            help="ANN cells probed per leaf for shot queries "
            "(default: exact scans)",
        )
        sub_parser.add_argument(
            "--rerank-k",
            type=int,
            default=None,
            help="exact re-rank tail used with --nprobe "
            "(default: re-rank every survivor)",
        )

    serve = sub.add_parser(
        "serve",
        help="stand up the query server and run a serving health check",
        description=(
            "Load an ingested database, start the in-process QueryServer, "
            "answer a cold and a warm canary query, and print the metrics "
            "dump (generation, cache hit rate, latency percentiles)."
        ),
    )
    _serving_args(serve)
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="serve JSON over HTTP on this port (0 = ephemeral) instead "
        "of running the canary check",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition the catalog into N shard worker processes and "
        "answer via scatter-gather (requires --http)",
    )
    serve.add_argument(
        "--shards-dir",
        default=None,
        metavar="DIR",
        help="shard directory to serve from (built on demand from "
        "--db-dir when no manifest exists yet)",
    )
    serve.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON access-log line per HTTP request "
        "on stderr (trace id, path, status, shard fan-out, latency)",
    )
    _trace_arg(serve)
    serve.set_defaults(func=_cmd_serve)

    shard = sub.add_parser(
        "shard",
        help="partition a database into shared-nothing shard directories",
        description=(
            "Build or inspect the shard layout used by "
            "'classminer serve --http --shards'.  Each shard directory is "
            "a complete out-of-core database holding a hash-partitioned "
            "subset of the videos, plus a manifest.json describing the "
            "full-corpus routing tree."
        ),
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)
    shard_build = shard_sub.add_parser(
        "build", help="partition --db-dir into N shard directories"
    )
    shard_build.add_argument("--db-dir", required=True, help="source database")
    shard_build.add_argument("--out", required=True, help="output directory")
    shard_build.add_argument(
        "--num", type=int, required=True, help="number of shards"
    )
    shard_build.set_defaults(func=_cmd_shard)
    shard_inspect = shard_sub.add_parser(
        "inspect", help="describe an existing shard manifest"
    )
    shard_inspect.add_argument("--dir", required=True, help="shard directory")
    shard_inspect.set_defaults(func=_cmd_shard)
    shard_restart = shard_sub.add_parser(
        "restart",
        help="restart shard workers behind a running gateway",
        description=(
            "Cycle shard worker processes through the gateway's "
            "/admin/restart endpoint.  --rolling drains and restarts "
            "workers one at a time, waiting for each replacement to "
            "answer pings before moving on, so in-flight and new "
            "queries keep completing throughout."
        ),
    )
    shard_restart.add_argument(
        "--url", required=True, help="gateway base URL, e.g. http://host:port"
    )
    shard_restart.add_argument(
        "--rolling",
        action="store_true",
        help="restart every shard, one at a time",
    )
    shard_restart.add_argument(
        "--shard", type=int, default=None, help="restart one shard by id"
    )
    shard_restart.add_argument(
        "--hard",
        action="store_true",
        help="skip the drain and terminate workers outright",
    )
    shard_restart.add_argument(
        "--token", default=None, help="X-Auth-Token for the gateway"
    )
    shard_restart.set_defaults(func=_cmd_shard)

    health = sub.add_parser(
        "health",
        help="liveness/readiness/degradation report for a database dir",
        description=(
            "Load an ingested database, start the query server, and print "
            "the combined health report: worker liveness, snapshot "
            "readiness, circuit-breaker states, degraded corpus entries "
            "and quarantine history.  Exit code 0 ok, 1 degraded, 2 down."
        ),
    )
    _serving_args(health)
    health.add_argument(
        "--url",
        default=None,
        help="probe a running HTTP gateway (e.g. http://127.0.0.1:8080) "
        "instead of standing up an in-process server",
    )
    health.set_defaults(func=_cmd_health)

    loadtest = sub.add_parser(
        "loadtest",
        help="drive a closed-loop mixed query load and report latency/QPS",
        description=(
            "Replay a deterministic mix of shot, flat-baseline, scene and "
            "event queries against the query server from N closed-loop "
            "clients, then report sustained QPS, cache hit rate and "
            "client-side latency percentiles."
        ),
    )
    _serving_args(loadtest)
    loadtest.add_argument(
        "--clients", type=int, default=4, help="concurrent clients (default: 4)"
    )
    loadtest.add_argument(
        "--duration",
        type=float,
        default=2.0,
        help="run length in seconds (default: 2.0)",
    )
    loadtest.add_argument("--k", type=int, default=5, help="hits per query")
    loadtest.add_argument(
        "--unique-fraction",
        type=float,
        default=0.25,
        help="fraction of queries perturbed to defeat the cache (default: 0.25)",
    )
    loadtest.add_argument("--seed", type=int, default=0, help="workload seed")
    loadtest.add_argument(
        "--http",
        default=None,
        metavar="URL",
        help="drive a running HTTP gateway over real sockets instead of "
        "the in-process server",
    )
    loadtest.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="X-Deadline-Ms to send with every HTTP request",
    )
    loadtest.add_argument(
        "--token", default=None, help="X-Auth-Token for scoped HTTP access"
    )
    loadtest.add_argument(
        "-o", "--output", default=None, help="also write the report to a file"
    )
    _trace_arg(loadtest)
    loadtest.set_defaults(func=_cmd_loadtest)

    obs = sub.add_parser(
        "obs",
        help="observability: metrics dump/export and trace rendering",
        description=(
            "Inspect the process-wide metrics registry (dump/export) or "
            "render a JSONL trace file written by a --trace run as a "
            "flame-style tree."
        ),
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_dump = obs_sub.add_parser(
        "dump", help="flat name=value snapshot of the metrics registry"
    )
    obs_dump.set_defaults(func=_cmd_obs_dump)
    obs_export = obs_sub.add_parser(
        "export", help="export registry metrics as Prometheus text or JSON"
    )
    obs_export.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="exposition format (default: prometheus)",
    )
    obs_export.add_argument(
        "-o", "--output", default=None, help="write to a file instead of stdout"
    )
    obs_export.set_defaults(func=_cmd_obs_export)
    obs_render = obs_sub.add_parser(
        "render", help="render a --trace JSONL file as a span tree"
    )
    obs_render.add_argument("trace_file")
    obs_render.add_argument(
        "--max-spans",
        type=int,
        default=200,
        help="elide children beyond this many rendered spans (default: 200)",
    )
    obs_render.set_defaults(func=_cmd_obs_render)
    obs_slow = obs_sub.add_parser(
        "slow",
        help="show the slow-query log (this process, or a gateway via --url)",
    )
    obs_slow.add_argument(
        "--url",
        default=None,
        help="fetch GET /debug/slow from a running gateway "
        "(e.g. http://127.0.0.1:8080) instead of the local process",
    )
    obs_slow.set_defaults(func=_cmd_obs_slow)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
