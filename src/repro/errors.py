"""Exception hierarchy for the ClassMiner reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.

The serving layer adds two members: :class:`ServingError` for failures
inside the concurrent query-serving runtime (bad requests, deadline
overruns, a stopped server), and its subclass :class:`OverloadedError`,
raised at admission time when the server's bounded queue is full so
callers can shed or retry instead of queueing without bound.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class VideoError(ReproError):
    """Problems with video streams, frames, or the synthetic generator."""


class AudioError(ReproError):
    """Problems with waveforms, audio features, or speaker analysis."""


class VisionError(ReproError):
    """Problems inside the visual-feature substrate."""


class MiningError(ReproError):
    """Problems while mining content structure (shots/groups/scenes)."""


class EventMiningError(ReproError):
    """Problems while classifying scene events."""


class DatabaseError(ReproError):
    """Problems in the hierarchical video database layer."""


class AccessDeniedError(DatabaseError):
    """An access-control rule denied the requested operation."""


class IngestError(ReproError):
    """Problems in the corpus ingestion runtime (jobs, cache, executor)."""


class ServingError(ReproError):
    """Problems in the concurrent query-serving runtime."""


class OverloadedError(ServingError):
    """The server's bounded admission queue rejected the request."""


class ObservabilityError(ReproError):
    """Problems in the observability layer (tracing, metrics, export)."""


class SkimmingError(ReproError):
    """Problems while building or traversing scalable skims."""


class EvaluationError(ReproError):
    """Problems while computing evaluation metrics."""
