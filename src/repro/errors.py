"""Exception hierarchy for the ClassMiner reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  The taxonomy
fans out by subsystem:

``ReproError``
    ├── ``VideoError`` / ``AudioError`` / ``VisionError`` — substrate
    │   failures (streams, waveforms, visual features).
    ├── ``MiningError`` / ``EventMiningError`` — the Sec. 3/4 pipeline.
    ├── ``DatabaseError``
    │   ├── ``AccessDeniedError`` — an access rule denied the request.
    │   └── ``StorageError`` — the durable storage subsystem (SQL
    │       catalog schema/locking, feature-store bookkeeping).
    ├── ``IngestError`` — the corpus ingestion runtime.
    │   └── ``IntegrityError`` — a stored artifact failed checksum
    │       verification (corrupt on disk; quarantined by the store).
    ├── ``ServingError`` — the concurrent query-serving runtime.
    │   ├── ``OverloadedError`` — bounded admission queue full; shed
    │   │   and retry instead of queueing without bound.
    │   ├── ``CircuitOpenError`` — a circuit breaker is open; the
    │   │   protected operation was not attempted (fail fast, retry
    │   │   after the breaker's reset timeout).
    │   ├── ``RpcTransportError`` — a shard RPC failed in transit
    │   │   (reset, refused connect, truncated frame).  Transient and
    │   │   retry-safe: every shard op is idempotent.
    │   │   ├── ``FrameCorruptError`` — a frame failed its CRC32
    │   │   │   checksum (corruption detected, never decoded).
    │   │   └── ``WorkerDrainingError`` — the worker is draining and
    │   │       refused new work; retry lands on its replacement.
    │   ├── ``DeadlineExpiredError`` — the query's deadline ran out
    │   │   before (or during) a shard call.  *Not* transient: there
    │   │   is no budget left to retry with.
    │   └── ``NoShardAnsweredError`` — a scatter phase got no response
    │       from any shard; the coordinator re-executes the query once
    │       before letting it propagate.
    ├── ``FaultInjectedError`` — raised only by an armed
    │   :class:`repro.resilience.FaultPlan`; production code never
    │   raises it, but must contain it like any other failure.
    ├── ``ObservabilityError`` / ``SkimmingError`` / ``EvaluationError``
    └── …

:class:`DegradedResultWarning` is a *warning*, not an error: it is
emitted (via :mod:`warnings`) when a pipeline stage fails and the miner
degrades to a partial result — structure-only events, visual-only rules
— instead of raising.  Callers that must not accept partial results can
promote it with ``warnings.simplefilter("error", DegradedResultWarning)``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class VideoError(ReproError):
    """Problems with video streams, frames, or the synthetic generator."""


class AudioError(ReproError):
    """Problems with waveforms, audio features, or speaker analysis."""


class VisionError(ReproError):
    """Problems inside the visual-feature substrate."""


class MiningError(ReproError):
    """Problems while mining content structure (shots/groups/scenes)."""


class EventMiningError(ReproError):
    """Problems while classifying scene events."""


class DatabaseError(ReproError):
    """Problems in the hierarchical video database layer."""


class AccessDeniedError(DatabaseError):
    """An access-control rule denied the requested operation."""


class StorageError(DatabaseError):
    """Problems in the durable storage subsystem (SQL catalog, feature store).

    Raised for schema-version mismatches, a catalog that stays locked
    past the retry budget, or missing feature blocks.  Corrupt feature
    blocks (truncated or checksum-failing mmaps) raise
    :class:`IntegrityError` instead, matching the artifact store.
    """


class IngestError(ReproError):
    """Problems in the corpus ingestion runtime (jobs, cache, executor)."""


class IntegrityError(IngestError):
    """A stored artifact's content does not match its checksums.

    Raised on read by :class:`~repro.ingest.artifacts.ArtifactStore`
    after the corrupt entry has been quarantined; the next ingest run
    re-mines the affected video transparently.
    """


class ServingError(ReproError):
    """Problems in the concurrent query-serving runtime."""


class OverloadedError(ServingError):
    """The server's bounded admission queue rejected the request."""


class CircuitOpenError(ServingError):
    """A circuit breaker is open: the protected call was not attempted.

    Carries no partial result — the caller should fall back to the last
    good value (the serving layer keeps answering from the previous
    snapshot generation) or retry after the breaker's reset timeout.
    """


class RpcTransportError(ServingError):
    """A shard RPC failed in transit: reset, refused connect, or a
    connection that closed mid-frame.

    Transient by contract — every shard op is idempotent (reads,
    ``reload``, ``drain``), so the coordinator retries these within the
    query's remaining deadline before charging the shard's breaker.
    """


class FrameCorruptError(RpcTransportError):
    """A received frame failed its CRC32 checksum.

    The payload is never JSON-decoded: corruption is detected at the
    framing layer and the connection is torn down so the retry starts
    on a clean one.
    """


class WorkerDrainingError(RpcTransportError):
    """The shard worker is draining and refused new work.

    Raised from the typed ``draining`` error response; retrying is safe
    and lands on the respawned replacement once the cluster cycles it.
    """


class DeadlineExpiredError(ServingError):
    """The query deadline ran out before (or during) a shard call.

    Deliberately *not* an :class:`RpcTransportError`: with no budget
    left there is nothing to retry with, so the coordinator fails the
    shard immediately and the gateway maps it to HTTP 504.
    """


class NoShardAnsweredError(ServingError):
    """A scatter phase got no response from any shard.

    A multi-phase query can straddle a rolling restart — the first
    phase answered by a shard that drained before the second phase ran,
    while the restarted shard is healthy again by then.  The
    coordinator therefore re-executes the query once (deadline
    permitting) before letting this propagate; a genuine full outage
    fails identically on the second pass.
    """


class FaultInjectedError(ReproError):
    """An armed fault plan fired an error fault at an instrumented point.

    Only :mod:`repro.resilience.faults` raises this; it exists so chaos
    tests can tell injected failures from organic ones while the rest of
    the system handles both identically.
    """


class DegradedResultWarning(UserWarning):
    """A pipeline stage failed and the result degraded instead of raising.

    The warning message names the failed stage; the produced
    :class:`~repro.core.pipeline.ClassMinerResult` lists it in
    ``degraded_stages``.
    """


class ObservabilityError(ReproError):
    """Problems in the observability layer (tracing, metrics, export)."""


class SkimmingError(ReproError):
    """Problems while building or traversing scalable skims."""


class EvaluationError(ReproError):
    """Problems while computing evaluation metrics."""
