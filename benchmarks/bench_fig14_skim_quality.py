"""Fig. 14 — scalable skimming quality scores per level.

Five simulated viewers score every skim level on the paper's three
questions (topic, scenario, conciseness), averaged across the corpus.
Asserts the figure's shape: coverage falls toward level 4, conciseness
falls toward level 1, and level 3 is the best overall compromise.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_result
from repro.evaluation.report import render_table
from repro.skimming import build_skim, evaluate_all_levels, panel_scores


def test_fig14_skim_quality(benchmark, corpus_runs, results_dir):
    video, run = corpus_runs[0]
    skim = build_skim(run.structure, run.events.events)
    benchmark(panel_scores, skim, video.truth, 3)

    # Average the three questions per level over the whole corpus.
    sums = {level: np.zeros(3) for level in (1, 2, 3, 4)}
    for video, run in corpus_runs:
        skim = build_skim(run.structure, run.events.events)
        for scores in evaluate_all_levels(skim, video.truth):
            sums[scores.level] += np.array(scores.as_tuple())
    count = len(corpus_runs)
    averages = {level: tuple(vec / count) for level, vec in sums.items()}

    rows = [
        [level, *averages[level], float(np.mean(averages[level]))]
        for level in (1, 2, 3, 4)
    ]
    text = render_table(
        ["level", "Q1 topic", "Q2 scenario", "Q3 concise", "overall"],
        rows,
        title=(
            "Fig. 14 — skim quality, 5 simulated viewers x 5 videos "
            "(paper: coverage rises toward level 1, conciseness toward "
            "level 4, level 3 optimal)"
        ),
    )
    save_result(results_dir, "fig14_skim_quality", text)

    q1 = {level: averages[level][0] for level in averages}
    q2 = {level: averages[level][1] for level in averages}
    q3 = {level: averages[level][2] for level in averages}
    overall = {level: float(np.mean(averages[level])) for level in averages}

    # Coverage shrinks as the skim gets coarser...
    assert q1[1] >= q1[4]
    assert q2[1] > q2[4]
    # ...while conciseness improves...
    assert q3[4] > q3[1]
    # ...and a middle level wins overall (the paper finds level 3).
    assert max(overall, key=overall.get) in (2, 3)
