"""ANN tier benchmark: recall@10 and leaf-scan speedup vs exact.

Builds one synthetic corpus, takes the exact hierarchical top-10 as
ground truth, then sweeps ``nprobe`` with the default re-rank tail and
measures

* **recall@10** per knob (fraction of exact top-10 ids recovered),
* **bit-identity** at ``nprobe`` covering every cell (the contract the
  unit tests pin — re-checked here at bench scale),
* the **leaf-scan speedup** on the largest leaf: exact
  ``feature_similarity_batch`` over the full block vs the quantized
  scan + exact re-rank tail at the default knob.

Acceptance gates (ISSUE criteria): recall@10 >= 0.95 at the default
``(nprobe, rerank_k)`` and >= 1.5x leaf-scan speedup.  Both are
skipped — with honest numbers still recorded in
``benchmarks/results/BENCH_ann.json`` — only when the corpus is
degenerate for pruning (leaves too small for the re-rank tail to cut
anything).
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, save_result
from repro.ann.index import resolve_ann
from repro.ann.quantizer import DEFAULT_ANN_CELLS
from repro.ann.index import DEFAULT_NPROBE, DEFAULT_RERANK_K
from repro.database.index import feature_similarity_batch
from repro.database.query import search_hierarchical
from repro.evaluation.report import render_table
from repro.storage.synthetic import build_synthetic_database

#: Corpus size (videos x shots/video).
VIDEOS, SHOTS = 1000, 12
#: Probes measured (corpus-near perturbations + unseen uniform).
NEAR_PROBES, UNSEEN_PROBES = 40, 8
#: The nprobe sweep; every point uses the default re-rank tail.
NPROBE_SWEEP = (1, 2, 4, 8, 16)
#: An nprobe no leaf's cell count can reach: the exactness regime.
NPROBE_ALL = 1_000_000

#: ISSUE acceptance gates.
MIN_RECALL_AT_10 = 0.95
MIN_LEAF_SPEEDUP = 1.5


def _hit_ids(result):
    return [(h.entry.video_title, h.entry.shot_id) for h in result.hits]


def _leaves(node):
    if node.is_leaf:
        yield node
        return
    for child in node.children:
        yield from _leaves(child)


def _probe_pool(database, seed=7):
    rng = np.random.default_rng(seed)
    entries = database.flat_index.entries
    width = entries[0].features.shape[0]
    pool = [
        np.clip(
            entries[int(rng.integers(0, len(entries)))].features
            + rng.normal(0.0, 0.01, width),
            0.0,
            None,
        )
        for _ in range(NEAR_PROBES)
    ]
    pool.extend(rng.random(width) for _ in range(UNSEEN_PROBES))
    return pool


def _leaf_scan_speedup(node, probes, repeats=20, best_of=3):
    """Exact full-block scan vs quantized scan + exact tail, best-of."""
    _entries, matrix = node.leaf.fallback_block()
    ann, degraded = resolve_ann(node)
    assert ann is not None and not degraded

    def exact_round():
        start = time.perf_counter()
        for _ in range(repeats):
            for probe in probes:
                feature_similarity_batch(probe, matrix, dims=node.dims)
        return time.perf_counter() - start

    def ann_round():
        start = time.perf_counter()
        for _ in range(repeats):
            for probe in probes:
                rows, _evals = ann.search_rows(
                    probe,
                    nprobe=DEFAULT_NPROBE,
                    rerank_k=DEFAULT_RERANK_K,
                    mode="all",
                )
                feature_similarity_batch(probe, matrix[rows], dims=node.dims)
        return time.perf_counter() - start

    exact_s = min(exact_round() for _ in range(best_of))
    ann_s = min(ann_round() for _ in range(best_of))
    return exact_s / max(ann_s, 1e-9), exact_s, ann_s


def test_ann_recall_and_speedup(results_dir):
    database = build_synthetic_database(
        videos=VIDEOS, shots_per_video=SHOTS, seed=3
    )
    root = database.index_root
    probes = _probe_pool(database)
    truth = [_hit_ids(search_hierarchical(root, p, k=10)) for p in probes]

    # 1. Bit-identity with no cell pruned and no re-rank cap.
    identical = all(
        _hit_ids(search_hierarchical(root, p, k=10, nprobe=NPROBE_ALL))
        == ids
        for p, ids in zip(probes, truth)
    )
    assert identical

    # 2. Recall sweep at the default re-rank tail.
    sweep = []
    for nprobe in NPROBE_SWEEP:
        recalls = []
        approx_evals = 0
        reranked = 0
        for probe, ids in zip(probes, truth):
            result = search_hierarchical(
                root, probe, k=10, nprobe=nprobe, rerank_k=DEFAULT_RERANK_K
            )
            got = set(_hit_ids(result))
            recalls.append(len(got & set(ids)) / max(len(ids), 1))
            approx_evals += result.stats.approx_comparisons
            reranked += result.stats.reranked
        sweep.append(
            {
                "nprobe": nprobe,
                "rerank_k": DEFAULT_RERANK_K,
                "recall_at_10": float(np.mean(recalls)),
                "approx_evals_per_query": approx_evals / len(probes),
                "reranked_per_query": reranked / len(probes),
            }
        )
    by_nprobe = {row["nprobe"]: row for row in sweep}
    default_recall = by_nprobe[DEFAULT_NPROBE]["recall_at_10"]

    # 3. Leaf-scan speedup on the largest leaf at the default knob.
    largest = max(_leaves(root), key=lambda node: len(node.leaf))
    leaf_rows = len(largest.leaf)
    speedup, exact_s, ann_s = _leaf_scan_speedup(largest, probes[:16])

    # The gates assume the tail can actually prune; a corpus whose
    # leaves barely exceed the tail is degenerate for this measurement.
    degenerate = leaf_rows < 4 * DEFAULT_RERANK_K
    gates = (
        f"skipped (degenerate corpus: largest leaf {leaf_rows} rows "
        f"< {4 * DEFAULT_RERANK_K})"
        if degenerate
        else "asserted"
    )
    if not degenerate:
        assert default_recall >= MIN_RECALL_AT_10, by_nprobe
        assert speedup >= MIN_LEAF_SPEEDUP, (speedup, exact_s, ann_s)

    rows = [
        [
            str(r["nprobe"]),
            f"{r['recall_at_10']:.3f}",
            f"{r['approx_evals_per_query']:.0f}",
            f"{r['reranked_per_query']:.0f}",
        ]
        for r in sweep
    ]
    text = render_table(
        ["nprobe", "recall@10", "uint8 evals/q", "reranked/q"],
        rows,
        title=(
            f"ANN tier, {VIDEOS * SHOTS} shots, {DEFAULT_ANN_CELLS} cells, "
            f"rerank_k={DEFAULT_RERANK_K}: leaf-scan speedup "
            f"{speedup:.2f}x on {leaf_rows}-row leaf (gates {gates})"
        ),
    )
    save_result(results_dir, "ann", text)
    (RESULTS_DIR / "BENCH_ann.json").write_text(
        json.dumps(
            {
                "videos": VIDEOS,
                "shots": VIDEOS * SHOTS,
                "cells": DEFAULT_ANN_CELLS,
                "default_nprobe": DEFAULT_NPROBE,
                "default_rerank_k": DEFAULT_RERANK_K,
                "probes": len(probes),
                "nprobe_all_identical": identical,
                "recall_sweep": sweep,
                "recall_at_default": default_recall,
                "min_recall_at_10": MIN_RECALL_AT_10,
                "largest_leaf_rows": leaf_rows,
                "leaf_scan_speedup": speedup,
                "leaf_scan_exact_seconds": exact_s,
                "leaf_scan_ann_seconds": ann_s,
                "min_leaf_speedup": MIN_LEAF_SPEEDUP,
                "gates": gates,
            },
            indent=2,
        )
        + "\n"
    )
