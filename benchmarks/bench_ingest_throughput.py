"""Ingest throughput: cold vs warm corpus ingest at 1 and 2 workers.

Each configuration ingests the five-title corpus into a fresh database
directory twice.  The cold run renders, mines and serialises every
title; the warm run must be satisfied entirely from the artifact cache
and come back at least five times faster.  The rendered table lands in
``benchmarks/results/ingest_throughput.txt``.
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_result
from repro.evaluation.report import render_table
from repro.ingest.runner import ingest_corpus, load_database

TITLES = ["corpus"]
MIN_WARM_SPEEDUP = 5.0


def _timed_ingest(db_dir, workers: int):
    start = time.perf_counter()
    report = ingest_corpus(TITLES, db_dir, workers=workers)
    return report, time.perf_counter() - start


def test_ingest_throughput(benchmark, results_dir, tmp_path_factory):
    rows = []
    warm_dir = None
    for workers in (1, 2):
        db_dir = tmp_path_factory.mktemp(f"ingest-bench-w{workers}")
        cold, cold_s = _timed_ingest(db_dir, workers)
        warm, warm_s = _timed_ingest(db_dir, workers)
        speedup = cold_s / max(warm_s, 1e-9)

        assert cold.ok and warm.ok
        assert len(cold.mined) == len(cold.outcomes)
        assert len(warm.cached) == len(warm.outcomes)
        assert speedup >= MIN_WARM_SPEEDUP

        database = load_database(db_dir)
        rows.append(
            [
                workers,
                f"{cold_s:.2f}",
                f"{warm_s:.2f}",
                f"{speedup:.1f}x",
                len(cold.mined),
                len(warm.cached),
                database.shot_count,
            ]
        )
        warm_dir = db_dir

    # Benchmark the steady state the cache buys: a fully warm re-ingest.
    benchmark.pedantic(
        lambda: ingest_corpus(TITLES, warm_dir, workers=1), rounds=1, iterations=1
    )

    text = render_table(
        [
            "workers",
            "cold s",
            "warm s",
            "speedup",
            "mined",
            "cached",
            "shots indexed",
        ],
        rows,
        title="Corpus ingest throughput (cold vs warm)",
    )
    save_result(results_dir, "ingest_throughput", text)
