"""Storage backend benchmark: SQL catalog + mmap blocks vs JSON.

Persists one synthetic corpus through both backends and measures, in
*fresh subprocesses* (so page cache warm-up, lazy imports and peak RSS
are attributed honestly), the three acceptance criteria of the durable
storage subsystem:

1. cold start — opening the persisted corpus through to the first
   answered query, in a process that has never touched the files —
   must be at least :data:`MIN_COLD_SPEEDUP` times faster on the SQL
   catalog than on the parse-everything JSON path;
2. peak RSS of the out-of-core reader must stay roughly flat as the
   corpus grows, while the in-RAM reader's grows with corpus size;
3. the hierarchical query results must be exactly equal across
   backends (same hits, same scores).

Sustained hierarchical QPS is reported for both backends.  The machine
readable summary lands in ``benchmarks/results/BENCH_storage.json`` and
the rendered table in ``benchmarks/results/storage.txt``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from benchmarks.conftest import RESULTS_DIR, save_result
from repro.evaluation.report import render_table
from repro.storage import build_synthetic_database, save_database

#: Required cold-start advantage of the SQL catalog (ISSUE criterion).
MIN_COLD_SPEEDUP = 10.0

#: Corpus sizes (videos) used for the RSS-vs-size comparison.
SMALL, LARGE = 200, 600

_RUNNER = """\
import json, resource, sys, time
from pathlib import Path

import numpy as np


def peak_rss_kb():
    # ru_maxrss inherits the parent's fork-time watermark on Linux,
    # which would charge the benchmark harness's corpus build to this
    # process; VmHWM is reset on exec and measures only our own peak.
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

from repro.database.catalog import VideoDatabase
from repro.storage import SQLVideoDatabase

backend, db_dir, probes_path, out_path = sys.argv[1:5]
probes = np.load(probes_path)

# Cold start: persisted corpus -> first answered query, in a process
# that has never touched the files (imports are backend-independent
# and excluded, so the ratio measures storage, not the interpreter).
start = time.perf_counter()
if backend == "sqlite":
    database = SQLVideoDatabase.open(db_dir)
else:
    database = VideoDatabase.load(Path(db_dir) / "database.json")
database.search(probes[0], k=5)  # first answer: builds the index tree
cold_seconds = time.perf_counter() - start

start = time.perf_counter()
queries = 0
for _ in range(3):
    for probe in probes:
        database.search(probe, k=5)
        queries += 1
qps = queries / (time.perf_counter() - start)

hits = [
    [
        [h.entry.video_title, h.entry.shot_id, h.score]
        for h in database.search(probe, k=5).hits
    ]
    for probe in probes
]
payload = {
    "cold_seconds": cold_seconds,
    "qps": qps,
    "rss_kb": peak_rss_kb(),
    "hits": hits,
}
with open(out_path, "w") as handle:
    json.dump(payload, handle)
"""


def _measure(runner: Path, backend: str, db_dir: Path, probes: Path) -> dict:
    """One cold-started backend run in its own interpreter."""
    out = db_dir / f"measure-{backend}.json"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    subprocess.run(
        [sys.executable, str(runner), backend, str(db_dir), str(probes), str(out)],
        env=env,
        check=True,
        timeout=600,
    )
    return json.loads(out.read_text())


def _prepare(tmp: Path, videos: int) -> tuple[Path, Path]:
    """Persist one synthetic corpus via both backends; returns (dir, probes)."""
    db_dir = tmp / f"corpus-{videos}"
    db_dir.mkdir()
    database = build_synthetic_database(videos=videos, shots_per_video=12, seed=0)
    database.save(db_dir / "database.json")
    save_database(database, db_dir)
    entries = database.flat_index.entries
    picks = np.linspace(0, len(entries) - 1, 8).astype(int)
    probes = np.stack([entries[i].features for i in picks])
    probes_path = db_dir / "probes.npy"
    np.save(probes_path, probes)
    return db_dir, probes_path


def test_storage_backends(tmp_path, results_dir):
    runner = tmp_path / "runner.py"
    runner.write_text(_RUNNER)

    measures: dict[int, dict[str, dict]] = {}
    for videos in (SMALL, LARGE):
        db_dir, probes = _prepare(tmp_path, videos)
        measures[videos] = {
            backend: _measure(runner, backend, db_dir, probes)
            for backend in ("json", "sqlite")
        }

    # 1. Cold start: SQL catalog must be >= MIN_COLD_SPEEDUP faster.
    large = measures[LARGE]
    speedup = large["json"]["cold_seconds"] / max(
        large["sqlite"]["cold_seconds"], 1e-9
    )
    assert speedup >= MIN_COLD_SPEEDUP

    # 2. Query results exactly equal across backends, both sizes.
    for videos, pair in measures.items():
        assert pair["json"]["hits"] == pair["sqlite"]["hits"], videos

    # 3. RSS: the out-of-core reader grows far less with corpus size.
    sql_growth = measures[LARGE]["sqlite"]["rss_kb"] - measures[SMALL]["sqlite"]["rss_kb"]
    json_growth = measures[LARGE]["json"]["rss_kb"] - measures[SMALL]["json"]["rss_kb"]
    assert measures[LARGE]["sqlite"]["rss_kb"] < measures[LARGE]["json"]["rss_kb"]
    assert sql_growth * 2 < json_growth

    rows = [
        [
            videos,
            backend,
            f"{m['cold_seconds'] * 1e3:.1f}",
            f"{m['rss_kb'] / 1024:.0f}",
            f"{m['qps']:.0f}",
        ]
        for videos, pair in sorted(measures.items())
        for backend, m in pair.items()
    ]
    text = render_table(
        ["videos", "backend", "cold start ms", "peak RSS MiB", "hier QPS"],
        rows,
        title=f"Storage backends (SQL cold start {speedup:.0f}x faster)",
    )
    save_result(results_dir, "storage", text)
    (RESULTS_DIR / "BENCH_storage.json").write_text(
        json.dumps(
            {
                "min_cold_speedup": MIN_COLD_SPEEDUP,
                "cold_speedup": speedup,
                "results_equal": True,
                "sizes": {
                    str(videos): {
                        backend: {
                            key: m[key] for key in ("cold_seconds", "qps", "rss_kb")
                        }
                        for backend, m in pair.items()
                    }
                    for videos, pair in measures.items()
                },
            },
            indent=2,
        )
        + "\n"
    )
