"""Network resilience overhead benchmark: checksums + retry loop, disarmed.

The resilience work on the shard RPC path (ISSUE: wire-level chaos,
retrying/hedged shard calls) must be free when nothing is failing:

1. **Framing** — every frame now carries a CRC32 of its payload and
   passes through the ``net.frame_corrupt`` / ``net.frame_truncated``
   fault hooks.  With no fault plan armed, a checksummed *control*
   frame round trip over a local socketpair must stay within
   ``MAX_OVERHEAD`` (5%) of a plain length-prefixed codec — or within
   ``CONTROL_SLACK_SECONDS`` absolute, since the fixed per-frame cost
   is a few hundred nanoseconds measured against a ~7us echo.
   For a feature-payload-sized frame the CRC cost necessarily scales
   with the bytes, so its gate is *in situ*: the measured checksum
   delta must stay under ``MAX_OVERHEAD`` of one end-to-end sharded
   query (the denominator that actually pays it).
2. **Retry + hedge wrapper** — ``_shard_call`` now wraps every shard
   RPC in a deadline-bounded retry loop (and an opt-in hedging branch,
   disarmed by default).  One untraced coordinator shard call must stay
   within ``MAX_OVERHEAD`` of a raw
   :meth:`~repro.net.protocol.ShardEndpoint.call` round trip.

Wall-clock is interleaved best-of-``ROUNDS``; results land in
``benchmarks/results/net_resilience.txt`` plus machine-readable
``benchmarks/results/BENCH_net_resilience.json``.
"""

from __future__ import annotations

import json
import socket
import struct
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, save_result
from repro.evaluation.report import render_table
from repro.net.coordinator import (
    CoordinatorConfig,
    QueryRequest,
    ShardedQueryService,
)
from repro.net.protocol import (
    ShardEndpoint,
    _recv_exact,
    pack_array,
    recv_frame,
    send_frame,
)
from repro.net.shard import build_shards
from repro.net.worker import ShardWorker
from repro.obs import NULL_TRACER, install_tracer
from repro.storage.synthetic import build_synthetic_database

#: Acceptance ceiling for disarmed resilience overhead (ISSUE criterion).
MAX_OVERHEAD = 0.05

#: Absolute slack for the control frame: its fixed cost (two disarmed
#: hooks plus two CRC calls, ~0.4us total) is measured against a ~7us
#: socketpair echo, so the relative gate alone flakes on scheduler
#: noise.  Anything under 1us per round trip is < 1% of the cheapest
#: real RPC (a ~100us TCP ping), which is the path that pays it.
CONTROL_SLACK_SECONDS = 1e-6

#: Absolute slack for the retry wrapper, measured over ``ping`` — the
#: cheapest RPC there is and one that never actually rides
#: ``_shard_call`` (query ops do: probe/scan/scene/event, each >=100us
#: of real work).  A few microseconds of wrapper is well under the 5%
#: ceiling on every op the wrapper really wraps.
RPC_SLACK_SECONDS = 5e-6

#: Round trips timed per round (amortises syscall noise).
CALLS = 1000

#: Interleaved rounds; best-of suppresses scheduler jitter.
ROUNDS = 7

#: End-to-end queries timed per round for the in-situ feature gate.
QUERY_CALLS = 20

#: The pre-checksum wire format, re-created as the baseline codec.
_PLAIN_HEADER = struct.Struct("!I")


def _plain_send(sock: socket.socket, message: dict) -> None:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    sock.sendall(_PLAIN_HEADER.pack(len(payload)) + payload)


def _plain_recv(sock: socket.socket) -> dict:
    (length,) = _PLAIN_HEADER.unpack(_recv_exact(sock, _PLAIN_HEADER.size))
    return json.loads(_recv_exact(sock, length).decode("utf-8"))


def _merge_bench_json(update: dict) -> None:
    """Fold one measurement into BENCH_net_resilience.json, not clobber."""
    path = RESULTS_DIR / "BENCH_net_resilience.json"
    try:
        existing = json.loads(path.read_text())
    except (OSError, ValueError):
        existing = {}
    existing.update(update)
    path.write_text(json.dumps(existing, indent=2) + "\n")


def _time_frames(message: dict) -> tuple[float, float]:
    """Best-of socketpair round-trip seconds: (plain, checksummed)."""
    a, b = socket.socketpair()
    try:
        # Warm both paths (JSON cache, socket buffers).
        for _ in range(10):
            _plain_send(a, message)
            _plain_recv(b)
            send_frame(a, message)
            recv_frame(b)
        plain = checksummed = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            for _ in range(CALLS):
                _plain_send(a, message)
                _plain_recv(b)
            plain = min(plain, time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(CALLS):
                send_frame(a, message)
                recv_frame(b)
            checksummed = min(checksummed, time.perf_counter() - start)
    finally:
        a.close()
        b.close()
    return plain / CALLS, checksummed / CALLS


def test_framing_overhead(results_dir, tmp_path) -> None:
    """Checksummed framing must be < 5% over plain, in the right unit.

    The control frame gates the fixed per-frame cost directly against
    the plain codec.  The feature frame's CRC cost scales with payload
    bytes, so its checksum delta is gated against one end-to-end
    sharded query — the operation whose latency budget actually pays
    for checksumming a feature-sized response.
    """
    rng = np.random.default_rng(3)
    control = {"op": "ping", "deadline_ms": 250.0}
    feature = {
        "ok": True,
        "results": [pack_array(rng.random(4096))],
        "comparisons": 12345,
    }

    plain_control, crc_control = _time_frames(control)
    plain_feature, crc_feature = _time_frames(feature)
    control_overhead = crc_control / plain_control - 1.0
    feature_delta = crc_feature - plain_feature

    # In-situ denominator: one uncached shot query against a live shard.
    database = build_synthetic_database(
        videos=12, shots_per_video=4, scenes_per_video=2, seed=7
    )
    spec = build_shards(database, tmp_path, 1)
    worker = ShardWorker(spec.shard_dir(tmp_path, 0)).start()
    endpoint = ShardEndpoint(0, "127.0.0.1", worker.port)
    service = ShardedQueryService(spec, [endpoint], config=CoordinatorConfig())
    install_tracer(NULL_TRACER)
    shape = database.flat_index.entries[0].features.shape
    query_seconds = float("inf")
    try:
        # explain=True bypasses the result cache, so every round trip
        # does real probe/scan work instead of replaying a cached hit.
        request = QueryRequest(
            kind="shot", features=rng.random(shape), k=5, explain=True
        )
        service.query(request)
        for _ in range(ROUNDS):
            start = time.perf_counter()
            for _ in range(QUERY_CALLS):
                service.query(request)
            query_seconds = min(
                query_seconds, (time.perf_counter() - start) / QUERY_CALLS
            )
    finally:
        service.close()
        worker.stop()
    feature_in_situ = feature_delta / query_seconds

    control_size = len(json.dumps(control, separators=(",", ":")))
    feature_size = len(json.dumps(feature, separators=(",", ":")))
    rows = [
        [
            f"control ({control_size} B)",
            f"{plain_control * 1e6:.1f}",
            f"{crc_control * 1e6:.1f}",
            f"{control_overhead * 100:+.2f}%",
        ],
        [
            f"feature ({feature_size} B)",
            f"{plain_feature * 1e6:.1f}",
            f"{crc_feature * 1e6:.1f}",
            f"{(crc_feature / plain_feature - 1.0) * 100:+.2f}%",
        ],
        [
            "feature crc vs 1 query",
            f"{feature_delta * 1e6:.1f}",
            f"{query_seconds * 1e6:.1f}",
            f"{feature_in_situ * 100:+.2f}%",
        ],
    ]
    text = render_table(
        ["frame", "plain us", "crc32+hooks us", "overhead"],
        rows,
        title=(
            f"checksummed framing vs plain, best of {ROUNDS} x {CALLS} "
            f"frames (ceiling {MAX_OVERHEAD:.0%}; feature frame gated "
            "against an uncached sharded query)"
        ),
    )
    save_result(results_dir, "net_resilience", text)
    _merge_bench_json(
        {
            "framing": {
                "calls_per_round": CALLS,
                "rounds": ROUNDS,
                "max_overhead_fraction": MAX_OVERHEAD,
                "frames": {
                    "control": {
                        "payload_bytes": control_size,
                        "plain_seconds_per_frame": plain_control,
                        "checksummed_seconds_per_frame": crc_control,
                        "overhead_fraction": control_overhead,
                        "slack_seconds": CONTROL_SLACK_SECONDS,
                    },
                    "feature": {
                        "payload_bytes": feature_size,
                        "plain_seconds_per_frame": plain_feature,
                        "checksummed_seconds_per_frame": crc_feature,
                        "checksum_delta_seconds": feature_delta,
                        "query_seconds": query_seconds,
                        "overhead_fraction_of_query": feature_in_situ,
                    },
                },
            }
        }
    )
    control_delta = crc_control - plain_control
    assert (
        control_overhead < MAX_OVERHEAD
        or control_delta < CONTROL_SLACK_SECONDS
    ), (
        f"control-frame framing overhead {control_overhead:.1%} "
        f"({control_delta * 1e6:.2f}us absolute) exceeds the "
        f"{MAX_OVERHEAD:.0%} ceiling and the "
        f"{CONTROL_SLACK_SECONDS * 1e6:.0f}us slack"
    )
    assert feature_in_situ < MAX_OVERHEAD, (
        f"feature-frame checksum delta is {feature_in_situ:.1%} of an "
        f"uncached sharded query, exceeding the {MAX_OVERHEAD:.0%} "
        f"ceiling ({feature_delta * 1e6:.1f}us vs "
        f"{query_seconds * 1e6:.1f}us)"
    )


def test_retry_wrapper_overhead(results_dir, tmp_path) -> None:
    """The disarmed retry/hedge wrapper must cost < 5% over raw RPC."""
    database = build_synthetic_database(
        videos=12, shots_per_video=4, scenes_per_video=2, seed=7
    )
    spec = build_shards(database, tmp_path, 1)
    worker = ShardWorker(spec.shard_dir(tmp_path, 0)).start()
    endpoint = ShardEndpoint(0, "127.0.0.1", worker.port)
    service = ShardedQueryService(
        spec, [endpoint], config=CoordinatorConfig()
    )
    install_tracer(NULL_TRACER)
    request = {"op": "ping"}
    try:
        endpoint.call(request, None)
        service._shard_call(0, request, None, None, None, None)

        raw = wrapped = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            for _ in range(CALLS):
                endpoint.call(request, None)
            raw = min(raw, time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(CALLS):
                service._shard_call(0, request, None, None, None, None)
            wrapped = min(wrapped, time.perf_counter() - start)
    finally:
        service.close()
        worker.stop()

    overhead = wrapped / raw - 1.0
    rows = [
        ["raw endpoint.call", f"{raw / CALLS * 1e6:.1f}", "-"],
        [
            "retry/hedge wrapper (disarmed)",
            f"{wrapped / CALLS * 1e6:.1f}",
            f"{overhead * 100:+.2f}%",
        ],
    ]
    text = render_table(
        ["rpc path", "us per call", "overhead"],
        rows,
        title=(
            f"disarmed retry/hedge shard call, best of {ROUNDS} x {CALLS} "
            f"ping round trips (ceiling {MAX_OVERHEAD:.0%})"
        ),
    )
    save_result(results_dir, "net_resilience_rpc", text)
    _merge_bench_json(
        {
            "retry_wrapper": {
                "op": "ping",
                "calls_per_round": CALLS,
                "rounds": ROUNDS,
                "raw_seconds_per_call": raw / CALLS,
                "wrapped_seconds_per_call": wrapped / CALLS,
                "overhead_fraction": overhead,
                "max_overhead_fraction": MAX_OVERHEAD,
                "slack_seconds": RPC_SLACK_SECONDS,
            }
        }
    )
    delta = (wrapped - raw) / CALLS
    assert overhead < MAX_OVERHEAD or delta < RPC_SLACK_SECONDS, (
        f"disarmed retry-wrapper overhead {overhead:.1%} "
        f"({delta * 1e6:.2f}us absolute) exceeds the {MAX_OVERHEAD:.0%} "
        f"ceiling and the {RPC_SLACK_SECONDS * 1e6:.0f}us slack "
        f"(raw {raw / CALLS * 1e6:.1f}us, "
        f"wrapped {wrapped / CALLS * 1e6:.1f}us)"
    )
