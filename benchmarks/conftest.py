"""Shared benchmark fixtures: the mined five-video corpus.

Mining the corpus (rendering, shot detection, cues, audio, events) is
done once per benchmark session; every bench then measures or reports
from the shared results.  Rendered tables land in
``benchmarks/results/`` so each run leaves an inspectable artefact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import ClassMiner
from repro.video.synthesis import load_corpus

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def corpus():
    """The five generated corpus videos (with audio)."""
    return load_corpus()


@pytest.fixture(scope="session")
def corpus_runs(corpus):
    """ClassMiner output for every corpus video."""
    miner = ClassMiner()
    return [(video, miner.mine(video.stream)) for video in corpus]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    """Persist one bench's rendered output."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
