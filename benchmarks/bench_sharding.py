"""Sharded scatter-gather benchmark: cold-cache sustained QPS by shard count.

Partitions one synthetic corpus into 1/2/4/8 shards, serves each layout
with real worker subprocesses, and drives a fixed budget of closed-loop
clients with cache-defeating queries (every probe unique).  The page
cache is dropped before each layout when the host allows it, so the
first touches page feature blocks in from disk — the regime where
shard processes overlap I/O.

Reported per layout: sustained QPS, client-side p50/p95 latency and
cold start (process spawn through first answered query).  An in-process
``QueryServer`` row is included as the no-network baseline.

Scaling is CPU-bound once warm, so the >= 2x @ 4 shards acceptance gate
is only asserted on hosts with at least 4 CPUs; the machine-readable
summary (``benchmarks/results/BENCH_sharding.json``) always records the
host's CPU count and the measured ratios.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import RESULTS_DIR, save_result
from repro.evaluation.report import render_table
from repro.net.cluster import ShardCluster
from repro.net.coordinator import CoordinatorConfig, ShardedQueryService
from repro.net.shard import build_shards
from repro.serving.server import QueryRequest, QueryServer, ServerConfig
from repro.storage import SQLVideoDatabase, build_synthetic_database, save_database

#: Corpus size (videos x shots/video).
VIDEOS, SHOTS = 400, 6
#: Shard counts under test.
SHARD_COUNTS = (1, 2, 4, 8)
#: Fixed total client budget (identical at every shard count).
CLIENTS = 6
#: Measured load window per layout, seconds.
DURATION = 3.0
#: Required aggregate speedup at 4 shards vs 1 (asserted on >= 4 CPUs).
MIN_SPEEDUP_4X = 2.0


def _drop_page_cache() -> bool:
    """Best-effort cold cache; needs root, returns False when denied."""
    try:
        os.sync()
        Path("/proc/sys/vm/drop_caches").write_text("3\n")
        return True
    except (OSError, PermissionError):
        return False


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    rank = max(0, int(np.ceil(q * len(sorted_values))) - 1)
    return sorted_values[min(rank, len(sorted_values) - 1)]


def _drive(query, pool, seed):
    """Closed-loop clients firing unique (uncacheable) mixed queries."""
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    stop_at = time.perf_counter() + DURATION

    def loop(worker_id):
        rng = np.random.default_rng(seed * 1009 + worker_id)
        local: list[float] = []
        while time.perf_counter() < stop_at:
            base = pool[int(rng.integers(0, len(pool)))]
            probe = base + rng.normal(0.0, 0.01, base.shape)
            kind = "shot" if rng.random() < 0.6 else "shot_flat"
            started = time.perf_counter()
            try:
                query(QueryRequest(kind=kind, features=probe, k=10))
            except Exception as exc:  # noqa: BLE001 - tallied below
                with lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
                continue
            local.append((time.perf_counter() - started) * 1000.0)
        with lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=loop, args=(i,), daemon=True)
        for i in range(CLIENTS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    ordered = sorted(latencies)
    return {
        "ok": len(latencies),
        "errors": len(errors),
        "qps": len(latencies) / wall,
        "p50_ms": _percentile(ordered, 0.5),
        "p95_ms": _percentile(ordered, 0.95),
    }


def _measure_sharded(root, spec, pool, cold_dropped):
    started = time.perf_counter()
    with ShardCluster(root, spec=spec) as cluster:
        service = ShardedQueryService(
            spec, cluster.endpoints, config=CoordinatorConfig(cache_capacity=8)
        )
        try:
            service.query(QueryRequest(kind="shot", features=pool[0], k=10))
            cold_seconds = time.perf_counter() - started
            stats = _drive(service.query, pool, seed=spec.num_shards)
        finally:
            service.close()
    return {
        "shards": spec.num_shards,
        "cold_first_answer_s": cold_seconds,
        "cold_cache": cold_dropped,
        **stats,
    }


def _measure_local(db_dir, pool, cold_dropped):
    started = time.perf_counter()
    database = SQLVideoDatabase.open(db_dir)
    with QueryServer(
        database=database,
        config=ServerConfig(workers=CLIENTS, cache_capacity=8),
    ) as server:
        server.query(QueryRequest(kind="shot", features=pool[0], k=10))
        cold_seconds = time.perf_counter() - started
        stats = _drive(server.query, pool, seed=99)
    database.close()
    return {
        "shards": 0,
        "cold_first_answer_s": cold_seconds,
        "cold_cache": cold_dropped,
        **stats,
    }


def test_sharded_scaling(tmp_path, results_dir):
    database = build_synthetic_database(
        videos=VIDEOS, shots_per_video=SHOTS, scenes_per_video=3, seed=13
    )
    pool = [entry.features for entry in database.flat_index.entries[::40]]
    single_dir = tmp_path / "single"
    save_database(database, single_dir)
    layouts = {
        count: (tmp_path / f"shards-{count}", build_shards(
            database, tmp_path / f"shards-{count}", count
        ))
        for count in SHARD_COUNTS
    }

    rows = []
    measures = []
    dropped = _drop_page_cache()
    measures.append(_measure_local(single_dir, pool, dropped))
    for count in SHARD_COUNTS:
        root, spec = layouts[count]
        dropped = _drop_page_cache()
        measures.append(_measure_sharded(root, spec, pool, dropped))

    by_shards = {m["shards"]: m for m in measures}
    speedup_4x = by_shards[4]["qps"] / max(by_shards[1]["qps"], 1e-9)
    cpu_count = os.cpu_count() or 1

    for m in measures:
        assert m["errors"] == 0, f"{m['shards']} shards: {m['errors']} errors"
        assert m["ok"] > 0
    # Aggregate scaling is a multi-core property; on fewer cores the
    # workers time-slice one CPU and the ratio only measures overhead.
    if cpu_count >= 4:
        assert speedup_4x >= MIN_SPEEDUP_4X, by_shards

    for m in measures:
        rows.append(
            [
                "local" if m["shards"] == 0 else str(m["shards"]),
                f"{m['qps']:.0f}",
                f"{m['p50_ms']:.2f}",
                f"{m['p95_ms']:.2f}",
                f"{m['cold_first_answer_s'] * 1e3:.0f}",
            ]
        )
    text = render_table(
        ["shards", "QPS", "p50 ms", "p95 ms", "cold start ms"],
        rows,
        title=(
            f"Sharded serving, {VIDEOS * SHOTS} shots, {CLIENTS} clients, "
            f"{cpu_count} CPU(s): 4-shard speedup {speedup_4x:.2f}x"
        ),
    )
    save_result(results_dir, "sharding", text)
    (RESULTS_DIR / "BENCH_sharding.json").write_text(
        json.dumps(
            {
                "videos": VIDEOS,
                "shots": VIDEOS * SHOTS,
                "clients": CLIENTS,
                "duration_seconds": DURATION,
                "cpu_count": cpu_count,
                "min_speedup_4x": MIN_SPEEDUP_4X,
                "speedup_4x": speedup_4x,
                "scaling_gate": (
                    "asserted"
                    if cpu_count >= 4
                    else f"not evaluable on {cpu_count} CPU(s)"
                ),
                "results": measures,
            },
            indent=2,
        )
        + "\n"
    )
