"""Similarity-kernel benchmark: scalar Eq. (1)/(8)/(9) loops vs the batch engine.

Three measurements, mirroring how the kernels are used:

1. **Pairwise StSim matrix** — the 200-shot all-pairs matrix every
   mining stage leans on, scalar ``shot_similarity`` double loop vs one
   :func:`~repro.core.kernels.pairwise_stsim` call.  The vectorized
   kernel must be at least ten times faster and match to ``<= 1e-9``.
2. **GpSim group matrix** — Eq. (8)/(9) over mined-size shot groups,
   scalar ``group_similarity`` loop vs
   :func:`~repro.core.similarity.group_similarity_matrix`.
3. **End to end** — wall-clock of the full ``mine_content_structure``
   pipeline on a demo video, a scalar-emulated vs batched serving scan
   over the corpus shots, and a short closed-loop load test against a
   live :class:`~repro.serving.server.QueryServer`.

Results land in ``benchmarks/results/similarity_kernels.txt`` plus a
machine-readable ``benchmarks/results/BENCH_kernels.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import save_result
from repro.core.features import Shot
from repro.core.kernels import FeatureMatrix, pairwise_stsim
from repro.core.similarity import (
    SimilarityWeights,
    group_similarity,
    group_similarity_matrix,
    shot_similarity,
)
from repro.core.structure import mine_content_structure
from repro.database import VideoDatabase
from repro.database.index import feature_similarity, feature_similarity_batch
from repro.evaluation.report import render_table
from repro.serving import LoadgenConfig, QueryServer, ServerConfig, run_load
from repro.video.synthesis import demo_screenplay, generate_video

#: Acceptance floor for the 200-shot pairwise matrix (ISSUE criterion).
MIN_PAIRWISE_SPEEDUP = 10.0
#: Every kernel output must match the scalar oracle this tightly.
TOLERANCE = 1e-9

PAIRWISE_SHOTS = 200
GROUP_COUNT = 40
GROUP_SIZE_RANGE = (2, 7)


def _random_shots(rng: np.random.Generator, count: int) -> list[Shot]:
    shots = []
    for index in range(count):
        histogram = rng.random(256)
        histogram /= histogram.sum()
        shots.append(
            Shot(
                shot_id=index,
                start=index * 10,
                stop=index * 10 + 10,
                fps=25.0,
                representative_frame=None,
                histogram=histogram,
                texture=rng.random(10) * 0.3,
            )
        )
    return shots


def _time(fn, repeats: int = 3) -> tuple[float, object]:
    """Best-of-``repeats`` wall-clock and the last return value."""
    best = np.inf
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _scalar_pairwise(shots: list[Shot], weights: SimilarityWeights) -> np.ndarray:
    n = len(shots)
    out = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            out[i, j] = shot_similarity(shots[i], shots[j], weights)
    return out


def _scalar_group_matrix(groups, weights: SimilarityWeights) -> np.ndarray:
    n = len(groups)
    out = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            out[i, j] = group_similarity(groups[i], groups[j], weights)
    return out


def _scalar_flat_scan(features: np.ndarray, stacked: np.ndarray) -> np.ndarray:
    return np.array(
        [feature_similarity(features, stacked[i]) for i in range(stacked.shape[0])]
    )


def test_similarity_kernels(benchmark, corpus_runs, results_dir):
    rng = np.random.default_rng(13)
    weights = SimilarityWeights()
    metrics: dict[str, object] = {}

    # 1. Pairwise StSim: scalar double loop vs one kernel call.
    shots = _random_shots(rng, PAIRWISE_SHOTS)
    fm = FeatureMatrix.from_shots(shots)
    pairwise_stsim(fm, weights)  # warm BLAS / allocator once
    scalar_s, scalar_matrix = _time(lambda: _scalar_pairwise(shots, weights), repeats=1)
    vector_s, vector_matrix = _time(lambda: pairwise_stsim(fm, weights))
    max_abs_err = float(np.abs(vector_matrix - scalar_matrix).max())
    pairwise_speedup = scalar_s / max(vector_s, 1e-12)
    assert max_abs_err <= TOLERANCE
    assert pairwise_speedup >= MIN_PAIRWISE_SPEEDUP
    metrics["pairwise"] = {
        "shots": PAIRWISE_SHOTS,
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vector_s,
        "speedup": pairwise_speedup,
        "max_abs_error": max_abs_err,
    }

    # 2. GpSim matrix over mined-size groups (Eq. 8/9).
    sizes = rng.integers(*GROUP_SIZE_RANGE, size=GROUP_COUNT)
    groups = [_random_shots(rng, int(size)) for size in sizes]
    group_similarity_matrix(groups, weights)  # warm
    group_scalar_s, group_scalar = _time(
        lambda: _scalar_group_matrix(groups, weights), repeats=1
    )
    group_vector_s, group_vector = _time(
        lambda: group_similarity_matrix(groups, weights)
    )
    group_err = float(np.abs(group_vector - group_scalar).max())
    group_speedup = group_scalar_s / max(group_vector_s, 1e-12)
    assert group_err <= TOLERANCE
    assert group_speedup > 1.0
    metrics["group_matrix"] = {
        "groups": GROUP_COUNT,
        "scalar_seconds": group_scalar_s,
        "vectorized_seconds": group_vector_s,
        "speedup": group_speedup,
        "max_abs_error": group_err,
    }

    kernel_text = render_table(
        ["kernel", "scalar s", "vectorized s", "speedup", "max |err|"],
        [
            [
                f"pairwise StSim ({PAIRWISE_SHOTS} shots)",
                f"{scalar_s:.3f}",
                f"{vector_s:.4f}",
                f"{pairwise_speedup:.0f}x",
                f"{max_abs_err:.1e}",
            ],
            [
                f"GpSim matrix ({GROUP_COUNT} groups)",
                f"{group_scalar_s:.3f}",
                f"{group_vector_s:.4f}",
                f"{group_speedup:.0f}x",
                f"{group_err:.1e}",
            ],
        ],
        title="Scalar oracle vs batch kernels (best of 3)",
    )

    # Steady-state microbenchmark: the pairwise kernel itself.
    benchmark(pairwise_stsim, fm, weights)

    # 3a. End-to-end mining wall-clock on a demo video (the similarity
    #     stages — groups, scenes, clustering, validity — all run on the
    #     batch kernels now).
    video = generate_video(demo_screenplay(), seed=0)
    mine_s, structure = _time(
        lambda: mine_content_structure(video.stream), repeats=1
    )
    metrics["mine_video"] = {
        "title": video.stream.title,
        "frames": video.stream.frame_count,
        "shots": len(structure.shots),
        "scenes": len(structure.scenes),
        "wall_seconds": mine_s,
    }

    # 3b. Serving scan over the corpus shots: per-entry scalar loop
    #     (the pre-kernel hot path) vs one batched call.
    database = VideoDatabase()
    for _, run in corpus_runs:
        database.register(run)
    entries = database.flat_index.entries
    stacked = np.stack([entry.features for entry in entries])
    query = entries[int(rng.integers(len(entries)))].features
    feature_similarity_batch(query, stacked)  # warm
    scan_scalar_s, scan_scalar = _time(lambda: _scalar_flat_scan(query, stacked))
    scan_vector_s, scan_vector = _time(
        lambda: feature_similarity_batch(query, stacked)
    )
    scan_err = float(np.abs(scan_vector - scan_scalar).max())
    scan_speedup = scan_scalar_s / max(scan_vector_s, 1e-12)
    assert scan_err <= TOLERANCE
    assert scan_speedup > 1.0  # the measurable serving improvement
    metrics["serving_scan"] = {
        "entries": len(entries),
        "scalar_seconds_per_query": scan_scalar_s,
        "vectorized_seconds_per_query": scan_vector_s,
        "speedup": scan_speedup,
    }

    # 3c. Closed-loop load test against the live server (all query
    #     kinds ride the batched kernels through warmed snapshots).
    with QueryServer(database, ServerConfig(workers=4, queue_depth=128)) as server:
        report = run_load(
            server, LoadgenConfig(clients=4, duration=1.0, seed=17)
        )
    assert not report.failures
    assert report.completed > 0
    metrics["loadtest"] = {
        "clients": 4,
        "duration_seconds": 1.0,
        "qps": report.qps,
        "completed": report.completed,
        "p50_seconds": report.percentile(50),
        "p95_seconds": report.percentile(95),
        "cache_hit_rate": report.cache_hit_rate,
    }

    end_to_end_text = render_table(
        ["measurement", "value"],
        [
            [
                f"mine_content_structure ({video.stream.title})",
                f"{mine_s:.2f} s ({len(structure.shots)} shots, "
                f"{len(structure.scenes)} scenes)",
            ],
            [
                f"serving scan, scalar loop ({len(entries)} shots)",
                f"{scan_scalar_s * 1e6:.0f} us/query",
            ],
            [
                "serving scan, batched kernel",
                f"{scan_vector_s * 1e6:.0f} us/query ({scan_speedup:.0f}x)",
            ],
            [
                "load test (4 clients, 1 s)",
                f"{report.qps:.0f} QPS, p50 {report.percentile(50) * 1e6:.0f} us, "
                f"p95 {report.percentile(95) * 1e6:.0f} us",
            ],
        ],
        title="End to end: mining + serving on the batch kernels",
    )

    text = "\n\n".join([kernel_text, end_to_end_text])
    save_result(results_dir, "similarity_kernels", text)
    (results_dir / "BENCH_kernels.json").write_text(
        json.dumps(metrics, indent=2) + "\n"
    )
