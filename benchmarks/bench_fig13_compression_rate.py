"""Fig. 13 — compression rate factor (CRF) for methods A, B and C.

Regenerates the figure's bars and asserts the paper's shape: method C
achieves the best (smallest) compression-rate factor and method A the
largest — the explicit trade-off against Fig. 12's precision.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.baselines import lin_detect_scenes, rui_detect_scenes
from repro.evaluation import evaluate_scene_partition
from repro.evaluation.report import render_series, render_table


def _pooled_crf(corpus_runs, method_fn, label):
    detected = shots = 0
    for video, run in corpus_runs:
        scenes = method_fn(run.structure)
        evaluation = evaluate_scene_partition(
            video.truth, run.structure.shots, scenes, label
        )
        detected += evaluation.detected
        shots += evaluation.shot_count
    return detected / shots


def test_fig13_compression_rate(benchmark, corpus_runs, results_dir):
    shots = corpus_runs[0][1].structure.shots
    benchmark(lin_detect_scenes, shots)

    crf = {
        "A": _pooled_crf(
            corpus_runs, lambda s: [scene.shot_ids for scene in s.scenes], "A"
        ),
        "B": _pooled_crf(corpus_runs, lambda s: rui_detect_scenes(s.shots).scenes, "B"),
        "C": _pooled_crf(corpus_runs, lambda s: lin_detect_scenes(s.shots).scenes, "C"),
    }
    shots_per_scene = {label: 1.0 / value for label, value in crf.items()}

    table = render_table(
        ["method", "CRF (Eq. 21)", "shots per scene"],
        [[label, crf[label], shots_per_scene[label]] for label in "ABC"],
        title="Fig. 13 — compression rate factor",
    )
    series = render_series("CRF", [(label, crf[label]) for label in "ABC"])
    paper = (
        "paper: A=0.086 (~11 shots/scene, least compression), C smallest; "
        f"measured: A={crf['A']:.3f}, B={crf['B']:.3f}, C={crf['C']:.3f}"
    )
    save_result(
        results_dir, "fig13_compression_rate", table + "\n\n" + series + "\n" + paper
    )

    # Paper shape: C compresses hardest, A least.
    assert crf["C"] < crf["B"] < crf["A"]
    # Method A sits in the paper's ballpark (a scene is ~7-12 shots).
    assert 0.05 < crf["A"] < 0.2
