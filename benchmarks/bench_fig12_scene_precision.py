"""Fig. 12 — scene-detection precision for methods A, B and C.

Regenerates the bar chart as a table over the whole corpus and asserts
the paper's ordering: method A (ours) achieves the best precision,
method C the worst.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.baselines import lin_detect_scenes, rui_detect_scenes, stg_detect_scenes
from repro.core.groups import detect_groups
from repro.core.scenes import detect_scenes
from repro.evaluation import evaluate_scene_partition
from repro.evaluation.report import render_series, render_table


def _pooled_precision(corpus_runs, method_fn, label):
    right = detected = 0
    per_video = []
    for video, run in corpus_runs:
        scenes = method_fn(run.structure)
        evaluation = evaluate_scene_partition(
            video.truth, run.structure.shots, scenes, label
        )
        right += evaluation.rightly_detected
        detected += evaluation.detected
        per_video.append((video.title, evaluation.precision))
    return right / detected, per_video


def _method_a(structure):
    return [scene.shot_ids for scene in structure.scenes]


def _method_b(structure):
    return rui_detect_scenes(structure.shots).scenes


def _method_c(structure):
    return lin_detect_scenes(structure.shots).scenes


def _method_stg(structure):
    # Extension: Yeung & Yeo's STG [15], which the paper discusses but
    # does not benchmark.
    return stg_detect_scenes(structure.shots).scenes


def test_fig12_scene_precision(benchmark, corpus_runs, results_dir):
    # Benchmark method A's scene stage (group detection + merging).
    shots = corpus_runs[0][1].structure.shots

    def scene_stage():
        groups, _ = detect_groups(shots)
        return detect_scenes(groups)

    benchmark(scene_stage)

    precision = {}
    detail_rows = []
    for label, fn in (
        ("A", _method_a),
        ("B", _method_b),
        ("C", _method_c),
        ("STG", _method_stg),
    ):
        pooled, per_video = _pooled_precision(corpus_runs, fn, label)
        precision[label] = pooled
        for title, value in per_video:
            detail_rows.append([label, title, value])

    table = render_table(
        ["method", "video", "precision"],
        detail_rows,
        title="Fig. 12 — scene detection precision (Eq. 20)",
    )
    series = render_series(
        "pooled precision P",
        [(label, precision[label]) for label in ("A", "B", "C", "STG")],
    )
    paper = (
        "paper: A=0.66 (best), B~0.61, C~0.57 (worst); "
        f"measured: A={precision['A']:.2f}, B={precision['B']:.2f}, "
        f"C={precision['C']:.2f}"
    )
    save_result(
        results_dir, "fig12_scene_precision", table + "\n\n" + series + "\n" + paper
    )

    # The paper's shape: A wins, C loses.
    assert precision["A"] > precision["B"] > precision["C"]
    assert precision["A"] > 0.6
