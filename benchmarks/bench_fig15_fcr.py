"""Fig. 15 — frame compression ratio at each skimming layer.

The paper reports ~10% of the frames at layer 4, rising to 100% at
layer 1.  FCR is averaged across the corpus and the monotone shape is
asserted.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_result
from repro.evaluation.report import render_series, render_table
from repro.skimming import build_skim, fcr_by_level


def test_fig15_frame_compression_ratio(benchmark, corpus_runs, results_dir):
    run = corpus_runs[0][1]
    benchmark(build_skim, run.structure, run.events.events)

    sums = {level: 0.0 for level in (1, 2, 3, 4)}
    per_video_rows = []
    for video, run in corpus_runs:
        skim = build_skim(run.structure, run.events.events)
        fcr = fcr_by_level(skim)
        per_video_rows.append([video.title, fcr[4], fcr[3], fcr[2], fcr[1]])
        for level, value in fcr.items():
            sums[level] += value
    count = len(corpus_runs)
    averages = {level: sums[level] / count for level in sums}

    table = render_table(
        ["video", "layer 4", "layer 3", "layer 2", "layer 1"],
        per_video_rows + [["average", *(averages[level] for level in (4, 3, 2, 1))]],
        title="Fig. 15 — frame compression ratio per skimming layer",
    )
    series = render_series(
        "average FCR", [(level, averages[level]) for level in (4, 3, 2, 1)]
    )
    paper = (
        "paper: ~0.10 at layer 4 rising to 1.0 at layer 1; "
        f"measured layer 4 = {averages[4]:.3f}"
    )
    save_result(results_dir, "fig15_fcr", table + "\n\n" + series + "\n" + paper)

    assert averages[1] == 1.0
    assert averages[4] < averages[3] < averages[2] < averages[1]
    # Layer 4 lands near the paper's ~10%.
    assert averages[4] < 0.25
