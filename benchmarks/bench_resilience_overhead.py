"""Fault-hook overhead benchmark: the zero-cost-when-disabled contract.

The resilience layer's contract mirrors the obs layer's: with the
default :data:`~repro.resilience.faults.NULL_PLAN` installed, every
``fault_point`` site is one module-global read plus a no-op method
call.  This bench measures that contract on the full demo mine plus a
burst of served queries:

1. **stubbed** — every ``fault_point`` call site patched to a bare
   no-op function: the hypothetical uninstrumented build.
2. **disarmed** — the shipped default (``NULL_PLAN`` dispatch).
3. **armed-idle** — a live :class:`~repro.resilience.faults.FaultPlan`
   whose specs never match, so every hit pays the plan's lock-and-match
   bookkeeping but no fault fires (informative: the price of running
   *under chaos*, which the contract does not bound).

The disarmed run must stay within ``MAX_OVERHEAD`` (5%) of the stubbed
run, the ISSUE acceptance criterion.  Wall-clock is best-of-``ROUNDS``;
results land in ``benchmarks/results/resilience_overhead.txt`` plus
machine-readable ``benchmarks/results/BENCH_resilience.json``.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR, save_result
from repro.core import ClassMiner
from repro.database.catalog import VideoDatabase
from repro.evaluation.report import render_table
from repro.resilience.faults import NULL_PLAN, FaultPlan, FaultSpec, install_plan
from repro.serving.server import QueryRequest, QueryServer, ServerConfig
from repro.video.synthesis import demo_screenplay, generate_video

#: Acceptance ceiling for disarmed fault-hook overhead (ISSUE criterion).
MAX_OVERHEAD = 0.05

#: Best-of rounds per configuration.
ROUNDS = 5

#: Served queries per measured round.
QUERIES = 200

#: Modules that imported ``fault_point`` by name (the patchable sites).
_HOOK_MODULES = (
    "repro.core.structure",
    "repro.core.pipeline",
    "repro.ingest.executor",
    "repro.ingest.artifacts",
    "repro.ingest.runner",
    "repro.serving.server",
    "repro.serving.snapshot",
)


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _patch_hooks(stub):
    """Swap every call site's ``fault_point`` binding; returns an undo."""
    import importlib

    originals = []
    for name in _HOOK_MODULES:
        module = importlib.import_module(name)
        originals.append((module, module.fault_point))
        module.fault_point = stub

    def undo():
        for module, original in originals:
            module.fault_point = original

    return undo


def test_resilience_overhead(results_dir) -> None:
    """NULL_PLAN dispatch must cost < 5% over hook-free call sites."""
    video = generate_video(demo_screenplay(), seed=0)
    miner = ClassMiner()
    result = miner.mine(video.stream)  # warm steady state

    database = VideoDatabase()
    database.register(result)
    idle = FaultPlan([FaultSpec(point="bench.never", kind="error")], seed=0)

    with QueryServer(
        database, ServerConfig(workers=2, watchdog_interval=None)
    ) as server:
        features = server.manager.current().flat.entries[0].features
        request = QueryRequest(kind="shot", features=features, k=5)

        def workload():
            miner.mine(video.stream)
            for _ in range(QUERIES):
                server.query(request)

        workload()  # warm both paths once

        undo = _patch_hooks(lambda _name: None)
        try:
            stubbed = _best_of(workload)
        finally:
            undo()

        install_plan(NULL_PLAN)
        disarmed = _best_of(workload)

        previous = install_plan(idle)
        try:
            armed = _best_of(workload)
        finally:
            install_plan(previous)

    hits = sum(idle.hits(point) for point in ("mine.shots", "serve.query"))
    overhead = disarmed / stubbed - 1.0
    armed_overhead = armed / stubbed - 1.0

    rows = [
        ["stubbed (no hooks)", f"{stubbed * 1e3:.2f}", "-"],
        ["disarmed (NULL_PLAN)", f"{disarmed * 1e3:.2f}", f"{overhead * 100:+.2f}%"],
        [
            "armed-idle (FaultPlan)",
            f"{armed * 1e3:.2f}",
            f"{armed_overhead * 100:+.2f}%",
        ],
    ]
    text = render_table(
        ["configuration", "best-of-5 ms", "overhead"],
        rows,
        title=(
            f"fault-hook overhead on demo mine + {QUERIES} queries "
            f"(disarmed ceiling {MAX_OVERHEAD:.0%})"
        ),
    )
    save_result(results_dir, "resilience_overhead", text)
    (RESULTS_DIR / "BENCH_resilience.json").write_text(
        json.dumps(
            {
                "pipeline": f"ClassMiner.mine(demo) + {QUERIES} served queries",
                "rounds": ROUNDS,
                "sampled_point_hits": hits,
                "stubbed_seconds": stubbed,
                "disarmed_seconds": disarmed,
                "armed_idle_seconds": armed,
                "disarmed_overhead_fraction": overhead,
                "armed_idle_overhead_fraction": armed_overhead,
                "max_overhead_fraction": MAX_OVERHEAD,
            },
            indent=2,
        )
        + "\n"
    )

    assert hits > 0, "the armed plan never saw a fault point; bench is broken"
    assert overhead < MAX_OVERHEAD, (
        f"disarmed fault-hook overhead {overhead:.1%} exceeds the "
        f"{MAX_OVERHEAD:.0%} ceiling (stubbed {stubbed * 1e3:.2f}ms, "
        f"disarmed {disarmed * 1e3:.2f}ms)"
    )
