"""Table 1 — video event mining results (SN / DN / TN / PR / RE).

Replays the paper's protocol: benchmark scenes that distinctly belong
to one category are selected from the mined scenes, the miner's labels
are compared, and the per-category and pooled precision/recall are
reported in exactly the paper's columns.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.evaluation import build_benchmark, tabulate_events
from repro.evaluation.report import render_table
from repro.events.miner import EventMiner
from repro.types import EventKind

PAPER_ROWS = {
    EventKind.PRESENTATION: (15, 16, 13, 0.81, 0.87),
    EventKind.DIALOG: (28, 33, 24, 0.73, 0.85),
    EventKind.CLINICAL_OPERATION: (39, 32, 21, 0.65, 0.54),
}


def test_table1_event_mining(benchmark, corpus_runs, results_dir):
    # Benchmark the event-mining stage on one already-analysed video.
    video, run = corpus_runs[0]
    miner = EventMiner()
    miner.visual_cues(run.structure.shots)
    miner.shot_audio(run.structure.shots, video.stream.audio)
    benchmark(miner.mine, run.structure.scenes, video.stream.audio)

    cases = []
    for video, run in corpus_runs:
        cases.extend(
            build_benchmark(video.truth, run.structure.scenes, run.scene_events())
        )
    table = tabulate_events(cases)

    rows = []
    for kind in EventKind.known_kinds():
        row = table.rows[kind]
        paper = PAPER_ROWS[kind]
        rows.append(
            [
                kind.value,
                row.selected,
                row.detected,
                row.true,
                row.precision,
                row.recall,
                f"(paper PR={paper[3]:.2f} RE={paper[4]:.2f})",
            ]
        )
    average = table.average
    rows.append(
        [
            "average",
            average.selected,
            average.detected,
            average.true,
            average.precision,
            average.recall,
            "(paper PR=0.72 RE=0.71)",
        ]
    )
    text = render_table(
        ["events", "SN", "DN", "TN", "PR", "RE", "paper"],
        rows,
        title="Table 1 — video event mining results",
    )
    save_result(results_dir, "table1_event_mining", text)

    # Paper shape: useful average performance, clinical operation the
    # weakest class by recall.
    assert average.precision >= 0.6
    assert average.recall >= 0.55
    clinical = table.rows[EventKind.CLINICAL_OPERATION]
    others = [
        table.rows[EventKind.PRESENTATION].recall,
        table.rows[EventKind.DIALOG].recall,
    ]
    assert clinical.recall <= max(others)
