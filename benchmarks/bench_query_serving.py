"""Query-serving benchmark: cold vs warm cache, hier vs flat, sustained QPS.

Stands a :class:`~repro.serving.server.QueryServer` over the mined
five-video corpus and measures the three things the serving layer
promises:

1. the result cache makes a repeated query at least five times faster
   than its cold execution;
2. at serving time the hierarchical descent does fewer comparisons per
   query than the Eq. (24) flat scan (the Eq. 25 cost model, observed
   from the worker's :class:`~repro.database.query.QueryStats`);
3. a closed-loop multi-client load sustains real QPS with bounded
   p50/p95/p99 latency and no failures.

The rendered report lands in ``benchmarks/results/query_serving.txt``.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_result
from repro.database import VideoDatabase
from repro.evaluation.report import render_table
from repro.serving import (
    LoadgenConfig,
    QueryRequest,
    QueryServer,
    ServerConfig,
    run_load,
)

#: Required cold/warm speedup (server-side execution latency).
MIN_WARM_SPEEDUP = 5.0


def _corpus_database(corpus_runs) -> VideoDatabase:
    db = VideoDatabase()
    for _, run in corpus_runs:
        db.register(run)
    return db


def _fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:.0f}"


def _hit_ids(result) -> list[tuple]:
    """Identity of each hit: shot key or (title, scene_id)."""
    return [
        getattr(h.entry, "key", None) or (h.entry.video_title, h.entry.scene_id)
        for h in result.hits
    ]


def test_query_serving(benchmark, corpus_runs, results_dir):
    database = _corpus_database(corpus_runs)
    rng = np.random.default_rng(7)

    with QueryServer(database, ServerConfig(workers=4, queue_depth=128)) as server:
        entries = server.manager.current().flat.entries

        # 1. Cold vs warm: the same query repeated must come from cache.
        warm_rows = []
        speedups = []
        for kind in ("shot", "scene"):
            features = entries[int(rng.integers(len(entries)))].features
            request = QueryRequest(kind=kind, features=features, k=5)
            cold = server.query(request)
            repeats = [server.query(request) for _ in range(25)]
            assert not cold.cache_hit
            assert all(r.cache_hit for r in repeats)
            assert all(_hit_ids(r) == _hit_ids(cold) for r in repeats)
            warm_s = float(np.median([r.elapsed_seconds for r in repeats]))
            speedup = cold.elapsed_seconds / max(warm_s, 1e-9)
            speedups.append(speedup)
            warm_rows.append(
                [
                    kind,
                    f"{cold.elapsed_seconds * 1e3:.3f}",
                    _fmt_us(warm_s),
                    f"{speedup:.1f}x",
                    cold.comparisons,
                ]
            )
        assert max(speedups) >= MIN_WARM_SPEEDUP
        warm_text = render_table(
            ["kind", "cold ms", "warm us (median)", "speedup", "cold cmps"],
            warm_rows,
            title="Result cache: cold vs warm repeated query",
        )

        # Benchmark the steady state the cache buys: a warm repeat.
        features = entries[0].features
        request = QueryRequest(kind="shot", features=features, k=5)
        server.query(request)
        benchmark(server.query, request)

        # 2. Hierarchical vs flat baseline, side by side at serving time
        #    (distinct perturbed queries so the cache cannot interfere).
        hier_stats: list[tuple[int, float]] = []
        flat_stats: list[tuple[int, float]] = []
        agreements = 0
        n_queries = 20
        for _ in range(n_queries):
            base = entries[int(rng.integers(len(entries)))].features
            noisy = np.clip(base + rng.normal(0.0, 1e-4, base.shape), 0.0, None)
            hier = server.query(QueryRequest(kind="shot", features=noisy, k=5))
            flat = server.query(QueryRequest(kind="shot_flat", features=noisy, k=5))
            assert not hier.cache_hit and not flat.cache_hit
            agreements += hier.hits[0].entry.key == flat.hits[0].entry.key
            hier_stats.append((hier.comparisons, hier.elapsed_seconds))
            flat_stats.append((flat.comparisons, flat.elapsed_seconds))
        hier_cmps = float(np.mean([c for c, _ in hier_stats]))
        flat_cmps = float(np.mean([c for c, _ in flat_stats]))
        assert hier_cmps < flat_cmps  # Eq. 25 < Eq. 24 at serving time
        # The descent is approximate (it only ranks the leaves it
        # visits), so top-1 agreement with the exhaustive scan is a
        # rate, not a guarantee — it must stay above chance by far.
        agreement = agreements / n_queries
        assert agreement >= 0.5
        baseline_text = render_table(
            ["strategy", "mean cmps/query", "mean us/query", "top-1 agreement"],
            [
                [
                    "hierarchical (Eq. 25)",
                    f"{hier_cmps:.0f}",
                    _fmt_us(float(np.mean([s for _, s in hier_stats]))),
                    f"{agreement * 100:.0f}%",
                ],
                [
                    "flat scan (Eq. 24)",
                    f"{flat_cmps:.0f}",
                    _fmt_us(float(np.mean([s for _, s in flat_stats]))),
                    "100% (exhaustive)",
                ],
            ],
            title=f"Hierarchical vs flat at serving time ({len(entries)} shots)",
        )

        # 3. Sustained closed-loop QPS at several client counts.
        load_rows = []
        for clients in (1, 4, 8):
            server.metrics.reset()
            report = run_load(
                server,
                LoadgenConfig(clients=clients, duration=1.0, seed=clients),
            )
            assert not report.failures
            assert report.completed > 0
            load_rows.append(
                [
                    clients,
                    f"{report.qps:.0f}",
                    f"{report.cache_hit_rate * 100:.0f}%",
                    _fmt_us(report.percentile(50)),
                    _fmt_us(report.percentile(95)),
                    _fmt_us(report.percentile(99)),
                    report.rejected,
                    report.timeouts,
                ]
            )
        load_text = render_table(
            [
                "clients",
                "QPS",
                "hit rate",
                "p50 us",
                "p95 us",
                "p99 us",
                "rejected",
                "timeouts",
            ],
            load_rows,
            title="Sustained mixed load (closed loop, 4 workers, 1s runs)",
        )

        metrics_text = server.metrics.render()

    save_result(
        results_dir,
        "query_serving",
        "\n\n".join([warm_text, baseline_text, load_text, metrics_text]),
    )
