"""Observability overhead benchmark: traced vs untraced demo mine.

The obs layer's contract is *zero-cost when disabled*: with the default
:data:`~repro.obs.trace.NULL_TRACER` installed, every instrumented site
is one attribute read plus a no-op context manager, and the hot-path
kernel/index stats are plain attribute increments.  This bench measures
both sides of that contract on the full ``mine_content_structure`` +
cues + audio + events pipeline:

1. **disabled** — the shipped default (NullTracer, stats increments on).
2. **enabled** — a live :class:`~repro.obs.Tracer` recording every span.

The enabled run must stay within ``MAX_OVERHEAD`` (5%) of the disabled
run, the ISSUE acceptance criterion.  Wall-clock is best-of-``ROUNDS``
to squeeze out scheduler noise; results land in
``benchmarks/results/obs_overhead.txt`` plus machine-readable
``benchmarks/results/BENCH_obs.json``.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR, save_result
from repro.core import ClassMiner
from repro.evaluation.report import render_table
from repro.obs import NULL_TRACER, Tracer, install_tracer
from repro.video.synthesis import demo_screenplay, generate_video

#: Acceptance ceiling for enabled-tracing overhead (ISSUE criterion).
MAX_OVERHEAD = 0.05

#: Best-of rounds per configuration.
ROUNDS = 5


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_obs_overhead(results_dir) -> None:
    """Enabled tracing must cost < 5% over the disabled default."""
    video = generate_video(demo_screenplay(), seed=0)
    miner = ClassMiner()
    miner.mine(video.stream)  # warm caches/JIT-free steady state

    install_tracer(NULL_TRACER)
    disabled = _best_of(lambda: miner.mine(video.stream))

    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        enabled = _best_of(lambda: miner.mine(video.stream))
    finally:
        install_tracer(previous)

    spans_per_mine = len(tracer.spans()) // ROUNDS
    overhead = enabled / disabled - 1.0

    rows = [
        ["disabled (NullTracer)", f"{disabled * 1e3:.2f}", "-"],
        ["enabled (Tracer)", f"{enabled * 1e3:.2f}", f"{overhead * 100:+.2f}%"],
    ]
    text = render_table(
        ["configuration", "best-of-5 ms", "overhead"],
        rows,
        title=(
            f"observability overhead on demo mine "
            f"({spans_per_mine} spans per run, ceiling {MAX_OVERHEAD:.0%})"
        ),
    )
    save_result(results_dir, "obs_overhead", text)
    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(
            {
                "pipeline": "ClassMiner.mine(demo)",
                "rounds": ROUNDS,
                "spans_per_run": spans_per_mine,
                "disabled_seconds": disabled,
                "enabled_seconds": enabled,
                "overhead_fraction": overhead,
                "max_overhead_fraction": MAX_OVERHEAD,
            },
            indent=2,
        )
        + "\n"
    )

    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead:.1%} exceeds the {MAX_OVERHEAD:.0%} ceiling "
        f"(disabled {disabled * 1e3:.2f}ms, enabled {enabled * 1e3:.2f}ms)"
    )
