"""Observability overhead benchmark: traced vs untraced demo mine.

The obs layer's contract is *zero-cost when disabled*: with the default
:data:`~repro.obs.trace.NULL_TRACER` installed, every instrumented site
is one attribute read plus a no-op context manager, and the hot-path
kernel/index stats are plain attribute increments.  This bench measures
both sides of that contract on the full ``mine_content_structure`` +
cues + audio + events pipeline:

1. **disabled** — the shipped default (NullTracer, stats increments on).
2. **enabled** — a live :class:`~repro.obs.Tracer` recording every span.

The enabled run must stay within ``MAX_OVERHEAD`` (5%) of the disabled
run, the ISSUE acceptance criterion.  Wall-clock is best-of-``ROUNDS``
to squeeze out scheduler noise; results land in
``benchmarks/results/obs_overhead.txt`` plus machine-readable
``benchmarks/results/BENCH_obs.json``.

A second measurement covers the **RPC path**: with tracing disabled,
one coordinator shard call (``_shard_call`` — the trace-kwarg branch,
``tracer.enabled`` check and explain-sink probes added for distributed
tracing) must stay within ``MAX_OVERHEAD`` of a raw
:meth:`~repro.net.protocol.ShardEndpoint.call` round trip over the same
socket.  Its numbers merge into ``BENCH_obs.json`` under ``rpc_path``.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import RESULTS_DIR, save_result
from repro.core import ClassMiner
from repro.evaluation.report import render_table
from repro.net.coordinator import CoordinatorConfig, ShardedQueryService
from repro.net.protocol import ShardEndpoint
from repro.net.shard import build_shards
from repro.net.worker import ShardWorker
from repro.obs import NULL_TRACER, Tracer, install_tracer
from repro.storage.synthetic import build_synthetic_database
from repro.video.synthesis import demo_screenplay, generate_video

#: Acceptance ceiling for enabled-tracing overhead (ISSUE criterion).
MAX_OVERHEAD = 0.05

#: Best-of rounds per configuration.
ROUNDS = 5


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_obs_overhead(results_dir) -> None:
    """Enabled tracing must cost < 5% over the disabled default."""
    video = generate_video(demo_screenplay(), seed=0)
    miner = ClassMiner()
    miner.mine(video.stream)  # warm caches/JIT-free steady state

    install_tracer(NULL_TRACER)
    disabled = _best_of(lambda: miner.mine(video.stream))

    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        enabled = _best_of(lambda: miner.mine(video.stream))
    finally:
        install_tracer(previous)

    spans_per_mine = len(tracer.spans()) // ROUNDS
    overhead = enabled / disabled - 1.0

    rows = [
        ["disabled (NullTracer)", f"{disabled * 1e3:.2f}", "-"],
        ["enabled (Tracer)", f"{enabled * 1e3:.2f}", f"{overhead * 100:+.2f}%"],
    ]
    text = render_table(
        ["configuration", "best-of-5 ms", "overhead"],
        rows,
        title=(
            f"observability overhead on demo mine "
            f"({spans_per_mine} spans per run, ceiling {MAX_OVERHEAD:.0%})"
        ),
    )
    save_result(results_dir, "obs_overhead", text)
    _merge_bench_json(
        {
            "pipeline": "ClassMiner.mine(demo)",
            "rounds": ROUNDS,
            "spans_per_run": spans_per_mine,
            "disabled_seconds": disabled,
            "enabled_seconds": enabled,
            "overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD,
        }
    )

    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead:.1%} exceeds the {MAX_OVERHEAD:.0%} ceiling "
        f"(disabled {disabled * 1e3:.2f}ms, enabled {enabled * 1e3:.2f}ms)"
    )


def _merge_bench_json(update: dict) -> None:
    """Fold one measurement into BENCH_obs.json without clobbering others."""
    path = RESULTS_DIR / "BENCH_obs.json"
    try:
        existing = json.loads(path.read_text())
    except (OSError, ValueError):
        existing = {}
    existing.update(update)
    path.write_text(json.dumps(existing, indent=2) + "\n")


#: RPC round trips timed per round (amortises socket noise).
RPC_CALLS = 1000

#: Rounds for the RPC measurement (more than ROUNDS: per-call cost is
#: tens of microseconds, so scheduler jitter needs more suppression).
RPC_ROUNDS = 7


def test_rpc_path_disabled_overhead(results_dir, tmp_path) -> None:
    """Tracing-disabled shard calls must cost < 5% over raw RPC."""
    database = build_synthetic_database(
        videos=12, shots_per_video=4, scenes_per_video=2, seed=7
    )
    spec = build_shards(database, tmp_path, 1)
    worker = ShardWorker(spec.shard_dir(tmp_path, 0)).start()
    endpoint = ShardEndpoint(0, "127.0.0.1", worker.port)
    service = ShardedQueryService(
        spec, [endpoint], config=CoordinatorConfig()
    )
    install_tracer(NULL_TRACER)
    request = {"op": "ping"}
    try:
        # Warm the pooled connection on both paths before timing.
        endpoint.call(request, None)
        service._shard_call(0, request, None, None, None, None)

        # Interleave the two sides within each round so slow drift in
        # the socket path (scheduler, power state) hits both equally.
        raw = via_coordinator = float("inf")
        for _ in range(RPC_ROUNDS):
            start = time.perf_counter()
            for _ in range(RPC_CALLS):
                endpoint.call(request, None)
            raw = min(raw, time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(RPC_CALLS):
                service._shard_call(0, request, None, None, None, None)
            via_coordinator = min(via_coordinator, time.perf_counter() - start)
    finally:
        service.close()
        worker.stop()

    overhead = via_coordinator / raw - 1.0
    rows = [
        ["raw endpoint.call", f"{raw / RPC_CALLS * 1e6:.1f}", "-"],
        [
            "coordinator _shard_call (untraced)",
            f"{via_coordinator / RPC_CALLS * 1e6:.1f}",
            f"{overhead * 100:+.2f}%",
        ],
    ]
    text = render_table(
        ["rpc path", "us per call", "overhead"],
        rows,
        title=(
            f"tracing-disabled RPC path, best of {RPC_ROUNDS} x {RPC_CALLS} "
            f"ping round trips (ceiling {MAX_OVERHEAD:.0%})"
        ),
    )
    save_result(results_dir, "obs_rpc_overhead", text)
    _merge_bench_json(
        {
            "rpc_path": {
                "op": "ping",
                "calls_per_round": RPC_CALLS,
                "rounds": RPC_ROUNDS,
                "raw_seconds_per_call": raw / RPC_CALLS,
                "untraced_seconds_per_call": via_coordinator / RPC_CALLS,
                "overhead_fraction": overhead,
                "max_overhead_fraction": MAX_OVERHEAD,
            }
        }
    )

    assert overhead < MAX_OVERHEAD, (
        f"untraced RPC-path overhead {overhead:.1%} exceeds the "
        f"{MAX_OVERHEAD:.0%} ceiling (raw {raw / RPC_CALLS * 1e6:.1f}us, "
        f"via coordinator {via_coordinator / RPC_CALLS * 1e6:.1f}us)"
    )
