"""Sec. 6.2 — cluster-based indexing vs flat scan (Eqs. 24-25).

Builds the hierarchical database from the whole mined corpus, then
compares measured comparison counts and wall-clock time of the
hierarchical descent against the flat scan, alongside the analytic
Eq. 24 / Eq. 25 cost models.  Database sizes are swept by replicating
entries so the scaling trend (the paper's T_c << T_e) is visible.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import save_result
from repro.database import VideoDatabase, combine_features
from repro.database.flat import FlatIndex
from repro.database.index import ShotEntry, build_node
from repro.database.query import search_hierarchical
from repro.evaluation.report import render_table
from repro.evaluation.timing import FlatCost, HierarchicalCost, speedup


def _corpus_database(corpus_runs) -> VideoDatabase:
    db = VideoDatabase()
    for _, run in corpus_runs:
        db.register(run)
    db.build_index()
    return db


def _replicated_index(corpus_runs, factor: int):
    """Scale the database by tiling every video's entries ``factor`` times."""
    leaves = {}
    flat = FlatIndex()
    rng = np.random.default_rng(42)
    for _, run in corpus_runs:
        events = run.scene_events()
        for scene in run.structure.scenes:
            event = events[scene.scene_id]
            for shot in scene.shots:
                base = combine_features(shot.histogram, shot.texture)
                for copy in range(factor):
                    noisy = np.clip(base + rng.normal(0, 1e-4, base.shape), 0, None)
                    entry = ShotEntry(
                        video_title=f"{run.title}#{copy}",
                        shot_id=shot.shot_id,
                        scene_id=scene.scene_id,
                        features=noisy,
                    )
                    leaves.setdefault(event.value, []).append(entry)
                    flat.insert(entry)
    children = [
        build_node(name, 1, entries=entries) for name, entries in leaves.items()
    ]
    return build_node("root", 0, children=children), flat


def test_sec62_indexing(benchmark, corpus_runs, results_dir):
    db = _corpus_database(corpus_runs)
    query_shot = corpus_runs[0][1].structure.shots[6]
    features = combine_features(query_shot.histogram, query_shot.texture)

    benchmark(db.search, features)

    rows = []
    for factor in (1, 4, 16):
        root, flat = _replicated_index(corpus_runs, factor)
        n_total = len(flat)

        start = time.perf_counter()
        hier = search_hierarchical(root, features, k=10)
        hier_time = time.perf_counter() - start
        start = time.perf_counter()
        scan = flat.search(features, k=10)
        flat_time = time.perf_counter() - start

        model_flat = FlatCost(total_shots=n_total)
        model_hier = HierarchicalCost(
            level_nodes=(len(root.children) * 4,),
            leaf_shots=hier.stats.ranked,
        )
        rows.append(
            [
                n_total,
                scan.stats.comparisons,
                hier.stats.comparisons,
                flat_time * 1e3,
                hier_time * 1e3,
                speedup(model_flat, model_hier),
            ]
        )
        assert hier.stats.comparisons < scan.stats.comparisons
        # Both retrieval paths agree on the best answer.
        assert hier.top.entry.shot_id == scan.top.entry.shot_id

    text = render_table(
        [
            "N_T (shots)",
            "flat cmps (Eq.24)",
            "hier cmps (Eq.25)",
            "flat ms",
            "hier ms",
            "model speedup",
        ],
        rows,
        title="Sec. 6.2 — cluster-based indexing vs flat scan",
    )

    # Quality side: the descent must not wreck retrieval accuracy.
    from repro.evaluation.retrieval_eval import evaluate_retrieval

    quality = evaluate_retrieval(db, k=5, max_queries=60)
    quality_rows = [
        [
            report.strategy,
            report.precision_at_k,
            report.self_hit_rate,
            report.mean_comparisons,
        ]
        for report in quality.values()
    ]
    quality_text = render_table(
        ["strategy", "precision@5 (same scene)", "self-hit rate", "mean cmps"],
        quality_rows,
        title="Retrieval quality (self-queries over the corpus database)",
    )
    save_result(results_dir, "sec62_indexing", text + "\n\n" + quality_text)
    assert (
        quality["hierarchical"].precision_at_k
        >= quality["flat"].precision_at_k - 0.2
    )

    # The advantage grows with database size (T_c << T_e at scale).
    ratios = [row[1] / row[2] for row in rows]
    assert ratios[-1] > ratios[0]
