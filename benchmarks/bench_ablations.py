"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these probe the knobs the paper fixes by fiat:

* the Eq. (1) colour/texture weights (W_C = 0.7, W_T = 0.3);
* the shot-detection window size (30 frames);
* the cluster-reduction range (eliminate 30-50% of scenes);
* the Delta-BIC penalty factor lambda.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_result
from repro.audio.bic import bic_speaker_change
from repro.audio.mfcc import mfcc
from repro.audio.synthesis import VOICE_BANK, synthesize_speech
from repro.core.clustering import cluster_scenes
from repro.core.shots import detect_shots
from repro.core.similarity import SimilarityWeights
from repro.core.structure import MiningConfig, mine_content_structure
from repro.evaluation import evaluate_scene_partition
from repro.evaluation.report import render_table


def test_ablation_similarity_weights(benchmark, corpus, results_dir):
    """Eq. (1) weights: pooled scene precision across the corpus."""

    def pooled_precision(weights: SimilarityWeights) -> float:
        config = MiningConfig(weights=weights)
        right = detected = 0
        for video in corpus:
            structure = mine_content_structure(video.stream, config)
            evaluation = evaluate_scene_partition(
                video.truth,
                structure.shots,
                [scene.shot_ids for scene in structure.scenes],
                "A",
            )
            right += evaluation.rightly_detected
            detected += evaluation.detected
        return right / detected

    benchmark.pedantic(
        pooled_precision, args=(SimilarityWeights(),), rounds=1, iterations=1
    )

    rows = []
    results = {}
    for color_weight in (1.0, 0.9, 0.7, 0.5, 0.3):
        weights = SimilarityWeights(color=color_weight, texture=1.0 - color_weight)
        precision = pooled_precision(weights)
        results[color_weight] = precision
        rows.append([f"W_C={color_weight:.1f}", precision])
    text = render_table(
        ["weights", "pooled scene precision"],
        rows,
        title="Ablation — Eq. (1) colour/texture weights (full corpus)",
    )
    save_result(results_dir, "ablation_weights", text)

    # The paper's colour-dominant mix must beat the pure-colour and
    # pure-texture extremes over the corpus.
    assert results[0.7] >= results[1.0] - 0.05


def test_ablation_window_size(benchmark, corpus, results_dir):
    """Shot-detection window: 30 frames vs alternatives."""
    video = corpus[1]
    truth = set(video.truth.shot_boundaries())

    benchmark(detect_shots, video.stream)

    rows = []
    scores = {}
    for window in (10, 20, 30, 60, 120):
        result = detect_shots(video.stream, window=window)
        detected = set(result.boundaries)
        recall = len(truth & detected) / len(truth)
        false_positives = len(detected - truth)
        scores[window] = (recall, false_positives)
        rows.append([window, recall, false_positives])
    text = render_table(
        ["window (frames)", "recall", "false positives"],
        rows,
        title="Ablation — adaptive-threshold window size (nuclear_medicine)",
    )
    save_result(results_dir, "ablation_window", text)

    assert scores[30][0] == 1.0  # the paper's window keeps full recall


def test_ablation_cluster_target(benchmark, corpus_runs, results_dir):
    """Cluster-reduction amount: the paper searches 50-70% of M."""
    run = corpus_runs[0][1]
    scenes = run.structure.scenes
    m = len(scenes)

    benchmark(cluster_scenes, scenes)

    rows = []
    for target in range(max(1, m // 3), m + 1):
        result = cluster_scenes(scenes, target_count=target)
        validity = result.validity_curve.get(target, float("inf"))
        rows.append([target, len(result.clusters), validity])
    auto = cluster_scenes(scenes)
    text = render_table(
        ["target clusters", "clusters", "validity rho(N)"],
        rows,
        title=(
            f"Ablation — scene cluster count (face_repair, M={m}, "
            f"validity-selected N={auto.chosen_count})"
        ),
    )
    save_result(results_dir, "ablation_clusters", text)

    low = max(1, int(0.5 * m))
    high = max(low, int(0.7 * m))
    assert low <= auto.chosen_count <= high


def test_ablation_beam_width(benchmark, corpus_runs, results_dir):
    """Descent beam width: retrieval quality vs comparisons.

    Quantifies the trade-off behind the default ``beam=2`` in
    :func:`repro.database.query.search_hierarchical`.
    """
    from repro.database import VideoDatabase, combine_features
    from repro.database.query import search_hierarchical

    db = VideoDatabase()
    for _, run in corpus_runs:
        db.register(run)
    root = db.build_index()
    entries = [e for e in db.flat_index.entries if e.scene_id >= 0][:60]

    query = combine_features(
        corpus_runs[0][1].structure.shots[4].histogram,
        corpus_runs[0][1].structure.shots[4].texture,
    )
    benchmark(search_hierarchical, root, query)

    rows = []
    self_hits = {}
    for beam in (1, 2, 3, 4):
        hits = 0
        comparisons = 0
        for entry in entries:
            result = search_hierarchical(root, entry.features, k=5, beam=beam)
            comparisons += result.stats.comparisons
            if any(hit.entry.key == entry.key for hit in result.hits):
                hits += 1
        self_hits[beam] = hits / len(entries)
        rows.append([beam, self_hits[beam], comparisons / len(entries)])
    flat_cmp = len(db.flat_index)
    text = render_table(
        ["beam", "self-hit rate", "mean comparisons"],
        rows,
        title=f"Ablation — descent beam width (flat scan = {flat_cmp} comparisons)",
    )
    save_result(results_dir, "ablation_beam", text)

    # Wider beams cannot hurt self-retrieval, and beam 2 must already
    # recover most of what beam 4 finds.
    assert self_hits[4] >= self_hits[1]
    assert self_hits[2] >= self_hits[4] - 0.25


def test_ablation_detection_mode(benchmark, corpus, results_dir):
    """Full-frame histogram vs compressed-domain (DC) shot detection.

    The paper's reference detector [10] ran in the MPEG compressed
    domain; this ablation quantifies what the cheap DC signal gives up.
    """
    import time

    video = corpus[2]  # laparoscopy
    truth = set(video.truth.shot_boundaries())

    benchmark.pedantic(
        detect_shots, args=(video.stream,), kwargs={"mode": "dc"},
        rounds=3, iterations=1,
    )

    rows = []
    recalls = {}
    for mode in ("histogram", "dc"):
        start = time.perf_counter()
        result = detect_shots(video.stream, mode=mode)
        elapsed = time.perf_counter() - start
        detected = set(result.boundaries)
        recall = len(truth & detected) / len(truth)
        recalls[mode] = recall
        rows.append(
            [mode, recall, len(detected - truth), elapsed * 1e3]
        )
    text = render_table(
        ["signal", "recall", "false positives", "ms"],
        rows,
        title="Ablation — detection signal: full-frame vs DC compressed domain",
    )
    save_result(results_dir, "ablation_detection_mode", text)

    assert recalls["histogram"] == 1.0
    assert recalls["dc"] >= 0.9  # cheap signal, slightly weaker


def test_ablation_bic_penalty(benchmark, results_dir):
    """Delta-BIC penalty: same/different-speaker error rates vs lambda."""
    same_pairs = []
    diff_pairs = []
    voices = list(VOICE_BANK.values())
    for seed in range(4):
        for voice in voices:
            a = mfcc(synthesize_speech(voice, 2.0, seed=seed))
            b = mfcc(synthesize_speech(voice, 2.0, seed=seed + 10))
            same_pairs.append((a, b))
        for i in range(len(voices) - 1):
            a = mfcc(synthesize_speech(voices[i], 2.0, seed=seed))
            b = mfcc(synthesize_speech(voices[i + 1], 2.0, seed=seed))
            diff_pairs.append((a, b))

    benchmark(bic_speaker_change, same_pairs[0][0], same_pairs[0][1])

    rows = []
    rates = {}
    for penalty in (0.5, 1.0, 2.0, 3.0):
        false_alarms = np.mean(
            [bic_speaker_change(a, b, penalty).is_change for a, b in same_pairs]
        )
        misses = np.mean(
            [not bic_speaker_change(a, b, penalty).is_change for a, b in diff_pairs]
        )
        rates[penalty] = (float(false_alarms), float(misses))
        rows.append([penalty, float(false_alarms), float(misses)])
    text = render_table(
        ["lambda", "false-alarm rate", "miss rate"],
        rows,
        title="Ablation — Delta-BIC penalty factor",
    )
    save_result(results_dir, "ablation_bic", text)

    # The shipped default (lambda = 2) should sit on the zero-error
    # plateau for this voice bank.
    assert rates[2.0] == (0.0, 0.0)
