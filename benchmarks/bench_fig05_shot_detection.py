"""Fig. 5 — shot detection with adaptive local thresholds.

The paper shows detected boundaries plus the per-window threshold
adapting to local activity.  This bench regenerates that picture as
text (boundary positions, local thresholds) and measures detector
throughput, asserting the recall the figure illustrates.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_result
from repro.core.shots import detect_shots
from repro.evaluation.report import render_series, render_table


def test_fig05_shot_detection(benchmark, corpus, results_dir):
    video = corpus[0]  # face_repair, a medical-education video as in Fig. 5

    result = benchmark(detect_shots, video.stream)

    truth = set(video.truth.shot_boundaries())
    detected = set(result.boundaries)
    recall = len(truth & detected) / len(truth)
    false_positives = len(detected - truth)

    # The figure's lower panel: frame differences vs the local threshold.
    window = 30
    rows = []
    for start in range(0, min(result.differences.size, 300), window):
        stop = min(start + window, result.differences.size)
        rows.append(
            [
                f"{start}-{stop}",
                float(result.differences[start:stop].max()),
                float(result.thresholds[start]),
                sum(1 for b in result.boundaries if start < b <= stop),
            ]
        )
    table = render_table(
        ["window", "max diff", "local threshold", "cuts"],
        rows,
        title=(
            f"Fig. 5 — adaptive shot detection on '{video.title}': "
            f"recall={recall:.2f}, false positives={false_positives} "
            f"({len(detected)} detected / {len(truth)} true boundaries)"
        ),
    )
    series = render_series(
        "per-window threshold",
        [(row[0], row[2]) for row in rows],
    )
    save_result(results_dir, "fig05_shot_detection", table + "\n\n" + series)

    # Shape assertions: the paper reports satisfactory detection.
    assert recall == 1.0
    assert false_positives <= len(truth) // 4
    # Thresholds adapt: quiet and busy windows get different values.
    assert np.std([row[2] for row in rows]) > 0.0
