# ClassMiner reproduction — developer entry points.

.PHONY: install test bench bench-kernels examples report ingest-smoke serve-smoke obs-smoke chaos-smoke storage-smoke net-smoke obs-net-smoke chaos-net-smoke ann-smoke all clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-kernels:
	pytest benchmarks/bench_similarity_kernels.py --benchmark-only

ingest-smoke:
	python -m repro.ingest.smoke

serve-smoke:
	python -m repro.serving.smoke

obs-smoke:
	python -m repro.obs.smoke

chaos-smoke:
	python -m repro.resilience.smoke

storage-smoke:
	python -m repro.storage.smoke

net-smoke:
	python -m repro.net.smoke

obs-net-smoke:
	python -m repro.net.obs_smoke

chaos-net-smoke:
	python -m repro.net.chaos_smoke

ann-smoke:
	python -m repro.ann.smoke

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; python $$ex >/dev/null && echo OK || exit 1; \
	done

report:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: install test bench examples

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
