#!/usr/bin/env python3
"""Authoring a custom synthetic video and evaluating the miner on it.

Shows the screenplay API: compose scenes from the builder library (or
raw ShotSpecs), render the video with ground truth attached, mine it,
and score the result against the annotations you authored.

Usage::

    python examples/custom_screenplay.py
"""

from __future__ import annotations

from repro import ClassMiner
from repro.evaluation import evaluate_scene_partition
from repro.video.synthesis import (
    Screenplay,
    clinical_scene,
    dialog_scene,
    generate_video,
    presentation_scene,
    separator_scene,
)


def main() -> None:
    # A cardiology teaching video that does not exist in the corpus.
    screenplay = Screenplay(
        title="cardiac_rehab",
        scenes=(
            presentation_scene(
                "exercise physiology lecture",
                speaker="dr_baker",
                cycles=2,
                actor=1,
                slide_base=60,
            ),
            separator_scene(),
            dialog_scene(
                "rehab intake interview",
                speaker_a="dr_baker",
                speaker_b="patient_chen",
                exchanges=2,
                actor_a=1,
                actor_b=2,
            ),
            separator_scene(),
            clinical_scene(
                "stress-test monitoring",
                narrator="dr_baker",
                steps=2,
                style="imaging",
                variant=1,
            ),
        ),
    )

    print(f"Rendering '{screenplay.title}' ({screenplay.shot_count} scripted shots)...")
    video = generate_video(screenplay, seed=7)
    print(f"  {len(video.stream)} frames, {video.stream.duration:.1f} s of video+audio")

    print("\nMining...")
    result = ClassMiner().mine(video.stream)
    for scene in result.structure.scenes:
        event = result.event_of_scene(scene.scene_id)
        print(
            f"  scene {scene.scene_id} (shots {scene.shot_ids[0]}..{scene.shot_ids[-1]}): "
            f"{event.kind.value}"
        )

    evaluation = evaluate_scene_partition(
        video.truth,
        result.structure.shots,
        [scene.shot_ids for scene in result.structure.scenes],
        "A",
    )
    print(
        f"\nAgainst your annotations: precision={evaluation.precision:.2f} "
        f"(Eq. 20), CRF={evaluation.crf:.3f} (Eq. 21)"
    )


if __name__ == "__main__":
    main()
