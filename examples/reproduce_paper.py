#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Mines the full five-video corpus and prints the Sec. 6 evaluation —
Figs. 12/13 (scene detection), Table 1 (event mining), Fig. 14 (skim
quality) and Fig. 15 (FCR) — next to the paper's reported values.

This is the library-API version of the benchmark harness
(``pytest benchmarks/ --benchmark-only`` adds runtime measurement).

Usage::

    python examples/reproduce_paper.py
"""

from __future__ import annotations

from repro.evaluation.paper import mine_corpus, reproduce_all
from repro.evaluation.report import render_table
from repro.video.synthesis import load_corpus

PAPER = {
    "scene_precision": {"A": 0.66, "B": 0.61, "C": 0.57},
    "crf": {"A": 0.086},
    "table1_average": (0.72, 0.71),
    "fcr_layer4": 0.10,
}


def main() -> None:
    print("Mining the five-video corpus (this takes ~20 s)...")
    runs = mine_corpus(load_corpus())
    results = reproduce_all(runs)

    print()
    scene = results["scene_detection"]
    print(
        render_table(
            ["method", "precision (paper)", "CRF (paper A=0.086)"],
            [
                [
                    m,
                    f"{scene[m].precision:.3f} ({PAPER['scene_precision'][m]:.2f})",
                    f"{scene[m].crf:.3f}",
                ]
                for m in ("A", "B", "C")
            ],
            title="Figs. 12-13 — scene detection",
        )
    )

    print()
    events = results["event_mining"]
    rows = [
        [name, r["selected"], r["detected"], r["true"], r["precision"], r["recall"]]
        for name, r in events["rows"].items()
    ]
    avg = events["average"]
    rows.append(
        ["average", "", "", "", avg["precision"], avg["recall"]]
    )
    print(
        render_table(
            ["events", "SN", "DN", "TN", "PR", "RE"],
            rows,
            title="Table 1 — event mining (paper average PR=0.72 RE=0.71)",
        )
    )

    print()
    quality = results["skim_quality"]
    print(
        render_table(
            ["level", "Q1 topic", "Q2 scenario", "Q3 concise"],
            [[level, *quality[level]] for level in (1, 2, 3, 4)],
            title="Fig. 14 — skim quality (paper: mid level optimal)",
        )
    )

    print()
    fcr = results["fcr"]
    print(
        render_table(
            ["layer", "FCR"],
            [[level, fcr[level]] for level in (4, 3, 2, 1)],
            title="Fig. 15 — frame compression ratio (paper layer 4 ~ 0.10)",
        )
    )

    # The headline shape checks.
    assert scene["A"].precision > scene["B"].precision > scene["C"].precision
    assert scene["C"].crf < scene["B"].crf < scene["A"].crf
    assert fcr[4] < 0.25
    print("\nAll paper shapes hold.")


if __name__ == "__main__":
    main()
