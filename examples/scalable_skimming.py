#!/usr/bin/env python3
"""The scalable video skimming tool (Fig. 11) in the terminal.

Builds the four-level skim of a corpus video, renders the event colour
bar, walks through the level switcher, simulates dragging the fast-
access scroll bar, and prints the per-level frame compression ratios
and the simulated-viewer quality panel.

Usage::

    python examples/scalable_skimming.py
"""

from __future__ import annotations

from repro import ClassMiner, build_skim
from repro.skimming import (
    build_color_bar,
    evaluate_all_levels,
    fcr_by_level,
    render_storyboard,
    render_text_bar,
)
from repro.video.synthesis import load_video


def main() -> None:
    title = "skin_examination"
    print(f"Mining '{title}' and building the scalable skim...")
    video = load_video(title)
    result = ClassMiner().mine(video.stream)
    skim = build_skim(result.structure, result.events.events)

    print("\nEvent colour bar (P=presentation D=dialog C=clinical .=other):")
    bar = build_color_bar(result.structure, result.events.events)
    print("  " + render_text_bar(bar, width=72))

    print("\nLevel switcher (up arrow = coarser, down = finer):")
    for level in (4, 3, 2, 1):
        skim.switch_level(level)
        segments = skim.segments()
        shown = skim.frame_count()
        print(
            f"  level {level}: {len(segments):3d} skimming shots, "
            f"{shown:5d}/{skim.total_frames} frames "
            f"(FCR {shown / skim.total_frames:.2f})"
        )

    print("\nStoryboard at level 3:")
    print(render_storyboard(skim, level=3, columns=3))

    print("\nFast access: dragging the scroll bar at level 3")
    for position in (0.0, 0.33, 0.66, 1.0):
        segment = skim.seek(position, level=3)
        seconds = segment.shot.start / segment.shot.fps
        print(
            f"  position {position:.2f} -> shot {segment.shot.shot_id} "
            f"@ {seconds:5.1f}s [{segment.event.value}]"
        )

    print("\nFrame compression ratio per layer (Fig. 15):")
    for level, value in sorted(fcr_by_level(skim).items(), reverse=True):
        print(f"  layer {level}: {value:.3f}")

    print("\nSimulated viewer panel (Fig. 14, scores 0-5):")
    print("  level  topic  scenario  concise")
    for scores in evaluate_all_levels(skim, video.truth):
        print(
            f"    {scores.level}    {scores.topic:4.1f}    "
            f"{scores.scenario:4.1f}      {scores.conciseness:4.1f}"
        )


if __name__ == "__main__":
    main()
