#!/usr/bin/env python3
"""Object-based access: region-of-interest extraction and matching.

The paper's intro names two access approaches — shot-based (its focus)
and object-based.  This example exercises the object path: salient
regions are extracted from every representative frame of a mined
video, and one region (the blood-red organ mass) is used as a query to
find every shot showing similar objects.

Usage::

    python examples/object_search.py
"""

from __future__ import annotations

from repro import ClassMiner
from repro.vision.roi import extract_rois, match_rois
from repro.video.synthesis import load_video


def main() -> None:
    title = "face_repair"
    print(f"Mining '{title}' and extracting ROIs from representative frames...")
    video = load_video(title, with_audio=False)
    result = ClassMiner().mine(video.stream, mine_events=False)

    rois_by_shot = {}
    for shot in result.structure.shots:
        rois = extract_rois(shot.representative_frame)
        if rois:
            rois_by_shot[shot.shot_id] = rois
    total = sum(len(rois) for rois in rois_by_shot.values())
    print(f"  {total} regions across {len(rois_by_shot)} shots")

    # Query: the reddest large region in the video (the organ photo).
    query_shot, query_roi = max(
        (
            (shot_id, roi)
            for shot_id, rois in rois_by_shot.items()
            for roi in rois
        ),
        key=lambda item: item[1].mean_color[0] - item[1].mean_color[2],
    )
    r, g, b = (int(255 * c) for c in query_roi.mean_color)
    print(
        f"\nQuery object: shot {query_shot}, mean colour rgb({r},{g},{b}), "
        f"{query_roi.area_fraction:.1%} of the frame"
    )

    print("\nShots containing similar objects:")
    for shot_id, rois in sorted(rois_by_shot.items()):
        if shot_id == query_shot:
            continue
        matches = match_rois(query_roi, rois, threshold=0.45)
        if not matches:
            continue
        best_score = matches[0][1]
        scene = result.structure.scene_of_shot(shot_id)
        where = f"scene {scene.scene_id}" if scene else "eliminated scene"
        print(f"  shot {shot_id:3d} ({where}): similarity {best_score:.2f}")


if __name__ == "__main__":
    main()
