#!/usr/bin/env python3
"""Hierarchical database indexing and retrieval over the corpus.

Mines two corpus videos, registers them in the hierarchical video
database (Fig. 1 / Fig. 2), and compares cluster-based retrieval
against the flat scan of Eq. (24) — the Sec. 6.2 experiment in
miniature.

Usage::

    python examples/corpus_indexing.py
"""

from __future__ import annotations

from repro import ClassMiner, VideoDatabase
from repro.database import combine_features
from repro.video.synthesis import load_video


def main() -> None:
    miner = ClassMiner()
    db = VideoDatabase()

    for title in ("face_repair", "skin_examination"):
        print(f"Mining and registering '{title}'...")
        video = load_video(title)
        result = miner.mine(video.stream)
        record = db.register(result)
        print(
            f"  {record.shot_count} shots in {record.scene_count} scenes; "
            f"events: { {v for v in record.events.values()} }"
        )

    print(f"\nDatabase: {db.shot_count} shots indexed")
    root = db.build_index()
    print("Index tree:")
    _print_tree(root)

    # Query with an indexed surgical shot (self-retrieval).  Surgical
    # imagery only exists in face_repair here, so the greedy descent is
    # unambiguous; visually shared settings (exam rooms appear in both
    # videos) can legitimately route to a sibling subject area instead.
    video = load_video("face_repair")
    result = miner.mine(video.stream)
    clinical = next(
        scene
        for scene in result.structure.scenes
        if result.event_of_scene(scene.scene_id).kind.value == "clinical_operation"
    )
    query_shot = clinical.shots[1]
    features = combine_features(query_shot.histogram, query_shot.texture)

    print(f"\nQuery: shot {query_shot.shot_id} of face_repair (surgical close-up)")
    hierarchical = db.search(features, k=5)
    flat = db.search_flat(features, k=5)

    print(
        f"  hierarchical: {hierarchical.stats.comparisons} comparisons, "
        f"{hierarchical.stats.elapsed_seconds * 1e3:.2f} ms, "
        f"path: {' -> '.join(hierarchical.stats.visited_path)}"
    )
    print(
        f"  flat scan:    {flat.stats.comparisons} comparisons, "
        f"{flat.stats.elapsed_seconds * 1e3:.2f} ms"
    )
    print("\n  Top hits (hierarchical):")
    for hit in hierarchical.hits:
        print(
            f"    {hit.entry.video_title} shot {hit.entry.shot_id:3d} "
            f"(scene {hit.entry.scene_id})  score={hit.score:.3f}"
        )
    assert any(
        hit.entry.key == ("face_repair", query_shot.shot_id)
        for hit in hierarchical.hits
    ), "the query shot should rank among its own top hits"


def _print_tree(node, indent: int = 1) -> None:
    pad = "  " * indent
    if node.is_leaf:
        print(f"{pad}{node.name}  [{len(node.leaf)} shots, {node.leaf.bucket_count} buckets]")
        return
    print(f"{pad}{node.name}")
    for child in node.children:
        _print_tree(child, indent + 1)


if __name__ == "__main__":
    main()
