#!/usr/bin/env python3
"""Quickstart: generate a synthetic medical video and mine it.

Runs the full ClassMiner pipeline — shot detection, grouping, scene
detection, scene clustering, event mining — on the compact demo
screenplay and prints the mined hierarchy.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClassMiner
from repro.video.synthesis import demo_screenplay, generate_video


def main() -> None:
    print("Rendering the demo screenplay (presentation + consult + operation)...")
    video = generate_video(demo_screenplay(), seed=0)
    print(
        f"  {video.title}: {len(video.stream)} frames, "
        f"{video.stream.duration:.1f} s, "
        f"{video.truth.shot_count} scripted shots\n"
    )

    print("Mining content structure and events...")
    result = ClassMiner().mine(video.stream)
    structure = result.structure

    sizes = structure.level_sizes()
    print("  Mined hierarchy (Definition 1):")
    print(f"    clustered scenes : {sizes['clustered_scenes']}")
    print(f"    scenes           : {sizes['scenes']}")
    print(f"    groups           : {sizes['groups']}")
    print(f"    shots            : {sizes['shots']}")
    print(f"  Compression rate factor (Eq. 21): {structure.compression_rate_factor:.3f}\n")

    print("  Scenes and mined events:")
    for scene in structure.scenes:
        event = result.event_of_scene(scene.scene_id)
        start, stop = scene.frame_span
        seconds = (start / video.stream.fps, stop / video.stream.fps)
        print(
            f"    scene {scene.scene_id}: "
            f"{seconds[0]:5.1f}s-{seconds[1]:5.1f}s  "
            f"{scene.shot_count:2d} shots  ->  {event.kind.value}"
        )
        for note in event.evidence:
            print(f"        - {note}")

    print("\n  Scene clusters (recurring content):")
    for cluster in structure.clustered_scenes:
        marker = "recurring" if cluster.is_recurring else "unique"
        print(f"    cluster {cluster.cluster_id}: scenes {cluster.scene_ids} ({marker})")


if __name__ == "__main__":
    main()
