#!/usr/bin/env python3
"""Hierarchical access control over the video database.

Demonstrates the paper's third requirement (Sec. 2): multilevel
security plus per-concept filtering rules on the same hierarchy that
drives indexing.  Three principals query the same database and see
different results; every decision lands in the audit log.

Usage::

    python examples/access_control.py
"""

from __future__ import annotations

from repro import ClassMiner, VideoDatabase
from repro.database import FilterRule, Permission, User, combine_features
from repro.video.synthesis import load_video


def main() -> None:
    print("Building an access-controlled database from 'laparoscopy'...")
    video = load_video("laparoscopy")
    result = ClassMiner().mine(video.stream)
    db = VideoDatabase()
    db.register(result)

    principals = [
        User(name="med_student", clearance=0),
        User(name="resident", clearance=2),
        User(
            name="privacy_auditor",
            clearance=9,
            rules=(FilterRule("dialog", Permission.DENY, "patient privacy review"),),
        ),
    ]

    print("\nPermitted scene-level concepts per user:")
    for user in principals:
        leaves = sorted(db.controller.permitted_leaves(user))
        surgery = [leaf for leaf in leaves if leaf.startswith("surgery/")]
        print(f"  {user.name:16s} (clearance {user.clearance}): {surgery}")

    # Query with a surgical shot: only sufficiently cleared users see it.
    clinical_scene = next(
        scene
        for scene in result.structure.scenes
        if result.event_of_scene(scene.scene_id).kind.value == "clinical_operation"
    )
    shot = clinical_scene.shots[1]
    features = combine_features(shot.histogram, shot.texture)

    print(f"\nQuerying with a clinical-operation shot (shot {shot.shot_id}):")
    for user in principals:
        hits = db.search(features, user=user, k=3).hits
        if hits:
            leaves = {hit.entry.scene_id for hit in hits}
            print(f"  {user.name:16s}: {len(hits)} hits (scenes {sorted(leaves)})")
        else:
            print(f"  {user.name:16s}: access filtered -> no permitted leaf matched")

    print("\nAudit log (last 8 decisions):")
    for record in db.controller.audit_log[-8:]:
        verdict = "GRANT" if record.granted else "DENY "
        print(f"  {verdict} {record.user:16s} {record.concept:32s} {record.reason}")


if __name__ == "__main__":
    main()
