#!/usr/bin/env python3
"""The paper's motivating query: "Show me all patient-doctor dialogs."

Mines two corpus videos, answers the event query across the catalog
(with and without access control), diarizes the speakers of one dialog
scene, and browses down to its shots with the hierarchy browser.

Usage::

    python examples/event_queries.py
"""

from __future__ import annotations

from repro import ClassMiner, VideoDatabase
from repro.audio import SpeakerAnalyzer, diarize_shots
from repro.database import User, event_census, query_events
from repro.skimming import HierarchyBrowser
from repro.types import EventKind
from repro.video.synthesis import load_video


def main() -> None:
    miner = ClassMiner()
    db = VideoDatabase()
    results = {}
    for title in ("face_repair", "nuclear_medicine"):
        print(f"Mining '{title}'...")
        video = load_video(title)
        results[title] = (video, miner.mine(video.stream))
        db.register(results[title][1])

    print('\nQuery: "Show me all patient-doctor dialogs within the video"')
    hits = query_events(db, EventKind.DIALOG)
    for hit in hits:
        print(f"  {hit.video_title}: scene {hit.scene_id} ({hit.concept})")

    print("\nEvent census of the catalog:")
    for kind, count in event_census(db).items():
        print(f"  {kind.value:20s}: {count} scene(s)")

    public = User(name="med_student", clearance=0)
    print(f"\nSame query as '{public.name}' (clearance {public.clearance}):")
    filtered = query_events(db, EventKind.DIALOG, user=public)
    print(f"  {len(filtered)} hits — dialogs are privacy-protected at clearance 2+")

    # Diarize one dialog scene.
    if hits:
        hit = hits[0]
        video, result = results[hit.video_title]
        scene = next(
            s for s in result.structure.scenes if s.scene_id == hit.scene_id
        )
        analyses = [result.audio[shot_id] for shot_id in scene.shot_ids]
        diarization = diarize_shots(analyses, SpeakerAnalyzer())
        print(
            f"\nDiarizing scene {hit.scene_id} of {hit.video_title}: "
            f"{diarization.num_speakers} speaker(s)"
        )
        for speaker in range(diarization.num_speakers):
            shots = diarization.shots_of_speaker(speaker)
            print(f"  speaker {speaker}: shots {shots}")

        print("\nBrowsing down to that scene's shots:")
        browser = HierarchyBrowser(result.structure, result.events.events)
        # Find the cluster/scene path of the hit.
        for i, cluster in enumerate(result.structure.clustered_scenes):
            if hit.scene_id in cluster.scene_ids:
                while browser.cursor < i:
                    browser.next()
                browser.enter()
                for j, scene_obj in enumerate(cluster.scenes):
                    if scene_obj.scene_id == hit.scene_id:
                        while browser.cursor < j:
                            browser.next()
                        browser.enter()
                        break
                break
        print(browser.render())


if __name__ == "__main__":
    main()
